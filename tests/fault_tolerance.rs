//! Fault-injection and graceful-degradation suite (DESIGN.md "Fault
//! tolerance & degradation").
//!
//! Every test drives the full service through a deterministic, seedable
//! [`FaultPlan`] and proves the paper's degradation claims: jobs always
//! complete with outputs **row-multiset-identical** to their baseline runs,
//! no build lock outlives its mined expiry horizon, and the per-job
//! degradation counters account for every injected fault.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::api::ProposeRequest;
use cloudviews::{CloudViews, FaultPlan, FaultSite, RunMode, ScriptedFault};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::{SimDuration, SimTime};
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

/// Job id → output name → row-multiset checksum: the fault-free ground
/// truth every degraded run must reproduce.
type BaselineChecksums = HashMap<u64, HashMap<String, u64>>;

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("ft")],
        seed,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap()
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Builds a service primed with one analyzed baseline instance, returning
/// the service, the workload, and the *fault-free baseline* output
/// checksums of instance 1 (job → output name → checksum).
fn primed_service(
    seed: u64,
) -> (
    CloudViews,
    RecurringWorkload,
    Vec<JobSpec>,
    BaselineChecksums,
) {
    let w = workload(seed);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    assert!(!analysis.selected.is_empty(), "fixture must select views");
    cv.install_analysis(&analysis);

    w.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    let baseline = cv.run_sequence(&day1, RunMode::Baseline).unwrap();
    let checksums = baseline
        .iter()
        .map(|r| (r.job.raw(), r.output_checksums.clone()))
        .collect();
    (cv, w, day1, checksums)
}

/// Asserts each report's outputs are row-multiset-identical to the
/// fault-free baseline of the same job.
fn assert_outputs_match_baseline(
    reports: &[cloudviews::runtime::JobRunReport],
    baseline: &BaselineChecksums,
    context: &str,
) {
    for r in reports {
        assert_eq!(
            Some(&r.output_checksums),
            baseline.get(&r.job.raw()),
            "{context}: job {} output diverged from baseline",
            r.job
        );
    }
}

/// Asserts the per-job counters sum to exactly the injector's ledger for
/// every call-site fault, and consistently bound the stored-file faults.
fn assert_fault_accounting(
    cv: &CloudViews,
    reports: &[cloudviews::runtime::JobRunReport],
    context: &str,
) {
    let injected = cv.faults.as_ref().expect("injector installed").injected();
    let totals = cloudviews::reporting::fault_totals(reports);
    assert_eq!(
        totals.lookup_faults, injected.lookup_failures,
        "{context}: lookup"
    );
    assert_eq!(
        totals.propose_faults, injected.propose_failures,
        "{context}: propose"
    );
    assert_eq!(
        totals.report_faults, injected.report_failures,
        "{context}: report"
    );
    assert_eq!(
        totals.builder_crashes, injected.builder_crashes,
        "{context}: crash"
    );
    assert_eq!(
        totals.delayed_publications, injected.delayed_publications,
        "{context}: delay"
    );
    // Stored-file faults: a lost/corrupt file may be observed by zero or
    // many readers, but a read fallback can only happen when such a fault
    // (or a natural expiry, absent here) occurred.
    if injected.views_lost + injected.views_corrupted == 0 {
        assert_eq!(totals.view_read_fallbacks, 0, "{context}: phantom fallback");
    }
    let stats = cv.metadata.stats();
    assert_eq!(
        stats.failed_lookups, injected.lookup_failures,
        "{context}: svc lookup"
    );
    assert_eq!(
        stats.failed_proposals, injected.propose_failures,
        "{context}: svc propose"
    );
    assert_eq!(
        stats.failed_reports, injected.report_failures,
        "{context}: svc report"
    );
}

/// Asserts every build lock is reclaimable: after the mined TTL horizon
/// passes, no lock is active and purging empties the lock table.
fn assert_locks_reclaimable(cv: &CloudViews, context: &str) {
    cv.clock.advance(SimDuration::from_secs(30 * 86_400));
    assert_eq!(
        cv.metadata.num_active_locks(cv.clock.now()),
        0,
        "{context}: a build lock outlived its mined expiry"
    );
    cv.purge_expired();
    assert_eq!(
        cv.metadata.num_locks(),
        0,
        "{context}: lapsed locks not reclaimed"
    );
}

#[test]
fn lookup_failures_retry_then_fall_back_to_baseline_plan() {
    let (mut cv, _w, day1, baseline) = primed_service(31);
    // Job A: one transient failure (retry succeeds). Job B: every call
    // fails (retries exhausted → baseline plan). Everyone else clean.
    let job_a = day1[0].id;
    let job_b = day1[1].id;
    let retries = cv.degradation.lookup_retries as u64;
    let mut scripted = vec![ScriptedFault {
        site: FaultSite::MetadataLookup,
        job: Some(job_a),
        call_index: 0,
    }];
    for i in 0..=retries {
        scripted.push(ScriptedFault {
            site: FaultSite::MetadataLookup,
            job: Some(job_b),
            call_index: i,
        });
    }
    cv.install_fault_plan(FaultPlan {
        scripted,
        ..Default::default()
    });

    let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    assert_outputs_match_baseline(&reports, &baseline, "lookup faults");

    let a = &reports[0].faults;
    assert_eq!((a.lookup_faults, a.lookup_retries), (1, 1));
    assert!(!a.fell_back_to_baseline);
    let b = &reports[1].faults;
    assert_eq!(b.lookup_faults, retries + 1);
    assert!(
        b.fell_back_to_baseline,
        "exhausted retries must degrade to baseline"
    );
    assert!(
        reports[1].views_reused.is_empty() && reports[1].views_built.is_empty(),
        "baseline fallback must not reuse or build"
    );
    // The degraded job paid for its failed calls and backoff.
    assert!(reports[1].lookup_latency > reports[0].lookup_latency);
    assert_fault_accounting(&cv, &reports, "lookup faults");
    assert_locks_reclaimable(&cv, "lookup faults");
}

#[test]
fn builder_crash_restarts_job_and_output_is_unaffected() {
    let (mut cv, _w, day1, baseline) = primed_service(32);
    // Every job's first materialization attempt dies mid-build.
    cv.install_fault_plan(FaultPlan {
        scripted: vec![ScriptedFault {
            site: FaultSite::BuilderCrash,
            job: None,
            call_index: 0,
        }],
        ..Default::default()
    });

    let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    assert_outputs_match_baseline(&reports, &baseline, "builder crash");

    let totals = cloudviews::reporting::fault_totals(&reports);
    assert!(
        totals.builder_crashes > 0,
        "fixture must exercise the crash path"
    );
    // Crashed-and-restarted builders still publish their views.
    assert!(reports.iter().any(|r| !r.views_built.is_empty()));
    // The wasted attempt shows up as degraded latency.
    let crashed = reports
        .iter()
        .find(|r| r.faults.builder_crashes > 0)
        .unwrap();
    assert!(crashed.faults.degraded_latency > SimDuration::ZERO);
    assert_fault_accounting(&cv, &reports, "builder crash");
    assert_locks_reclaimable(&cv, "builder crash");
}

#[test]
fn permanently_crashed_builder_fails_alone_and_lock_is_taken_over() {
    let (mut cv, w, day1, baseline) = primed_service(33);
    // One job's builder dies on every attempt: the job fails (bounded
    // restarts), its exclusive build lock stays held, and — satellite of
    // the paper's Section 6.1 claim — the lock lapses at its mined expiry
    // so a later job can take over the build. run_concurrent must report
    // the dead job's error without aborting the other jobs.
    let doomed = day1[0].id;
    let scripted = (0..=cv.degradation.max_restarts as u64)
        .map(|i| ScriptedFault {
            site: FaultSite::BuilderCrash,
            job: Some(doomed),
            call_index: i,
        })
        .collect();
    cv.install_fault_plan(FaultPlan {
        scripted,
        ..Default::default()
    });

    // The doomed job runs first (alone, so it deterministically wins its
    // build lock) and dies on every restart.
    let err = cv
        .run_job_at(&day1[0], RunMode::CloudViews, cv.clock.now())
        .expect_err("the doomed builder must exhaust its restarts");
    assert!(err.to_string().contains("crashed"), "{err}");

    // The dead builder's exclusive lock is still held (it never reported).
    assert!(
        cv.metadata.num_locks() > 0,
        "the crashed builder should hold its lock"
    );

    // The rest of the wave runs concurrently, plus one job whose input data
    // was never registered: its error must come back as a per-job `Err`
    // without aborting the driver or the healthy jobs.
    let mut wave: Vec<JobSpec> = day1[1..].to_vec();
    let broken_idx = wave.len();
    wave.push(w.jobs_for_instance(0, 2).unwrap().remove(0)); // data not registered
    let results = cv.run_concurrent_results(wave, RunMode::CloudViews);
    let failed: Vec<usize> = results
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.is_err().then_some(i))
        .collect();
    assert_eq!(failed, vec![broken_idx], "only the data-less job may fail");
    let survivors: Vec<_> = results.into_iter().filter_map(|r| r.ok()).collect();
    assert_outputs_match_baseline(&survivors, &baseline, "crashed builder");

    // But it lapses: a re-submitted wave (fresh job ids, faults cleared)
    // takes over the expired lock and builds the missing views, exactly
    // one winner per view.
    cv.metadata.set_fault_injector(None);
    cv.faults = None;
    cv.clock.advance(SimDuration::from_secs(86_400)); // the doomed lock lapses
    let resubmitted: Vec<JobSpec> = day1
        .iter()
        .map(|s| {
            let mut s = s.clone();
            s.id = scope_common::ids::JobId::new(s.id.raw() + 10_000);
            s
        })
        .collect();
    let wave2 = cv.run_concurrent(resubmitted, RunMode::CloudViews).unwrap();
    let mut built: Vec<_> = wave2
        .iter()
        .flat_map(|r| r.views_built.iter().copied())
        .collect();
    let n = built.len();
    built.sort_unstable();
    built.dedup();
    assert_eq!(built.len(), n, "a view was built by two winners");
    assert!(n > 0, "re-submitted wave must rebuild");
    assert!(
        cv.metadata.stats().expired_takeovers >= 1,
        "the dead builder's expired lock must be taken over"
    );
    assert_locks_reclaimable(&cv, "crashed builder");
}

#[test]
fn lost_and_corrupt_views_fall_back_to_recomputation() {
    for (loss, corruption) in [(1.0, 0.0), (0.0, 1.0)] {
        let context = if loss > 0.0 { "loss" } else { "corruption" };
        let (mut cv, _w, day1, baseline) = primed_service(34);
        cv.install_fault_plan(FaultPlan {
            seed: 7,
            view_loss: loss,
            view_corruption: corruption,
            ..Default::default()
        });

        // Wave 1 builds views; every published file is immediately lost or
        // corrupted. Wave 2 matches them in the metadata service, fails the
        // read, and recomputes.
        let wave1 = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        assert!(
            wave1.iter().any(|r| !r.views_built.is_empty()),
            "{context}: no builds"
        );
        let wave2 = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        assert_outputs_match_baseline(&wave1, &baseline, context);
        assert_outputs_match_baseline(&wave2, &baseline, context);

        let injected = cv.faults.as_ref().unwrap().injected();
        assert!(
            injected.views_lost + injected.views_corrupted > 0,
            "{context}: nothing injected"
        );
        let totals = cloudviews::reporting::fault_totals(&wave2);
        assert!(
            totals.view_read_fallbacks > 0,
            "{context}: matched dead views must trigger recomputation fallback"
        );
        assert!(
            totals.dead_views_unregistered > 0,
            "{context}: dead views must be unregistered from the metadata service"
        );
        assert_fault_accounting(&cv, &wave2, context);
        assert_locks_reclaimable(&cv, context);
    }
}

#[test]
fn delayed_publication_defers_visibility_without_changing_outputs() {
    let (mut cv, _w, day1, baseline) = primed_service(35);
    cv.install_fault_plan(FaultPlan {
        publish_delay: SimDuration::from_secs(3_600),
        ..Default::default()
    });
    let wave1 = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    assert_outputs_match_baseline(&wave1, &baseline, "publish delay");
    let totals = cloudviews::reporting::fault_totals(&wave1);
    let built: usize = wave1.iter().map(|r| r.views_built.len()).sum();
    assert!(built > 0);
    assert_eq!(totals.delayed_publications, built as u64);
    assert_fault_accounting(&cv, &wave1, "publish delay");
}

#[test]
fn chaos_every_fault_mode_at_once_jobs_complete_with_baseline_outputs() {
    // The acceptance scenario: lookup failures, builder crashes, and view
    // loss (plus propose/report faults and corruption) all at nonzero
    // rates. Every job must complete with baseline-identical outputs, no
    // lock may outlive its mined expiry, and the counters must account for
    // every injected fault.
    let (mut cv, _w, day1, baseline) = primed_service(36);
    cv.degradation.max_restarts = 8; // chaos may crash the same builder repeatedly
    cv.install_fault_plan(FaultPlan {
        seed: 2024,
        lookup_fail: 0.25,
        propose_fail: 0.2,
        report_fail: 0.2,
        // Unregistered dead views now take their annotations with them, so
        // later waves rebuild less — the crash rate is higher than the
        // other sites to keep every fault mode firing in this fixture.
        builder_crash: 0.45,
        view_loss: 0.35,
        view_corruption: 0.25,
        publish_delay: SimDuration::from_secs_f64(1.5),
        scripted: Vec::new(),
    });

    let mut all_reports = Vec::new();
    for _wave in 0..3 {
        let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
        assert_outputs_match_baseline(&reports, &baseline, "chaos");
        all_reports.extend(reports);
    }

    let injected = cv.faults.as_ref().unwrap().injected();
    assert!(
        injected.lookup_failures > 0,
        "chaos must fail lookups: {injected:?}"
    );
    assert!(
        injected.builder_crashes > 0,
        "chaos must crash builders: {injected:?}"
    );
    assert!(
        injected.views_lost + injected.views_corrupted > 0,
        "chaos must lose views: {injected:?}"
    );
    assert_fault_accounting(&cv, &all_reports, "chaos");
    assert_locks_reclaimable(&cv, "chaos");
}

#[test]
fn run_many_under_chaos_preserves_outputs_and_build_once() {
    // The staged pipeline's worker pool under every fault mode at once:
    // a 3-worker pool with a 2-job admission bound must deliver the same
    // guarantees as the thread-per-job driver — baseline-identical outputs,
    // exact fault accounting, at most one builder per view per wave, and
    // reclaimable locks.
    use cloudviews::PipelineOptions;

    let (mut cv, _w, day1, baseline) = primed_service(37);
    cv.degradation.max_restarts = 12;
    let options = PipelineOptions {
        workers: 3,
        max_in_flight: 2,
        janitor: false,
    };

    // Fault-free pooled wave first: the build locks must let exactly one
    // winner materialize each view even with three workers racing.
    let reports: Vec<_> = cv
        .run_many(day1.clone(), RunMode::CloudViews, options)
        .into_iter()
        .map(|r| r.expect("fault-free wave"))
        .collect();
    assert_outputs_match_baseline(&reports, &baseline, "run_many fault-free");
    let mut built: Vec<_> = reports
        .iter()
        .flat_map(|r| r.views_built.iter().copied())
        .collect();
    let n = built.len();
    assert!(n > 0, "fault-free wave must build views");
    built.sort_unstable();
    built.dedup();
    assert_eq!(built.len(), n, "a view was built twice in one wave");
    let mut all_reports = reports;

    // Now every fault mode at once. Rebuilds within a wave are legal here
    // (crashed builders and lost views hand the lock to a later job), so
    // only output fidelity, accounting, and lock hygiene are asserted.
    cv.install_fault_plan(FaultPlan {
        seed: 4242,
        lookup_fail: 0.2,
        propose_fail: 0.15,
        report_fail: 0.15,
        builder_crash: 0.15,
        view_loss: 0.25,
        view_corruption: 0.2,
        publish_delay: SimDuration::from_secs_f64(1.5),
        scripted: Vec::new(),
    });
    for wave in 0..3 {
        let reports: Vec<_> = cv
            .run_many(day1.clone(), RunMode::CloudViews, options)
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| panic!("wave {wave}: job failed: {e}")))
            .collect();
        assert_outputs_match_baseline(&reports, &baseline, "run_many chaos");
        all_reports.extend(reports);
    }

    let injected = cv.faults.as_ref().unwrap().injected();
    assert!(
        injected.lookup_failures + injected.builder_crashes > 0,
        "chaos must inject: {injected:?}"
    );
    assert_fault_accounting(&cv, &all_reports, "run_many chaos");
    assert_locks_reclaimable(&cv, "run_many chaos");
}

/// ISSUE 6 satellite 2 — admission permits survive panicking jobs. Jobs
/// whose execution genuinely panics inside the worker (a group key past
/// the physical row width trips an index panic in the aggregate) must
/// not leak counting-semaphore permits: with `max_in_flight` *below* the
/// panic count, a single leaked permit per panic would strangle the pool
/// to zero concurrency and a follow-up wave would deadlock. The pool's
/// throughput — every healthy job admitted, run, and baseline-identical —
/// must be unchanged after N panics.
#[test]
fn run_many_pool_throughput_unchanged_after_panicking_jobs() {
    use cloudviews::PipelineOptions;
    use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
    use scope_engine::data::Table;
    use scope_plan::{AggExpr, AggFunc, DataType, PlanBuilder, Schema, Value};

    let (cv, _w, day1, baseline) = primed_service(53);

    // A dataset narrower than the schema its jobs declare: the scan passes
    // one-column rows through, then the aggregate's group key indexes
    // column 2 and the worker thread genuinely panics (caught by
    // `run_many`'s per-job `catch_unwind`).
    let narrow = DatasetId::new(999_983);
    cv.storage.put_dataset(
        narrow,
        Table::single(
            Schema::from_pairs(&[("a", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        ),
    );
    let panicking_job = |id: u64| {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(
            narrow,
            "chaos/narrow.ss",
            Schema::from_pairs(&[
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("c", DataType::Int),
            ]),
        );
        let a = b.aggregate(s, vec![2], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        JobSpec {
            id: JobId::new(id),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(7_777),
            instance: 0,
            graph: b.output(a, "boom").build().unwrap(),
        }
    };

    const PANICS: usize = 4;
    let options = PipelineOptions {
        workers: 3,
        max_in_flight: 2,
        janitor: false,
    };

    // Wave 1: healthy jobs interleaved with the panicking ones.
    let mut jobs = Vec::new();
    for (i, spec) in day1.iter().enumerate() {
        jobs.push(spec.clone());
        if i < PANICS {
            jobs.push(panicking_job(900_000 + i as u64));
        }
    }
    let results = cv.run_many(jobs, RunMode::CloudViews, options);
    let (ok, failed): (Vec<_>, Vec<_>) = results.into_iter().partition(|r| r.is_ok());
    assert_eq!(failed.len(), PANICS, "exactly the panicking jobs fail");
    for f in &failed {
        let msg = f.as_ref().unwrap_err().to_string();
        assert!(
            msg.contains("panicked"),
            "failure must be a caught panic, got: {msg}"
        );
    }
    let reports: Vec<_> = ok.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(reports.len(), day1.len());
    assert_outputs_match_baseline(&reports, &baseline, "panic wave");

    // Wave 2: a full healthy wave through the same pool configuration.
    // Any permit leaked in wave 1 (PANICS >= max_in_flight) would leave
    // zero permits and deadlock here; partial leaks would still show up
    // as missing or failed jobs.
    let reports: Vec<_> = cv
        .run_many(day1.clone(), RunMode::CloudViews, options)
        .into_iter()
        .map(|r| r.expect("post-panic wave must be unaffected"))
        .collect();
    assert_eq!(reports.len(), day1.len());
    assert_outputs_match_baseline(&reports, &baseline, "post-panic wave");
    assert_locks_reclaimable(&cv, "post-panic wave");
}

/// ISSUE 9 satellite 1 — a follower awaiting a window producer must never
/// hang when the producer dies. The producer job genuinely panics inside
/// the worker (the narrow-dataset trick above); `run_windowed` must abort
/// its pending entries, wake both followers, and let them fall back to
/// recompute — the test *completing* is the regression, the checksums are
/// the correctness bar.
#[test]
fn windowed_follower_survives_producer_panic() {
    use cloudviews::{JobArrival, PipelineOptions, SharingConfig};
    use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
    use scope_common::time::SimTime;
    use scope_engine::data::Table;
    use scope_plan::{AggExpr, AggFunc, DataType, Expr, PlanBuilder, Schema, Value};

    let kv = || Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let shared = DatasetId::new(999_979);
    let narrow = DatasetId::new(999_983);
    let seed_datasets = |cv: &CloudViews| {
        cv.storage.put_dataset(
            shared,
            Table::single(
                kv(),
                (0..500i64)
                    .map(|i| vec![Value::Int(i % 7), Value::Int(i)])
                    .collect(),
            ),
        );
        cv.storage.put_dataset(
            narrow,
            Table::single(
                Schema::from_pairs(&[("a", DataType::Int)]),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            ),
        );
    };
    let spec = |id: u64, graph: scope_plan::QueryGraph| JobSpec {
        id: JobId::new(id),
        cluster: ClusterId::new(0),
        vc: VcId::new(0),
        user: UserId::new(0),
        template: TemplateId::new(id),
        instance: 0,
        graph,
    };
    // The shared subgraph S, byte-identical across all three jobs.
    let with_shared = |b: &mut PlanBuilder| {
        let s = b.table_scan(shared, "ft/shared.ss", kv());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(10i64)));
        b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)])
    };
    // Producer: S → output, plus a branch whose aggregate group key indexes
    // past the narrow dataset's physical row width — a genuine panic in the
    // worker, after election but before the publish stage.
    let producer = {
        let mut b = PlanBuilder::new();
        let a = with_shared(&mut b);
        b.output(a, "a");
        let s = b.table_scan(
            narrow,
            "chaos/narrow.ss",
            Schema::from_pairs(&[
                ("a", DataType::Int),
                ("b", DataType::Int),
                ("c", DataType::Int),
            ]),
        );
        let boom = b.aggregate(s, vec![2], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        spec(1, b.output(boom, "boom").build().unwrap())
    };
    let follower = |id: u64, out: &str| {
        let mut b = PlanBuilder::new();
        let a = with_shared(&mut b);
        spec(id, b.output(a, out).build().unwrap())
    };
    let specs = [producer, follower(2, "b"), follower(3, "c")];

    // Fault-free ground truth for the followers, on an isolated service.
    let baseline: Vec<_> = {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_datasets(&cv);
        cv.run_sequence(&specs[1..], RunMode::Baseline)
            .unwrap()
            .into_iter()
            .map(|r| r.output_checksums)
            .collect()
    };

    // Both drivers must survive: the inline single-worker path and the
    // readiness-gated pool (a worker parks in next_ready while the
    // producer runs — only the abort wakes it).
    for workers in [1usize, 2] {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_datasets(&cv);
        let arrivals = specs
            .iter()
            .cloned()
            .map(|spec| JobArrival {
                spec,
                offset: SimDuration::ZERO,
            })
            .collect();
        let out = cv.run_windowed(
            arrivals,
            RunMode::CloudViews,
            PipelineOptions {
                workers,
                max_in_flight: 0,
                janitor: false,
            },
            &SharingConfig::default(),
        );

        let msg = out.reports[0].as_ref().unwrap_err().to_string();
        assert!(msg.contains("panicked"), "workers={workers}: got {msg}");
        for (i, want) in baseline.iter().enumerate() {
            let r = out.reports[i + 1]
                .as_ref()
                .unwrap_or_else(|e| panic!("workers={workers}: follower failed: {e}"));
            assert_eq!(&r.output_checksums, want, "workers={workers}: diverged");
            assert_eq!(
                r.started_at,
                SimTime::ZERO + SharingConfig::default().window
            );
        }
        let s = &out.sharing;
        assert_eq!(s.shared_subgraphs, 1, "workers={workers}");
        assert_eq!(
            (s.published, s.aborted),
            (0, 1),
            "workers={workers}: the dead producer's entry must be aborted"
        );
        assert_eq!(
            (s.follower_reuses, s.follower_fallbacks),
            (0, 2),
            "workers={workers}: both followers must fall back to recompute"
        );
    }
}

/// ISSUE 9 satellite 1 (scripted variant) — the producer is killed by fault
/// injection instead of a panic: a scripted builder crash with zero restarts
/// turns the producer's materialization into a fatal error. Followers must
/// be woken and recompute.
#[test]
fn windowed_follower_survives_scripted_builder_kill() {
    use cloudviews::{JobArrival, PipelineOptions, SharingConfig};
    use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
    use scope_engine::data::Table;
    use scope_plan::{AggExpr, AggFunc, DataType, Expr, PlanBuilder, Schema, Value};

    let kv = || Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
    let shared = DatasetId::new(999_979);
    let job = |id: u64, out: &str| {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(shared, "ft/shared.ss", kv());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(10i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
        JobSpec {
            id: JobId::new(id),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(id),
            instance: 0,
            graph: b.output(a, out).build().unwrap(),
        }
    };
    let seed_dataset = |cv: &CloudViews| {
        cv.storage.put_dataset(
            shared,
            Table::single(
                kv(),
                (0..500i64)
                    .map(|i| vec![Value::Int(i % 7), Value::Int(i)])
                    .collect(),
            ),
        );
    };
    let specs = vec![job(1, "a"), job(2, "b"), job(3, "c")];
    let baseline: Vec<_> = {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_dataset(&cv);
        cv.run_sequence(&specs, RunMode::Baseline)
            .unwrap()
            .into_iter()
            .map(|r| r.output_checksums)
            .collect()
    };

    let mut cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    seed_dataset(&cv);
    cv.degradation.max_restarts = 0;
    cv.install_fault_plan(FaultPlan {
        scripted: vec![ScriptedFault {
            site: FaultSite::BuilderCrash,
            job: Some(specs[0].id),
            call_index: 0,
        }],
        ..Default::default()
    });
    let arrivals = specs
        .iter()
        .cloned()
        .map(|spec| JobArrival {
            spec,
            offset: SimDuration::ZERO,
        })
        .collect();
    let out = cv.run_windowed(
        arrivals,
        RunMode::CloudViews,
        PipelineOptions {
            workers: 2,
            max_in_flight: 0,
            janitor: false,
        },
        &SharingConfig::default(),
    );

    let msg = out.reports[0].as_ref().unwrap_err().to_string();
    assert!(msg.contains("max_restarts"), "got {msg}");
    for (i, want) in baseline.iter().enumerate().skip(1) {
        let r = out.reports[i].as_ref().expect("follower must complete");
        assert_eq!(&r.output_checksums, want, "follower {i} diverged");
    }
    assert_eq!((out.sharing.published, out.sharing.aborted), (0, 1));
    assert_eq!(
        (out.sharing.follower_reuses, out.sharing.follower_fallbacks),
        (0, 2)
    );
    assert_locks_reclaimable(&cv, "scripted builder kill");
}

/// ISSUE 9 satellite 4 — chaos wave: a bursty window over the primed
/// workload with injected builder crashes. Exactly one producer per shared
/// subgraph (no view built twice in the wave), every follower completes
/// baseline-identical, and the pooled run's aggregate coordinator counters
/// match a serial (workers = 1) run of the identical wave.
#[test]
fn windowed_chaos_wave_one_producer_per_subgraph_and_serial_parity() {
    use cloudviews::{JobArrival, PipelineOptions, SharingConfig, WindowOutcome};

    let chaos = FaultPlan {
        seed: 7_777,
        builder_crash: 0.35,
        ..Default::default()
    };
    let run = |workers: usize| -> (CloudViews, WindowOutcome, BaselineChecksums) {
        let (mut cv, _w, day1, baseline) = primed_service(61);
        cv.degradation.max_restarts = 12;
        cv.install_fault_plan(chaos.clone());
        let arrivals = day1
            .into_iter()
            .map(|spec| JobArrival {
                spec,
                offset: SimDuration::ZERO,
            })
            .collect();
        let out = cv.run_windowed(
            arrivals,
            RunMode::CloudViews,
            PipelineOptions {
                workers,
                max_in_flight: 0,
                janitor: false,
            },
            &SharingConfig::default(),
        );
        (cv, out, baseline)
    };
    let (pooled_cv, pooled, baseline) = run(4);
    let (serial_cv, serial, _) = run(1);

    for (label, cv, out) in [
        ("pooled", &pooled_cv, &pooled),
        ("serial", &serial_cv, &serial),
    ] {
        let reports: Vec<_> = out
            .reports
            .iter()
            .map(|r| {
                r.as_ref()
                    .unwrap_or_else(|e| panic!("{label}: job failed: {e}"))
                    .clone()
            })
            .collect();
        assert_outputs_match_baseline(&reports, &baseline, label);
        // Exactly one producer per subgraph: nothing is built twice in the
        // wave, even with builders crashing and restarting mid-window.
        let mut built: Vec<_> = reports
            .iter()
            .flat_map(|r| r.views_built.iter().copied())
            .collect();
        let n = built.len();
        built.sort_unstable();
        built.dedup();
        assert_eq!(built.len(), n, "{label}: a view was built twice");
        assert!(
            cv.faults.as_ref().unwrap().injected().builder_crashes > 0,
            "{label}: chaos must actually crash builders"
        );
        assert_fault_accounting(cv, &reports, label);
        assert_locks_reclaimable(cv, label);
    }

    // Pooled and serial runs of the identical wave agree on everything the
    // coordinator did: same elections, same publishes, same reuse counts,
    // same per-job outputs.
    assert!(pooled.sharing.shared_subgraphs >= 1, "wave must share work");
    assert_eq!(
        pooled.sharing.shared_subgraphs,
        serial.sharing.shared_subgraphs
    );
    assert_eq!(pooled.sharing.published, serial.sharing.published);
    assert_eq!(pooled.sharing.aborted, serial.sharing.aborted);
    assert_eq!(
        pooled.sharing.follower_reuses,
        serial.sharing.follower_reuses
    );
    assert_eq!(
        pooled.sharing.follower_fallbacks,
        serial.sharing.follower_fallbacks
    );
    let built = |o: &WindowOutcome| {
        let mut v: Vec<_> = o
            .reports
            .iter()
            .flat_map(|r| r.as_ref().unwrap().views_built.iter().copied())
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(built(&pooled), built(&serial), "same producers either way");
}

#[test]
fn property_any_fault_plan_preserves_outputs_and_reclaims_locks() {
    // Proptest-style: across randomized fault plans, (1) CloudViews output
    // equals baseline output for every job, and (2) every build lock is
    // eventually reclaimable. Cases and plans derive from fixed seeds, so
    // any failure reproduces exactly.
    const CASES: u64 = 6;
    for case in 0..CASES {
        let mut rng =
            SmallRng::seed_from_u64(scope_common::sip64(format!("ft-prop/{case}").as_bytes()));
        let plan = FaultPlan {
            seed: rng.gen_range(0..u64::MAX / 2),
            lookup_fail: rng.gen_range(0.0..0.4),
            propose_fail: rng.gen_range(0.0..0.4),
            report_fail: rng.gen_range(0.0..0.4),
            builder_crash: rng.gen_range(0.0..0.3),
            view_loss: rng.gen_range(0.0..0.5),
            view_corruption: rng.gen_range(0.0..0.5),
            publish_delay: SimDuration::from_secs_f64(rng.gen_range(0.0..10.0)),
            scripted: Vec::new(),
        };
        let context = format!("case {case}: {plan:?}");

        let (mut cv, _w, day1, baseline) = primed_service(40 + case);
        cv.degradation.max_restarts = 12;
        cv.install_fault_plan(plan);

        let mut all_reports = Vec::new();
        for _wave in 0..2 {
            let reports = cv
                .run_sequence(&day1, RunMode::CloudViews)
                .unwrap_or_else(|e| panic!("{context}: job failed: {e}"));
            assert_outputs_match_baseline(&reports, &baseline, &context);
            all_reports.extend(reports);
        }
        assert_fault_accounting(&cv, &all_reports, &context);
        assert_locks_reclaimable(&cv, &context);
    }
}

// ---------------------------------------------------------------------------
// Durable state: crash recovery (DESIGN.md "Durable state & crash recovery")
// ---------------------------------------------------------------------------

/// A fresh, empty store root under the system temp dir.
fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cv-ft-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A durable service rooted at `dir` — recovery runs inside `build()`.
fn durable_service(dir: &Path) -> CloudViews {
    CloudViews::builder(Arc::new(StorageManager::new()))
        .incremental_analyzer(analyzer_cfg())
        .durable(dir)
        .build()
}

/// Everything recovery must reproduce byte-for-byte: the metadata catalog
/// fingerprint, the analyzer state fingerprint, the job-record log length,
/// and the view count.
fn state_signature(cv: &CloudViews) -> (Sig128, Sig128, usize, usize) {
    (
        cv.metadata.fingerprint(),
        cv.analyzer
            .as_ref()
            .expect("analyzer installed")
            .state()
            .fingerprint(),
        cv.repo.records().len(),
        cv.metadata.num_views(),
    )
}

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for e in std::fs::read_dir(src).unwrap() {
        let e = e.unwrap();
        let to = dst.join(e.file_name());
        if e.file_type().unwrap().is_dir() {
            copy_dir(&e.path(), &to);
        } else {
            std::fs::copy(e.path(), &to).unwrap();
        }
    }
}

/// Path of the highest-generation metadata WAL under `dir`.
fn meta_wal(dir: &Path) -> PathBuf {
    let meta = dir.join("meta");
    std::fs::read_dir(&meta)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_prefix("wal.")
                .and_then(|n| n.parse::<u64>().ok())
        })
        .max()
        .map(|g| meta.join(format!("wal.{g}")))
        .expect("no WAL generation")
}

/// Byte offsets where each WAL frame starts (frame = 4-byte length +
/// 8-byte checksum + payload).
fn frame_starts(wal: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut off = 0usize;
    while off + 12 <= wal.len() {
        let len = u32::from_le_bytes(wal[off..off + 4].try_into().unwrap()) as usize;
        if off + 12 + len > wal.len() {
            break;
        }
        starts.push(off);
        off += 12 + len;
    }
    starts
}

/// A crash can tear the WAL at *any* byte. Truncating the log at every
/// offset inside the final record must recover — without panicking — to
/// exactly the state of the log minus that record (the last clean
/// boundary), never to garbage and never to a partially applied event.
#[test]
fn torn_wal_tail_recovers_at_every_byte_offset() {
    let dir = temp_store("torn");
    {
        let w = workload(11);
        let cv = durable_service(&dir);
        w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
            .unwrap();
        let outcome = cv.analyze_round().unwrap();
        cv.install_analysis(&outcome);
        // End on a purge so the final WAL record is a small PurgeShard
        // frame — the per-offset loop stays cheap.
        cv.purge_expired();
    }

    let wal_path = meta_wal(&dir);
    let wal = std::fs::read(&wal_path).unwrap();
    let starts = frame_starts(&wal);
    let last = *starts.last().expect("priming wrote records");
    assert!(starts.len() > 1, "need at least two frames");

    // Ground truth: the log cleanly cut *before* the last record.
    let scratch = temp_store("torn-expected");
    copy_dir(&dir, &scratch);
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(meta_wal(&scratch))
        .unwrap();
    f.set_len(last as u64).unwrap();
    drop(f);
    let expected = state_signature(&durable_service(&scratch));
    let _ = std::fs::remove_dir_all(&scratch);

    for cut in last + 1..wal.len() {
        let scratch = temp_store("torn-cut");
        copy_dir(&dir, &scratch);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(meta_wal(&scratch))
            .unwrap();
        f.set_len(cut as u64).unwrap();
        drop(f);
        let got = state_signature(&durable_service(&scratch));
        assert_eq!(
            got, expected,
            "truncation at byte {cut} (last clean boundary {last}) did not \
             recover to the last clean record boundary"
        );
        let _ = std::fs::remove_dir_all(&scratch);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cold start from pure WAL (no snapshot was ever taken) rebuilds
/// byte-identical fingerprints, the recovered service keeps serving jobs,
/// and a snapshot → reopen round-trip preserves the same equality.
#[test]
fn crash_recovery_restores_fingerprints_and_stays_live() {
    let dir = temp_store("crash");
    let w = workload(7);
    let before = {
        let cv = durable_service(&dir);
        w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
            .unwrap();
        let outcome = cv.analyze_round().unwrap();
        assert!(!outcome.selected.is_empty(), "fixture must select views");
        cv.install_analysis(&outcome);
        w.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
        cv.run_sequence(&w.jobs_for_instance(0, 1).unwrap(), RunMode::CloudViews)
            .unwrap();
        state_signature(&cv)
        // dropped without any snapshot: recovery replays the full WAL
    };

    let cv = durable_service(&dir);
    assert_eq!(state_signature(&cv), before, "pure-WAL replay drifted");

    // The recovered service is live: a further instance runs to completion
    // and its mutations land in the same log.
    w.register_instance_data(0, 2, &cv.storage, 1.0).unwrap();
    let reports = cv
        .run_sequence(&w.jobs_for_instance(0, 2).unwrap(), RunMode::CloudViews)
        .unwrap();
    assert!(!reports.is_empty());
    assert!(
        cv.repo.records().len() > before.2,
        "new runs must be recorded"
    );

    // Snapshot compaction must not change what recovery reconstructs.
    assert!(cv.snapshot_now(), "explicit snapshot must run");
    let after = state_signature(&cv);
    drop(cv);
    let cv = durable_service(&dir);
    assert_eq!(state_signature(&cv), after, "snapshot recovery drifted");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A build lock held at crash time is re-derived *conservatively*: the
/// recovered lock keeps its original holder and expiry (never extended),
/// so a takeover builder can claim the view the moment the mined TTL
/// elapses — and no recovered lock outlives that horizon.
#[test]
fn recovered_locks_keep_original_expiry_and_drain() {
    let dir = temp_store("locks");
    let precise = Sig128 {
        hi: 0xfeed_f00d,
        lo: 0xdead_beef,
    };
    let holder = JobId::new(77);
    let ttl = SimDuration::from_micros(5_000_000);
    let granted_expiry = {
        let cv = durable_service(&dir);
        let at = cv.clock.now();
        cv.metadata
            .propose(&ProposeRequest::new(precise, holder, ttl, at))
            .unwrap();
        let (h, expires_at) = cv.metadata.lock_holder(precise).expect("lock granted");
        assert_eq!(h, holder);
        assert_eq!(expires_at, at + ttl);
        expires_at
        // crash with the builder mid-materialization
    };

    let cv = durable_service(&dir);
    let (h, expires_at) = cv
        .metadata
        .lock_holder(precise)
        .expect("in-flight lock must survive recovery");
    assert_eq!(
        (h, expires_at),
        (holder, granted_expiry),
        "recovered lock must keep its original holder and expiry"
    );
    // Active until — and not one microsecond past — the mined TTL.
    assert_eq!(cv.metadata.num_active_locks(SimTime::ZERO), 1);
    assert_eq!(
        cv.metadata.num_active_locks(granted_expiry),
        0,
        "recovered lock must expire at its pre-crash horizon"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
