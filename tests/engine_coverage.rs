//! Cross-crate coverage of engine paths the main experiments use less:
//! loops/merge/outer joins through the optimizer, extractor scans, GbApply,
//! range scans, window running sums, remaps, and combiner execution.

use scope_common::ids::{DatasetId, JobId};
use scope_common::time::SimTime;
use scope_engine::cost::CostModel;
use scope_engine::data::{multiset_checksum, Table};
use scope_engine::exec::execute_plan;
use scope_engine::optimizer::{optimize, NoViewServices, OptimizerConfig};
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::op::WindowFunc;
use scope_plan::{
    AggExpr, DataType, Expr, JoinImpl, JoinKind, Operator, PlanBuilder, QueryGraph, Schema,
    SortKey, SortOrder, Udo, UdoKind, Value,
};

fn kv_schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
}

fn text_schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int), ("text", DataType::Str)])
}

fn run(graph: &QueryGraph, storage: &StorageManager) -> scope_engine::exec::ExecOutcome {
    let plan = optimize(
        graph,
        &[],
        &NoViewServices,
        &OptimizerConfig::default(),
        JobId::new(1),
    )
    .unwrap();
    execute_plan(
        &plan.physical,
        storage,
        &CostModel::default(),
        SimTime::ZERO,
    )
    .unwrap()
}

fn kv_storage(rows: &[(i64, i64)]) -> StorageManager {
    let s = StorageManager::new();
    s.put_dataset(
        DatasetId::new(1),
        Table::single(
            kv_schema(),
            rows.iter()
                .map(|&(k, v)| vec![Value::Int(k), Value::Int(v)])
                .collect(),
        ),
    );
    s
}

#[test]
fn loops_join_matches_hash_join() {
    let storage = kv_storage(&[(1, 10), (2, 20), (2, 21), (3, 30)]);
    let build = |implementation| {
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
        let r = b.table_scan(DatasetId::new(1), "r", kv_schema());
        let j = b.join(l, r, JoinKind::Inner, vec![0], vec![0]);
        let g = b.output(j, "o").build().unwrap();
        let mut g2 = g.clone();
        if let Operator::Join {
            implementation: i, ..
        } = &mut g2.node_mut(j).unwrap().op
        {
            *i = implementation;
        }
        g2
    };
    let hash = run(&build(JoinImpl::Hash), &storage);
    let loops = run(&build(JoinImpl::Loops), &storage);
    assert_eq!(
        multiset_checksum(&hash.outputs["o"]),
        multiset_checksum(&loops.outputs["o"])
    );
    // 2x2 match on k=2 plus k=1 and k=3: 4 + 1 + 1 = 6 rows.
    assert_eq!(hash.outputs["o"].num_rows(), 6);
}

#[test]
fn merge_join_selected_for_sorted_inputs_and_agrees() {
    let storage = kv_storage(&[(5, 1), (1, 2), (3, 3), (1, 4), (5, 5)]);
    let mut b = PlanBuilder::new();
    let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
    let ls = {
        let ex = b.exchange(
            l,
            scope_plan::Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        );
        b.sort(ex, SortOrder::asc(&[0]))
    };
    let r = b.table_scan(DatasetId::new(1), "r", kv_schema());
    let rs = {
        let ex = b.exchange(
            r,
            scope_plan::Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        );
        b.sort(ex, SortOrder::asc(&[0]))
    };
    let j = b.join(ls, rs, JoinKind::Inner, vec![0], vec![0]);
    let g = b.output(j, "o").build().unwrap();
    let plan = optimize(
        &g,
        &[],
        &NoViewServices,
        &OptimizerConfig::default(),
        JobId::new(1),
    )
    .unwrap();
    // With both inputs hash-partitioned and sorted, the optimizer must pick
    // a merge join.
    let merged = plan.physical.nodes().iter().any(|n| {
        matches!(
            n.op,
            Operator::Join {
                implementation: JoinImpl::Merge,
                ..
            }
        )
    });
    assert!(
        merged,
        "merge join not selected:\n{}",
        plan.physical.explain()
    );
    let out = execute_plan(
        &plan.physical,
        &storage,
        &CostModel::default(),
        SimTime::ZERO,
    )
    .unwrap();
    // k=5 matches 2x2, k=1 matches 2x2, k=3 matches 1: 9 rows.
    assert_eq!(out.outputs["o"].num_rows(), 9);
}

#[test]
fn left_outer_join_pads_through_optimizer() {
    let storage = StorageManager::new();
    storage.put_dataset(
        DatasetId::new(1),
        Table::single(
            kv_schema(),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Int(20)],
            ],
        ),
    );
    storage.put_dataset(
        DatasetId::new(2),
        Table::single(kv_schema(), vec![vec![Value::Int(2), Value::Int(200)]]),
    );
    let mut b = PlanBuilder::new();
    let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
    let r = b.table_scan(DatasetId::new(2), "r", kv_schema());
    let j = b.join(l, r, JoinKind::LeftOuter, vec![0], vec![0]);
    let g = b.output(j, "o").build().unwrap();
    let out = run(&g, &storage);
    let rows = out.outputs["o"].all_rows();
    assert_eq!(rows.len(), 2);
    let unmatched = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(unmatched[2], Value::Null);
    assert_eq!(unmatched[3], Value::Null);
}

#[test]
fn extract_scan_runs_user_code_at_the_leaf() {
    let storage = StorageManager::new();
    storage.put_dataset(
        DatasetId::new(1),
        Table::single(
            text_schema(),
            vec![
                vec![Value::Int(1), Value::Str("a b c".into())],
                vec![Value::Int(2), Value::Str("d".into())],
            ],
        ),
    );
    let mut b = PlanBuilder::new();
    let e = b.extract(
        DatasetId::new(1),
        "raw/logs.txt",
        text_schema(),
        Udo::new(UdoKind::Tokenize { col: 1 }, "Contoso.Text", "2.0"),
    );
    let g = b.output(e, "o").build().unwrap();
    let out = run(&g, &storage);
    assert_eq!(out.outputs["o"].num_rows(), 4);
    assert_eq!(out.outputs["o"].schema.len(), 3);
    // The leaf records pre-extraction scanned rows as its input.
    assert_eq!(out.node_stats[0].in_rows, 2);
}

#[test]
fn range_scan_applies_predicate_during_scan() {
    let storage = kv_storage(&[(1, 1), (5, 2), (9, 3)]);
    let mut b = PlanBuilder::new();
    let s = b.range_scan(
        DatasetId::new(1),
        "t",
        kv_schema(),
        Expr::col(0)
            .ge(Expr::lit(4i64))
            .and(Expr::col(0).le(Expr::lit(8i64))),
    );
    let g = b.output(s, "o").build().unwrap();
    let out = run(&g, &storage);
    assert_eq!(out.outputs["o"].num_rows(), 1);
    assert_eq!(out.outputs["o"].all_rows()[0][0], Value::Int(5));
    // Root kind is Range, not TableScan.
    assert_eq!(g.node(s).unwrap().op.kind(), scope_plan::OpKind::Range);
}

#[test]
fn gb_apply_top_per_group_through_enforcers() {
    let storage = kv_storage(&[(1, 5), (1, 9), (1, 7), (2, 3), (2, 8)]);
    let mut b = PlanBuilder::new();
    let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
    let a = b.gb_apply(
        s,
        Udo::new(UdoKind::TopPerGroup { col: 1, n: 1 }, "L", "1"),
        vec![0],
    );
    let g = b.output(a, "o").build().unwrap();
    let out = run(&g, &storage);
    let mut rows = out.outputs["o"].all_rows();
    rows.sort();
    assert_eq!(
        rows,
        vec![
            vec![Value::Int(1), Value::Int(9)],
            vec![Value::Int(2), Value::Int(8)],
        ]
    );
}

#[test]
fn window_running_sum_with_partitioning() {
    let storage = kv_storage(&[(1, 10), (1, 20), (2, 5)]);
    let mut b = PlanBuilder::new();
    let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
    let w = b.window(s, WindowFunc::RunningSum(1), vec![0], SortOrder::asc(&[1]));
    let g = b.output(w, "o").build().unwrap();
    let out = run(&g, &storage);
    let mut rows = out.outputs["o"].all_rows();
    rows.sort();
    assert_eq!(rows.len(), 3);
    // Partition k=1 accumulates 10 then 30; k=2 starts fresh at 5.
    assert!(rows.contains(&vec![Value::Int(1), Value::Int(10), Value::Float(10.0)]));
    assert!(rows.contains(&vec![Value::Int(1), Value::Int(20), Value::Float(30.0)]));
    assert!(rows.contains(&vec![Value::Int(2), Value::Int(5), Value::Float(5.0)]));
}

#[test]
fn remap_renames_and_reorders() {
    let storage = kv_storage(&[(7, 70)]);
    let mut b = PlanBuilder::new();
    let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
    let r = b.remap(s, vec![1, 0], vec!["value".into(), "key".into()]);
    let g = b.output(r, "o").build().unwrap();
    let out = run(&g, &storage);
    assert_eq!(out.outputs["o"].schema.to_string(), "(value:int, key:int)");
    assert_eq!(
        out.outputs["o"].all_rows(),
        vec![vec![Value::Int(70), Value::Int(7)]]
    );
}

#[test]
fn combiner_and_sequence_compose() {
    let storage = kv_storage(&[(2, 1), (1, 2)]);
    let mut b = PlanBuilder::new();
    let a = b.table_scan(DatasetId::new(1), "a", kv_schema());
    let c = b.table_scan(DatasetId::new(1), "c", kv_schema());
    let merged = b.combine(a, c, Udo::new(UdoKind::MergeStreams, "L", "1"));
    let extra = b.table_scan(DatasetId::new(1), "e", kv_schema());
    let seq = b.sequence(vec![extra, merged]);
    let g = b.output(seq, "o").build().unwrap();
    let out = run(&g, &storage);
    // Sequence yields the combiner output: both scans concatenated (4 rows).
    assert_eq!(out.outputs["o"].num_rows(), 4);
}

#[test]
fn top_descending_deterministic_under_dop() {
    // Ties everywhere: v identical; determinism must hold across dop.
    let storage = kv_storage(&[(1, 5), (2, 5), (3, 5), (4, 5), (5, 5)]);
    let build = || {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            scope_plan::Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let t = b.top(ex, 2, SortOrder(vec![SortKey::desc(1)]));
        b.output(t, "o").build().unwrap()
    };
    let mut sums = Vec::new();
    for dop in [2usize, 8] {
        let plan = optimize(
            &build(),
            &[],
            &NoViewServices,
            &OptimizerConfig {
                default_dop: dop,
                ..Default::default()
            },
            JobId::new(1),
        )
        .unwrap();
        let out = execute_plan(
            &plan.physical,
            &storage,
            &CostModel::default(),
            SimTime::ZERO,
        )
        .unwrap();
        sums.push(multiset_checksum(&out.outputs["o"]));
    }
    assert_eq!(sums[0], sums[1]);
}

#[test]
fn stream_agg_count_distinct_and_avg_match_hash() {
    let storage = kv_storage(&[(1, 4), (1, 4), (1, 6), (2, 1)]);
    let aggs = vec![
        AggExpr::new("cd", AggFunc::CountDistinct, 1),
        AggExpr::new("avg", AggFunc::Avg, 1),
        AggExpr::new("mn", AggFunc::Min, 1),
    ];
    // Via the optimizer: sorted input selects Stream, unsorted selects Hash.
    let sorted_plan = {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            scope_plan::Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        );
        let so = b.sort(ex, SortOrder::asc(&[0]));
        let a = b.aggregate(so, vec![0], aggs.clone());
        b.output(a, "o").build().unwrap()
    };
    let hash_plan = {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let a = b.aggregate(s, vec![0], aggs);
        b.output(a, "o").build().unwrap()
    };
    let a = run(&sorted_plan, &storage);
    let b_ = run(&hash_plan, &storage);
    assert_eq!(
        multiset_checksum(&a.outputs["o"]),
        multiset_checksum(&b_.outputs["o"])
    );
    let rows = a.outputs["o"].all_rows();
    let k1 = rows.iter().find(|r| r[0] == Value::Int(1)).unwrap();
    assert_eq!(k1[1], Value::Int(2)); // distinct {4, 6}
    assert_eq!(k1[2], Value::Float(14.0 / 3.0));
    assert_eq!(k1[3], Value::Int(4));
}
