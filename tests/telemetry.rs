//! Observability-layer integration suite (DESIGN.md §8).
//!
//! Four groups, matching the acceptance criteria of the observability PR:
//!
//! 1. counter/histogram correctness under 12-way concurrent jobs;
//! 2. span-tree shape for reuse-hit, build, and baseline-fallback jobs;
//! 3. Prometheus / JSON export round-trips;
//! 4. telemetry numbers agree with `JobRunReport` / `JobFaultReport` under
//!    a scripted fault plan.

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::runtime::JobRunReport;
use cloudviews::{CloudViews, FaultPlan, FaultSite, RunMode, ScriptedFault};
use scope_common::ids::JobId;
use scope_common::telemetry::{json, MetricsSnapshot, SpanRecord};
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("tel")],
        seed,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap()
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A service primed with one analyzed baseline instance, plus the jobs of
/// the next instance (ready to run with CloudViews enabled).
fn primed_service(seed: u64) -> (CloudViews, Vec<JobSpec>) {
    let w = workload(seed);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    assert!(!analysis.selected.is_empty(), "fixture must select views");
    cv.install_analysis(&analysis);
    w.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    (cv, day1)
}

/// Splits one job's spans into its root ("job") span and its children.
fn span_tree(cv: &CloudViews, job: JobId) -> (SpanRecord, Vec<SpanRecord>) {
    let spans = cv.telemetry.tracer.spans_for_job(job);
    let roots: Vec<_> = spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "job {job}: expected exactly one root span");
    let root = roots[0].clone();
    assert_eq!(root.name, "job");
    let children: Vec<_> = spans
        .iter()
        .filter(|s| s.parent == Some(root.id))
        .cloned()
        .collect();
    (root, children)
}

/// Asserts one attempt's child spans: the five per-job phases, each nested
/// inside the root's simulated interval, in pipeline order.
fn assert_phase_children(root: &SpanRecord, children: &[SpanRecord]) {
    let names: Vec<&str> = children.iter().map(|s| s.name).collect();
    assert_eq!(
        names,
        [
            "metadata_lookup",
            "optimize",
            "execute",
            "publish",
            "record"
        ],
        "job {:?}",
        root.job
    );
    assert!(children.len() >= 4, "acceptance: >=4 child phases");
    for c in children {
        assert_eq!(c.job, root.job, "child span lost its job attribution");
        assert!(
            c.sim_start >= root.sim_start,
            "{} starts before root",
            c.name
        );
        assert!(c.sim_end <= root.sim_end, "{} ends after root", c.name);
        assert!(c.sim_start <= c.sim_end, "{} runs backwards", c.name);
    }
    for pair in children.windows(2) {
        assert!(
            pair[1].sim_start >= pair[0].sim_start,
            "{} begins before {}",
            pair[1].name,
            pair[0].name
        );
    }
}

// ---------------------------------------------------------------------------
// Group 1: counter/histogram correctness under 12-way concurrency.
// ---------------------------------------------------------------------------

#[test]
fn concurrent_jobs_count_exactly() {
    let (cv, day1) = primed_service(101);
    // Twelve simultaneous submissions: recycle the instance's specs under
    // fresh job ids so every thread is a distinct job.
    let specs: Vec<JobSpec> = (0..12)
        .map(|i| {
            let mut spec = day1[i % day1.len()].clone();
            spec.id = JobId::new(9_000 + i as u64);
            spec
        })
        .collect();
    let ids: Vec<JobId> = specs.iter().map(|s| s.id).collect();

    let before = cv.telemetry.metrics.snapshot();
    cv.telemetry.tracer.clear();
    let results = cv.run_concurrent_results(specs, RunMode::CloudViews);
    let reports: Vec<JobRunReport> = results.into_iter().map(|r| r.unwrap()).collect();
    let after = cv.telemetry.metrics.snapshot();

    let delta = |name: &str| after.counter(name) - before.counter(name);
    assert_eq!(delta("cv_jobs_total"), 12);
    assert_eq!(delta("cv_jobs_failed_total"), 0);
    assert_eq!(delta("cv_jobs_baseline_fallback_total"), 0);
    let built: u64 = reports.iter().map(|r| r.views_built.len() as u64).sum();
    let reused: u64 = reports.iter().map(|r| r.views_reused.len() as u64).sum();
    assert!(built + reused > 0, "fixture produced no reuse activity");
    assert_eq!(delta("cv_views_built_total"), built);
    assert_eq!(delta("cv_views_reused_total"), reused);
    assert_eq!(
        delta("cv_jobs_reuse_hit_total"),
        reports
            .iter()
            .filter(|r| !r.views_reused.is_empty())
            .count() as u64
    );
    assert_eq!(
        delta("cv_jobs_build_total"),
        reports.iter().filter(|r| !r.views_built.is_empty()).count() as u64
    );

    // The latency histogram saw exactly these twelve observations, and its
    // sum is the exact sum of the reported latencies (no sampling).
    let h_before = before.histogram("cv_job_latency_sim_micros");
    let h_after = after.histogram("cv_job_latency_sim_micros").unwrap();
    let (count0, sum0) = h_before.map(|h| (h.count, h.sum)).unwrap_or((0, 0));
    assert_eq!(h_after.count - count0, 12);
    let latency_sum: u64 = reports.iter().map(|r| r.latency.micros()).sum();
    assert_eq!(h_after.sum - sum0, latency_sum);

    // Every concurrent job produced a complete span tree.
    for id in ids {
        let (root, children) = span_tree(&cv, id);
        assert_phase_children(&root, &children);
        assert!(root.outcome.is_some(), "root span must carry an outcome");
    }
    assert_eq!(cv.telemetry.tracer.dropped(), 0, "ring buffer overflowed");
}

// ---------------------------------------------------------------------------
// Group 2: span-tree shape per job outcome.
// ---------------------------------------------------------------------------

#[test]
fn span_tree_shapes_for_reuse_build_and_fallback() {
    let (cv, day1) = primed_service(211);
    cv.telemetry.tracer.clear();
    let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();

    // A pure builder (built, reused nothing) and a reuse hit both exist in
    // a primed recurring instance.
    let builder = reports
        .iter()
        .find(|r| !r.views_built.is_empty() && r.views_reused.is_empty())
        .expect("fixture must contain a pure build job");
    let (root, children) = span_tree(&cv, builder.job);
    assert_phase_children(&root, &children);
    assert_eq!(root.outcome, Some("build"));
    assert_eq!(
        root.sim_end - root.sim_start,
        builder.latency,
        "root span must cover exactly the job's reported latency"
    );

    let reuser = reports
        .iter()
        .find(|r| !r.views_reused.is_empty())
        .expect("fixture must contain a reuse hit");
    let (root, children) = span_tree(&cv, reuser.job);
    assert_phase_children(&root, &children);
    assert_eq!(root.outcome, Some("reuse"));
    let optimize = children.iter().find(|c| c.name == "optimize").unwrap();
    assert_eq!(optimize.outcome, Some("reuse"));

    // A plain baseline-mode run is labeled "baseline" and still gets the
    // full five-phase tree (lookup is trivially zero-width).
    cv.telemetry.tracer.clear();
    let report = cv
        .run_job_at(&day1[0], RunMode::Baseline, cv.clock.now())
        .unwrap();
    let (root, children) = span_tree(&cv, report.job);
    assert_phase_children(&root, &children);
    assert_eq!(root.outcome, Some("baseline"));

    // Baseline fallback: every lookup call of one job fails, retries
    // exhaust, and the root span says so.
    let (mut cv, day1) = primed_service(223);
    let victim = day1[0].id;
    let scripted = (0..=cv.degradation.lookup_retries as u64)
        .map(|call_index| ScriptedFault {
            site: FaultSite::MetadataLookup,
            job: Some(victim),
            call_index,
        })
        .collect();
    cv.install_fault_plan(FaultPlan {
        scripted,
        ..Default::default()
    });
    cv.telemetry.tracer.clear();
    let report = cv
        .run_job_at(&day1[0], RunMode::CloudViews, cv.clock.now())
        .unwrap();
    assert!(report.faults.fell_back_to_baseline);
    let (root, children) = span_tree(&cv, victim);
    assert_phase_children(&root, &children);
    assert_eq!(root.outcome, Some("baseline_fallback"));
    let lookup = children
        .iter()
        .find(|c| c.name == "metadata_lookup")
        .unwrap();
    assert!(
        lookup.sim_end > lookup.sim_start,
        "failed lookups still pay modeled latency"
    );
}

// ---------------------------------------------------------------------------
// Group 3: export round-trips.
// ---------------------------------------------------------------------------

#[test]
fn prometheus_export_is_well_formed() {
    let (cv, day1) = primed_service(307);
    cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    let text = cv.telemetry.metrics.prometheus_text();

    for series in [
        "# TYPE cv_jobs_total counter",
        "# TYPE cv_metadata_lookups_total counter",
        "# TYPE cv_storage_views gauge",
        "# TYPE cv_job_latency_sim_micros histogram",
    ] {
        assert!(text.contains(series), "missing {series:?}");
    }
    // Histogram exposition: cumulative buckets, +Inf bound, sum and count.
    assert!(text.contains("cv_job_latency_sim_micros_bucket{le=\""));
    assert!(text.contains("cv_job_latency_sim_micros_bucket{le=\"+Inf\"}"));
    assert!(text.contains("cv_job_latency_sim_micros_sum "));
    assert!(text.contains("cv_job_latency_sim_micros_count "));
    // Every non-comment line is `name[{labels}] value`.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(!name.is_empty());
        assert!(value.parse::<i64>().is_ok(), "bad value in {line:?}");
    }
}

#[test]
fn json_snapshot_round_trips() {
    let (cv, day1) = primed_service(311);
    cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    let snap = cv.telemetry.metrics.snapshot();
    assert!(snap.counter("cv_jobs_total") > 0);

    let encoded = snap.to_json();
    let back = MetricsSnapshot::from_json(&encoded).expect("parse our own export");
    assert_eq!(back, snap, "snapshot → JSON → snapshot must be lossless");
    // Stability: re-encoding the parsed snapshot is byte-identical.
    assert_eq!(back.to_json(), encoded);
}

#[test]
fn tracer_json_round_trips() {
    let (cv, day1) = primed_service(313);
    cv.telemetry.tracer.clear();
    cv.run_sequence(&day1[..2], RunMode::CloudViews).unwrap();

    let finished = cv.telemetry.tracer.finished();
    let parsed = json::parse(&cv.telemetry.tracer.json()).expect("tracer JSON parses");
    let arr = parsed.as_array().expect("top level is an array");
    assert_eq!(arr.len(), finished.len());
    for (value, record) in arr.iter().zip(&finished) {
        let obj = value.as_object().unwrap();
        assert_eq!(obj.get("id").unwrap().as_u64(), Some(record.id));
        assert_eq!(
            obj.get("name").unwrap().as_str(),
            Some(record.name),
            "span {}",
            record.id
        );
        assert_eq!(
            obj.get("sim_start_us").unwrap().as_u64(),
            Some(record.sim_start.micros())
        );
        assert_eq!(
            obj.get("sim_end_us").unwrap().as_u64(),
            Some(record.sim_end.micros())
        );
        match record.parent {
            Some(p) => assert_eq!(obj.get("parent").unwrap().as_u64(), Some(p)),
            None => assert!(obj.get("parent").unwrap().as_u64().is_none()),
        }
    }
}

// ---------------------------------------------------------------------------
// Group 4: telemetry agrees with JobRunReport/JobFaultReport under faults.
// ---------------------------------------------------------------------------

#[test]
fn counters_match_reports_under_scripted_faults() {
    let (mut cv, day1) = primed_service(401);
    let retries = cv.degradation.lookup_retries as u64;
    // Job A: one transient lookup fault (retry succeeds). Job B: every
    // lookup call fails (fallback). Every job: its first builder-crash
    // check fires once (builders restart exactly once).
    let mut scripted = vec![ScriptedFault {
        site: FaultSite::MetadataLookup,
        job: Some(day1[0].id),
        call_index: 0,
    }];
    scripted.extend((0..=retries).map(|call_index| ScriptedFault {
        site: FaultSite::MetadataLookup,
        job: Some(day1[1].id),
        call_index,
    }));
    scripted.push(ScriptedFault {
        site: FaultSite::BuilderCrash,
        job: None,
        call_index: 0,
    });
    let injector = cv.install_fault_plan(FaultPlan {
        scripted,
        ..Default::default()
    });

    let before = cv.telemetry.metrics.snapshot();
    let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    let after = cv.telemetry.metrics.snapshot();
    let delta = |name: &str| after.counter(name) - before.counter(name);

    // Outcome counters are defined by the same predicates as the reports.
    assert_eq!(delta("cv_jobs_total"), reports.len() as u64);
    assert_eq!(delta("cv_jobs_failed_total"), 0);
    assert_eq!(
        delta("cv_jobs_reuse_hit_total"),
        reports
            .iter()
            .filter(|r| !r.views_reused.is_empty())
            .count() as u64
    );
    assert_eq!(
        delta("cv_jobs_build_total"),
        reports.iter().filter(|r| !r.views_built.is_empty()).count() as u64
    );
    assert_eq!(
        delta("cv_jobs_baseline_fallback_total"),
        reports
            .iter()
            .filter(|r| r.faults.fell_back_to_baseline)
            .count() as u64
    );
    assert_eq!(
        delta("cv_views_built_total"),
        reports
            .iter()
            .map(|r| r.views_built.len() as u64)
            .sum::<u64>()
    );

    // Restarts: one per builder crash, and the fixture did crash builders.
    let crashes: u64 = reports.iter().map(|r| r.faults.builder_crashes).sum();
    assert!(crashes > 0, "fixture must crash at least one builder");
    assert_eq!(delta("cv_jobs_restarts_total"), crashes);

    // The metadata service's own fault counter, the per-job ledgers, and
    // the injector all agree: 1 (job A) + retries+1 (job B).
    let lookup_faults: u64 = reports.iter().map(|r| r.faults.lookup_faults).sum();
    assert_eq!(lookup_faults, 1 + retries + 1);
    assert_eq!(delta("cv_metadata_lookup_faults_total"), lookup_faults);
    assert_eq!(injector.injected().lookup_failures, lookup_faults);
    assert_eq!(injector.injected().builder_crashes, crashes);

    // Job B fell back; job A recovered on retry.
    let by_id = |id: JobId| reports.iter().find(|r| r.job == id).unwrap();
    assert!(!by_id(day1[0].id).faults.fell_back_to_baseline);
    assert!(by_id(day1[1].id).faults.fell_back_to_baseline);
}

/// Builds a CloudViews service over one registered workload instance with
/// a scripted lookup-fault plan but *no installed analysis*: every job
/// makes its metadata lookup (which can fault) yet receives no
/// annotations, so per-job behavior is independent of scheduling.
fn faulted_service_no_annotations(seed: u64) -> (CloudViews, Vec<JobSpec>) {
    let w = workload(seed);
    let mut cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    let jobs = w.jobs_for_instance(0, 0).unwrap();
    let retries = cv.degradation.lookup_retries as u64;
    // Job 0: one transient lookup fault (retry recovers). Job 1: every
    // lookup call fails (retries exhaust, baseline fallback).
    let mut scripted = vec![ScriptedFault {
        site: FaultSite::MetadataLookup,
        job: Some(jobs[0].id),
        call_index: 0,
    }];
    scripted.extend((0..=retries).map(|call_index| ScriptedFault {
        site: FaultSite::MetadataLookup,
        job: Some(jobs[1].id),
        call_index,
    }));
    cv.install_fault_plan(FaultPlan {
        scripted,
        ..Default::default()
    });
    (cv, jobs)
}

/// The staged pipeline's scheduling must be invisible in the results: the
/// same workload under the same scripted fault plan produces identical
/// per-job reports and identical aggregate telemetry whether jobs run on
/// one worker or on a stealing pool with a tight admission bound.
#[test]
fn run_many_aggregates_match_serial_under_scripted_faults() {
    use cloudviews::PipelineOptions;

    let (serial_cv, jobs) = faulted_service_no_annotations(419);
    let serial = serial_cv.run_many(
        jobs.clone(),
        RunMode::CloudViews,
        PipelineOptions {
            workers: 1,
            max_in_flight: 1,
            janitor: false,
        },
    );

    let (pool_cv, jobs_again) = faulted_service_no_annotations(419);
    let pooled = pool_cv.run_many(
        jobs_again,
        RunMode::CloudViews,
        PipelineOptions {
            workers: 4,
            max_in_flight: 2,
            janitor: false,
        },
    );

    // Job-by-job equality of everything the service reports.
    assert_eq!(serial.len(), pooled.len());
    for (s, p) in serial.iter().zip(&pooled) {
        let (s, p) = (s.as_ref().unwrap(), p.as_ref().unwrap());
        assert_eq!(s.job, p.job);
        assert_eq!(s.latency, p.latency, "job {}", s.job);
        assert_eq!(s.lookup_latency, p.lookup_latency, "job {}", s.job);
        assert_eq!(s.cpu_time, p.cpu_time, "job {}", s.job);
        assert_eq!(s.output_checksums, p.output_checksums, "job {}", s.job);
        assert_eq!(s.faults, p.faults, "job {}", s.job);
    }
    // The scripted faults actually fired, identically on both sides.
    let fell_back: Vec<_> = serial
        .iter()
        .map(|r| r.as_ref().unwrap().faults.fell_back_to_baseline)
        .collect();
    assert!(fell_back.iter().any(|&f| f), "fixture must exercise faults");

    // Aggregate telemetry is identical: counters and the exact latency
    // histogram (count and sum) agree across schedulers.
    let a = serial_cv.telemetry.metrics.snapshot();
    let b = pool_cv.telemetry.metrics.snapshot();
    for counter in [
        "cv_jobs_total",
        "cv_jobs_failed_total",
        "cv_jobs_baseline_fallback_total",
        "cv_jobs_reuse_hit_total",
        "cv_jobs_build_total",
        "cv_metadata_lookup_faults_total",
    ] {
        assert_eq!(a.counter(counter), b.counter(counter), "{counter}");
    }
    // Hit/miss split may differ when concurrent first compiles race, but
    // every job compiles exactly once either way.
    let compiles = |s: &MetricsSnapshot| {
        s.counter("cv_template_cache_hits_total") + s.counter("cv_template_cache_misses_total")
    };
    assert_eq!(compiles(&a), serial.len() as u64);
    assert_eq!(compiles(&a), compiles(&b), "template compiles");
    let ha = a.histogram("cv_job_latency_sim_micros").unwrap();
    let hb = b.histogram("cv_job_latency_sim_micros").unwrap();
    assert_eq!((ha.count, ha.sum), (hb.count, hb.sum), "latency histogram");
}
