//! In-flight work sharing suite (DESIGN.md §15).
//!
//! Drives [`CloudViews::run_windowed`] end to end: jobs admitted in one
//! window share exactly one producer per common subgraph, followers reuse
//! its early-materialized output, and — the correctness bar — every output
//! stays byte-identical to an uncoordinated serial run, in submission
//! order, under both publication disciplines and with sharing disabled.

use std::sync::Arc;

use cloudviews::{CloudViews, JobArrival, PipelineOptions, RunMode, SharingConfig, WindowOutcome};
use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
use scope_common::time::SimDuration;
use scope_engine::data::Table;
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema, Value};

const SHARED_STREAM: u64 = 7_001;

fn kv_schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
}

/// A deterministic 2 000-row stream: big enough that recomputing the shared
/// aggregation dominates reading back its (10-group) view.
fn seed_shared_stream(cv: &CloudViews) {
    let rows: Vec<Vec<Value>> = (0..2_000)
        .map(|i| vec![Value::Int(i % 10), Value::Int((i * 37) % 1_000)])
        .collect();
    cv.storage.put_dataset(
        DatasetId::new(SHARED_STREAM),
        Table::single(kv_schema(), rows),
    );
}

fn spec(id: u64, graph: scope_plan::QueryGraph) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        cluster: ClusterId::new(1),
        vc: VcId::new(1),
        user: UserId::new(1),
        template: TemplateId::new(id),
        instance: 0,
        graph,
    }
}

/// scan → filter → aggregate over the shared stream; byte-identical across
/// jobs, so the window coordinator sees one precise-equal subgraph.
fn shared_job(id: u64, out: &str) -> JobSpec {
    let mut b = PlanBuilder::new();
    let s = b.table_scan(DatasetId::new(SHARED_STREAM), "shared/x.ss", kv_schema());
    let f = b.filter(s, Expr::col(1).ge(Expr::lit(5i64)));
    let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
    spec(id, b.output(a, out).build().unwrap())
}

/// A job with no overlap with the shared wave.
fn distinct_job(id: u64) -> JobSpec {
    let mut b = PlanBuilder::new();
    let s = b.table_scan(DatasetId::new(SHARED_STREAM), "shared/x.ss", kv_schema());
    let f = b.filter(s, Expr::col(1).ge(Expr::lit(900 + id as i64)));
    spec(id, b.output(f, format!("solo-{id}")).build().unwrap())
}

fn wave() -> Vec<JobSpec> {
    vec![
        shared_job(1, "a"),
        shared_job(2, "b"),
        shared_job(3, "c"),
        distinct_job(4),
    ]
}

fn options(workers: usize) -> PipelineOptions {
    PipelineOptions {
        workers,
        max_in_flight: 0,
        janitor: false,
    }
}

/// Fault-free serial ground truth for a set of jobs, on its own service.
fn baseline_checksums(specs: &[JobSpec]) -> Vec<std::collections::HashMap<String, u64>> {
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    seed_shared_stream(&cv);
    cv.run_sequence(specs, RunMode::Baseline)
        .unwrap()
        .into_iter()
        .map(|r| r.output_checksums)
        .collect()
}

fn run_wave(cv: &CloudViews, specs: &[JobSpec], cfg: &SharingConfig) -> WindowOutcome {
    let arrivals = specs
        .iter()
        .cloned()
        .map(|spec| JobArrival {
            spec,
            offset: SimDuration::ZERO,
        })
        .collect();
    cv.run_windowed(arrivals, RunMode::CloudViews, options(3), cfg)
}

#[test]
fn windowed_sharing_matches_serial_outputs_and_reuses() {
    let specs = wave();
    let baseline = baseline_checksums(&specs);

    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    seed_shared_stream(&cv);
    let out = run_wave(&cv, &specs, &SharingConfig::default());

    // Results come back in input order, byte-identical to the serial run.
    assert_eq!(out.reports.len(), specs.len());
    for ((i, r), want) in out.reports.iter().enumerate().zip(&baseline) {
        let r = r.as_ref().unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        assert_eq!(r.job, specs[i].id, "submission order broken at {i}");
        assert_eq!(&r.output_checksums, want, "job {i} output diverged");
    }

    // Coordination happened: one window, one shared subgraph, the earliest
    // shared job produced, the other two reused.
    let s = &out.sharing;
    assert_eq!(s.windows, 1);
    assert_eq!(s.jobs, specs.len());
    assert_eq!(s.shared_subgraphs, 1);
    assert!(
        s.shared_nodes >= 3,
        "maximal subgraph spans scan+filter+agg"
    );
    assert_eq!(s.published, 1);
    assert_eq!(s.aborted, 0);
    assert_eq!(s.follower_reuses, 2);
    assert_eq!(s.follower_fallbacks, 0);

    // Exactly one producer built the shared view; the followers reused it.
    let reports: Vec<_> = out.reports.iter().map(|r| r.as_ref().unwrap()).collect();
    let built: Vec<_> = reports
        .iter()
        .flat_map(|r| r.views_built.iter().copied())
        .collect();
    assert_eq!(built.len(), 1, "exactly one producer per shared subgraph");
    assert_eq!(
        reports[0].views_built, built,
        "earliest job is the producer"
    );
    assert!(reports[1].views_reused.contains(&built[0]));
    assert!(reports[2].views_reused.contains(&built[0]));
    assert!(reports[3].views_reused.is_empty(), "distinct job untouched");
}

#[test]
fn windowed_sharing_beats_views_only_cluster_hours() {
    let specs = wave();

    let shared = {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_shared_stream(&cv);
        run_wave(&cv, &specs, &SharingConfig::default())
    };
    let views_only = {
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_shared_stream(&cv);
        let cfg = SharingConfig {
            enabled: false,
            ..SharingConfig::default()
        };
        run_wave(&cv, &specs, &cfg)
    };

    // The views-only baseline coordinates nothing (same windows, same
    // pinned submission times) and so recomputes the aggregation thrice.
    assert_eq!(views_only.sharing.windows, 0);
    assert_eq!(views_only.sharing.follower_reuses, 0);
    assert!(shared.sharing.follower_reuses > views_only.sharing.follower_reuses);

    let cpu = |o: &WindowOutcome| -> SimDuration {
        o.reports.iter().map(|r| r.as_ref().unwrap().cpu_time).sum()
    };
    let (with, without) = (cpu(&shared), cpu(&views_only));
    assert!(
        with < without,
        "sharing must lower total cluster CPU: {with:?} vs {without:?}"
    );
}

/// ISSUE 9 satellite 2 — every job in one admission window runs at a single
/// pinned submission time (the window's close), coordinated or not.
#[test]
fn window_jobs_share_one_pinned_submission_time() {
    for enabled in [true, false] {
        let specs = wave();
        let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
        seed_shared_stream(&cv);
        let cfg = SharingConfig {
            enabled,
            window: SimDuration::from_secs(30),
            ..SharingConfig::default()
        };
        let offsets = [0u64, 5, 29, 35];
        let arrivals = specs
            .iter()
            .cloned()
            .zip(offsets)
            .map(|(spec, secs)| JobArrival {
                spec,
                offset: SimDuration::from_secs(secs),
            })
            .collect();
        let out = cv.run_windowed(arrivals, RunMode::CloudViews, options(2), &cfg);
        let starts: Vec<_> = out
            .reports
            .iter()
            .map(|r| r.as_ref().unwrap().started_at)
            .collect();
        assert_eq!(starts[0], starts[1], "same window, same pinned time");
        assert_eq!(starts[0], starts[2], "same window, same pinned time");
        assert_eq!(
            starts[3],
            starts[0] + SimDuration::from_secs(30),
            "next window closes one window later"
        );
    }
}

/// ISSUE 9 satellite 3 — with `early_materialization = false` the producer
/// publishes at job end; followers pay a longer simulated wait but the
/// window still resolves publish-or-abort, with no deadlock and no timeout.
#[test]
fn job_end_publication_shares_without_deadlock() {
    let specs = wave();
    let baseline = baseline_checksums(&specs);

    let run = |early: bool| {
        let cv = CloudViews::builder(Arc::new(StorageManager::new()))
            .early_materialization(early)
            .build();
        seed_shared_stream(&cv);
        run_wave(&cv, &specs, &SharingConfig::default())
    };
    let early = run(true);
    let late = run(false);

    for (label, out) in [("early", &early), ("job-end", &late)] {
        for (r, want) in out.reports.iter().zip(&baseline) {
            let r = r.as_ref().unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(&r.output_checksums, want, "{label}: output diverged");
        }
        assert_eq!(out.sharing.published, 1, "{label}: producer published");
        assert_eq!(out.sharing.follower_reuses, 2, "{label}: followers reused");
    }

    // Job-end publication can only push availability later, never earlier.
    assert!(
        late.sharing.wait_p99() >= early.sharing.wait_p99(),
        "job-end wait {:?} must be >= early wait {:?}",
        late.sharing.wait_p99(),
        early.sharing.wait_p99()
    );
}

#[test]
fn dashboard_reports_sharing_after_windowed_run() {
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    seed_shared_stream(&cv);
    let before = cloudviews::admin::telemetry_dashboard(&cv);
    assert!(
        !before.contains("sharing:"),
        "no sharing section before any coordinated window"
    );
    run_wave(&cv, &wave(), &SharingConfig::default());
    let after = cloudviews::admin::telemetry_dashboard(&cv);
    assert!(after.contains("sharing: windows=1"), "got:\n{after}");
    assert!(
        after.contains("sharing followers: reuses=2"),
        "got:\n{after}"
    );
}
