//! Loopback integration tests for the network front door: concurrent
//! clients across VCs, per-VC quota enforcement, load shedding, chaos
//! (malformed frames, mid-request disconnects), and the acceptance bar —
//! an over-the-wire lookup is byte-identical to the in-process call.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use cloudviews::analyzer::SelectedView;
use cloudviews::api::{LookupRequest, ProposeRequest, ReportRequest};
use cloudviews::metadata::{LockOutcome, MetadataService};
use scope_common::hash::Sig128;
use scope_common::ids::{JobId, VcId};
use scope_common::intern::Symbol;
use scope_common::telemetry::Telemetry;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::ScopeError;
use scope_engine::optimizer::{Annotation, AvailableView};
use scope_net::proto::{ErrorKind, Response};
use scope_net::wire::{frame_type, read_frame, write_frame};
use scope_net::{ClientConfig, NetClient, NetServer, QuotaConfig, ServerConfig};
use scope_plan::interval::Interval;
use scope_plan::{Column, DataType, PhysicalProps, Schema, Value};
use scope_signature::{SubsumeDescriptor, SubsumeDetail, SubsumeKind};

const TAG: &str = "frontdoor/in/clicks.ss";

/// A filter descriptor; identical query/view descriptors pass the tier-2
/// `quick_compat` gate, so lookups with this probe return tier-2 hits.
fn descriptor() -> SubsumeDescriptor {
    let mut intervals = BTreeMap::new();
    intervals.insert(
        0,
        Interval {
            lo: Some((Value::Int(0), true)),
            hi: None,
        },
    );
    SubsumeDescriptor {
        kind: SubsumeKind::Filter,
        child_precise: Sig128::new(0xAB, 0xCD),
        cols: 0b01,
        keys: 0,
        schema: Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ])
        .unwrap(),
        detail: SubsumeDetail::Filter { intervals },
    }
}

fn view_sig() -> Sig128 {
    Sig128::new(0x51, 0x6E)
}

fn norm_sig() -> Sig128 {
    Sig128::new(0x4E, 0x12)
}

/// A service with one annotation (tagged [`TAG`]) and one live registered
/// view carrying a descriptor, so lookups can return annotations *and*
/// tier-2 candidates.
fn service_with_view() -> Arc<MetadataService> {
    let clock = Arc::new(SimClock::new());
    let m = MetadataService::new(clock, 4);
    m.load_annotations(&[SelectedView {
        annotation: Annotation {
            normalized: norm_sig(),
            props: PhysicalProps::any(),
            ttl: SimDuration::from_secs(86_400),
            avg_cpu: SimDuration::from_secs(10),
            avg_rows: 100,
            avg_bytes: 1_000,
        },
        input_tags: vec![Symbol::intern(TAG)],
        utility: SimDuration::from_secs(30),
        frequency: 2,
        precise_last_seen: view_sig(),
    }]);
    m.register(
        ReportRequest::new(
            AvailableView {
                precise: view_sig(),
                rows: 10,
                bytes: 100,
                props: PhysicalProps::any(),
            },
            norm_sig(),
            JobId::new(1),
            SimTime(100),
            SimTime(100) + SimDuration::from_secs(86_400),
        )
        .with_descriptor(Some(descriptor())),
    );
    Arc::new(m)
}

fn lookup_req(job: u64, vc: u64) -> LookupRequest {
    LookupRequest::new(JobId::new(job), &[TAG.into()], SimTime(1_000_000))
        .with_probes(vec![descriptor()])
        .for_vc(VcId::new(vc))
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        idle_poll: Duration::from_millis(5),
        idle_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    }
}

// ---------------------------------------------------------------------------

/// The acceptance bar: the same pinned-time lookup served in-process and
/// over loopback produces byte-identical `LookupResponse` content.
#[test]
fn wire_lookup_is_byte_identical_to_in_process() {
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let server = NetServer::spawn(Arc::clone(&service), telemetry, quick_config()).unwrap();
    let mut client = NetClient::connect(server.addr()).unwrap();

    let req = lookup_req(42, 7);
    let local = service.lookup(&req).unwrap();
    let remote = client.lookup(&req).unwrap();

    // The response must actually carry content for this to mean anything.
    assert_eq!(local.annotations.len(), 1);
    assert_eq!(local.tier2.len(), 1);
    // `LookupResponse` has no `Eq`; the wire encoding is canonical, so
    // byte-identical encodings == identical responses.
    assert_eq!(
        Response::Lookup(local).encode(),
        Response::Lookup(remote).encode(),
        "in-process and over-the-wire lookup answers diverge"
    );
    server.shutdown();
}

/// Concurrent clients on three VCs hammer all five endpoints; every call
/// succeeds and the service observes exactly the expected request counts.
#[test]
fn concurrent_clients_across_three_vcs() {
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let server =
        NetServer::spawn(Arc::clone(&service), Arc::clone(&telemetry), quick_config()).unwrap();
    let addr = server.addr();

    const VCS: u64 = 3;
    const CLIENTS_PER_VC: u64 = 2;
    const LOOKUPS_PER_CLIENT: u64 = 20;

    let mut handles = Vec::new();
    for vc in 0..VCS {
        for c in 0..CLIENTS_PER_VC {
            handles.push(std::thread::spawn(move || {
                let mut client = NetClient::connect(addr).unwrap();
                for i in 0..LOOKUPS_PER_CLIENT {
                    let job = vc * 1_000 + c * 100 + i;
                    let resp = client.lookup(&lookup_req(job, vc)).unwrap();
                    assert_eq!(resp.annotations.len(), 1);
                    // Each client proposes a distinct signature: the first
                    // propose wins the build lock, a re-propose from the
                    // same job observes its own lock.
                    let precise = Sig128::new(vc + 1, c + 1);
                    let outcome = client
                        .propose(
                            &ProposeRequest::new(
                                precise,
                                JobId::new(job),
                                SimDuration::from_secs(600),
                                SimTime(2_000_000),
                            )
                            .for_vc(VcId::new(vc)),
                        )
                        .unwrap();
                    assert!(
                        matches!(outcome, LockOutcome::Acquired | LockOutcome::AlreadyLocked),
                        "unexpected outcome {outcome:?}"
                    );
                }
                // One report per client, distinct view signature.
                client
                    .report(
                        ReportRequest::new(
                            AvailableView {
                                precise: Sig128::new(0x1000 + vc, c),
                                rows: 1,
                                bytes: 1,
                                props: PhysicalProps::any(),
                            },
                            norm_sig(),
                            JobId::new(vc * 10 + c),
                            SimTime(3_000_000),
                            SimTime(9_000_000_000),
                        )
                        .for_vc(VcId::new(vc)),
                    )
                    .unwrap();
                let stats = client.stats().unwrap();
                assert!(stats.lookups > 0);
            }));
        }
    }
    for h in handles {
        h.join().expect("client thread panicked");
    }

    let total_lookups = VCS * CLIENTS_PER_VC * LOOKUPS_PER_CLIENT;
    let stats = service.stats();
    assert_eq!(stats.lookups, total_lookups);
    // +1 for the fixture's own registered view.
    assert_eq!(stats.views_registered, VCS * CLIENTS_PER_VC + 1);
    let snap = telemetry.metrics.snapshot();
    assert_eq!(snap.counter("cv_net_frames_lookup_total"), total_lookups);
    assert_eq!(
        snap.counter("cv_net_frames_propose_total"),
        total_lookups,
        "one propose per lookup"
    );
    assert_eq!(
        snap.counter("cv_net_frames_report_total"),
        VCS * CLIENTS_PER_VC
    );
    assert_eq!(snap.counter("cv_net_shed_total"), 0, "nothing shed");
    assert_eq!(snap.counter("cv_net_quota_rejections_total"), 0);
    assert_eq!(snap.counter("cv_net_malformed_total"), 0);
    server.shutdown();
}

/// A zero-refill token bucket is a fixed budget: the over-quota VC is cut
/// off at exactly `burst` requests while a sibling VC's budget is untouched.
#[test]
fn quota_cuts_off_one_vc_without_touching_another() {
    const BURST: u64 = 5;
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let config = ServerConfig {
        quota: Some(QuotaConfig {
            rate_per_sec: 0.0,
            burst: BURST as f64,
        }),
        ..quick_config()
    };
    let server = NetServer::spawn(service, Arc::clone(&telemetry), config).unwrap();

    // VC 1 spends its whole budget, then keeps asking.
    let mut greedy = NetClient::connect(server.addr()).unwrap();
    let mut served = 0u64;
    let mut rejected = 0u64;
    for i in 0..(BURST * 2) {
        match greedy.lookup(&lookup_req(i, 1)) {
            Ok(_) => served += 1,
            Err(ScopeError::Metadata(m)) if m.contains("over quota") => rejected += 1,
            Err(other) => panic!("expected over-quota rejection, got {other}"),
        }
    }
    assert_eq!(served, BURST, "budget is exactly `burst` requests");
    assert_eq!(rejected, BURST, "everything past the budget is rejected");

    // VC 2 was not charged for VC 1's burst.
    let mut modest = NetClient::connect(server.addr()).unwrap();
    for i in 0..BURST {
        modest
            .lookup(&lookup_req(100 + i, 2))
            .expect("in-quota VC must be unaffected");
    }
    // Admin endpoints carry no VC and bypass quota even when exhausted.
    greedy.stats().expect("stats is not quota-gated");
    greedy.purge().expect("purge is not quota-gated");

    let snap = telemetry.metrics.snapshot();
    assert_eq!(snap.counter("cv_net_quota_rejections_total"), BURST);
    server.shutdown();
}

/// 30/30 malformed-frame rounds: broken framing (bad magic) is answered
/// with a `Malformed` error frame and the connection closed; a payload that
/// doesn't decode is answered and the connection *kept* — the very next
/// request on the same socket succeeds.
#[test]
fn malformed_frames_are_answered_thirty_of_thirty() {
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let server = NetServer::spawn(service, Arc::clone(&telemetry), quick_config()).unwrap();
    let addr = server.addr();

    for round in 0..30 {
        // Broken framing: garbage where the header should be. Exactly one
        // header's worth — unread surplus would turn the server's close
        // into a reset that can discard the queued error frame (a real
        // flooding peer may see that reset; the contract is "answer *or*
        // clean close", and this round pins down the answering half).
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        conn.write_all(b"NOT-A-FRAME!").unwrap();
        let (ty, payload) = read_frame(&mut conn).expect("server answers before closing");
        let resp = Response::decode(ty, &payload).unwrap();
        match resp {
            Response::Error(frame) => assert_eq!(frame.kind, ErrorKind::Malformed, "round {round}"),
            other => panic!("round {round}: expected error frame, got {other:?}"),
        }
        // ... then a clean close.
        let mut rest = Vec::new();
        conn.read_to_end(&mut rest).expect("clean close");
        assert!(rest.is_empty(), "round {round}: no bytes after the error");

        // Framing intact, payload garbage: answered, connection survives.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write_frame(&mut conn, frame_type::LOOKUP, &[0xFF; 7]).unwrap();
        let (ty, payload) = read_frame(&mut conn).unwrap();
        match Response::decode(ty, &payload).unwrap() {
            Response::Error(frame) => assert_eq!(frame.kind, ErrorKind::Malformed, "round {round}"),
            other => panic!("round {round}: expected error frame, got {other:?}"),
        }
        let (ty, payload) = lookup_req(round, 0).encode_as_request();
        write_frame(&mut conn, ty, &payload).unwrap();
        let (ty, payload) = read_frame(&mut conn).expect("connection still serving");
        match Response::decode(ty, &payload).unwrap() {
            Response::Lookup(resp) => assert_eq!(resp.annotations.len(), 1, "round {round}"),
            other => panic!("round {round}: expected lookup response, got {other:?}"),
        }
    }
    let snap = telemetry.metrics.snapshot();
    assert_eq!(snap.counter("cv_net_malformed_total"), 60);
    server.shutdown();
}

/// Helper: encode a `LookupRequest` as its request frame without a client.
trait EncodeAsRequest {
    fn encode_as_request(&self) -> (u8, Vec<u8>);
}

impl EncodeAsRequest for LookupRequest {
    fn encode_as_request(&self) -> (u8, Vec<u8>) {
        scope_net::Request::Lookup(self.clone()).encode()
    }
}

/// 30/30 mid-request disconnects: a peer that dies after half a header (or
/// half a payload) must not wedge a worker — with only two workers, a real
/// client still gets served after every round.
#[test]
fn mid_request_disconnects_do_not_wedge_workers() {
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let config = ServerConfig {
        workers: 2,
        ..quick_config()
    };
    let server = NetServer::spawn(service, Arc::clone(&telemetry), config).unwrap();
    let addr = server.addr();

    let mut client = NetClient::connect(addr).unwrap();
    for round in 0..30u64 {
        {
            // Half a header, then hang up.
            let mut conn = TcpStream::connect(addr).unwrap();
            conn.write_all(&scope_net::wire::MAGIC[..3]).unwrap();
        }
        {
            // A full, valid header promising 64 payload bytes; deliver 10
            // and hang up mid-payload.
            let mut conn = TcpStream::connect(addr).unwrap();
            let mut header = Vec::new();
            header.extend_from_slice(&scope_net::wire::MAGIC);
            header.extend_from_slice(&scope_net::wire::VERSION.to_le_bytes());
            header.push(frame_type::LOOKUP);
            header.push(0);
            header.extend_from_slice(&64u32.to_le_bytes());
            conn.write_all(&header).unwrap();
            conn.write_all(&[0u8; 10]).unwrap();
        }
        // Both workers must come back: a real request still completes.
        let resp = client
            .lookup(&lookup_req(round, 3))
            .expect("worker wedged by a disconnected peer");
        assert_eq!(resp.annotations.len(), 1, "round {round}");
    }
    server.shutdown();
}

/// With one worker pinned by a held-open connection and a single queue
/// slot taken, the next connection is shed at the door with a `Busy` frame
/// — and the client policy surfaces it as a transient error.
#[test]
fn overflow_connections_are_shed_with_busy() {
    let service = service_with_view();
    let telemetry = Telemetry::new();
    let config = ServerConfig {
        workers: 1,
        max_pending: 1,
        idle_poll: Duration::from_millis(5),
        idle_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    let server = NetServer::spawn(service, Arc::clone(&telemetry), config).unwrap();
    let addr = server.addr();

    // Pin the only worker: an open connection that never sends a frame.
    let pin = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100)); // let the worker pop it
                                                    // Fill the single queue slot.
    let _queued = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection must be answered with Busy and closed.
    let mut overflow = TcpStream::connect(addr).unwrap();
    overflow
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let (ty, payload) = read_frame(&mut overflow).expect("shed answer");
    match Response::decode(ty, &payload).unwrap() {
        Response::Error(frame) => {
            assert_eq!(frame.kind, ErrorKind::Busy);
            assert!(frame.kind.is_transient(), "Busy is retryable by contract");
        }
        other => panic!("expected busy frame, got {other:?}"),
    }
    let snap = telemetry.metrics.snapshot();
    assert!(snap.counter("cv_net_shed_total") >= 1);

    // A client that *retries* (the Busy contract) with spaced backoff can
    // still be refused if the server stays saturated; it must surface a
    // ServiceUnavailable, not hang.
    let mut client = NetClient::with_config(
        addr,
        ClientConfig {
            deadline: Duration::from_millis(500),
            ..ClientConfig::default()
        },
    )
    .unwrap();
    match client.lookup(&lookup_req(1, 1)) {
        Err(ScopeError::ServiceUnavailable(_)) => {}
        Err(other) => panic!("expected ServiceUnavailable, got {other}"),
        Ok(_) => {
            // Legal: the pinned worker's queue slot freed up mid-retry and
            // the request landed. Either way, nothing hung.
        }
    }
    drop(pin);
    server.shutdown();
}
