//! Property-based tests for the DESIGN.md §6 invariants.
//!
//! The centerpiece generates *random plans*, runs them through the complete
//! CloudViews cycle (baseline → annotate a random subgraph → build → reuse),
//! and asserts output equality — the paper's correctness requirement under
//! arbitrary plan shapes, not just the curated workloads.
//!
//! The cases are driven by a deterministic seeded loop (`for_cases`) instead
//! of an external property-testing crate: each test draws its inputs from
//! the documented ranges using the workspace RNG, so failures reproduce
//! exactly and no crates.io dependency is needed.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use scope_common::hash::Sig128;
use scope_common::ids::{ClusterId, DatasetId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::time::{SimDuration, SimTime};
use scope_engine::cost::CostModel;
use scope_engine::data::{multiset_checksum, Table};
use scope_engine::exec::execute_plan;
use scope_engine::job::JobSpec;
use scope_engine::optimizer::{optimize, NoViewServices, OptimizerConfig};
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{
    AggExpr, DataType, Expr, Operator, Partitioning, PlanBuilder, QueryGraph, Schema, SortKey,
    SortOrder, Udo, UdoKind, Value,
};
use scope_signature::sign_graph;

/// Number of random cases per property (mirrors the old proptest config).
const CASES: usize = 24;

/// Runs `body` for `CASES` deterministic case-seeds. Each failure message
/// carries the case seed, so any counterexample replays exactly.
fn for_cases(test_name: &str, mut body: impl FnMut(&mut SmallRng)) {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(scope_common::sip64(
            format!("{test_name}/{case}").as_bytes(),
        ));
        body(&mut rng);
    }
}

fn base_schema() -> Schema {
    Schema::from_pairs(&[
        ("user", DataType::Int),
        ("item", DataType::Int),
        ("val", DataType::Float),
        ("ts", DataType::Date),
    ])
}

fn random_table(rng: &mut SmallRng, rows: usize) -> Table {
    let data = (0..rows)
        .map(|_| {
            vec![
                Value::Int(rng.gen_range(0..40)),
                Value::Int(rng.gen_range(0..1000)),
                Value::Float((rng.gen_range(-50.0_f64..50.0) * 10.0).round() / 10.0),
                Value::Date(rng.gen_range(0..100)),
            ]
        })
        .collect();
    Table::single(base_schema(), data)
}

/// Builds a random schema-preserving plan over the 4-column base schema.
/// Returns the graph; all interior ops keep the same column layout so any
/// node can stack on any other.
fn random_plan(seed: u64, dataset: DatasetId) -> QueryGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = PlanBuilder::new();
    let mut branches: Vec<scope_common::ids::NodeId> = Vec::new();
    let n_branches = rng.gen_range(1..=2);
    for _ in 0..n_branches {
        let mut cur = b.table_scan(dataset, "prop/<date>/t.ss", base_schema());
        for _ in 0..rng.gen_range(1..=5) {
            cur = match rng.gen_range(0..8) {
                0 => b.filter(
                    cur,
                    Expr::col(rng.gen_range(0..2)).ge(Expr::lit(rng.gen_range(0..30) as i64)),
                ),
                1 => b.exchange(
                    cur,
                    Partitioning::Hash {
                        cols: vec![rng.gen_range(0..2)],
                        parts: rng.gen_range(2..6),
                    },
                ),
                2 => b.sort(cur, SortOrder(vec![SortKey::asc(rng.gen_range(0..4))])),
                3 => b.top(cur, rng.gen_range(5..50), SortOrder(vec![SortKey::desc(2)])),
                4 => b.process(
                    cur,
                    Udo::new(
                        UdoKind::ClampOutliers {
                            col: 2,
                            lo: -10,
                            hi: rng.gen_range(10..40),
                        },
                        "PropLib",
                        "1.0",
                    ),
                ),
                5 => b.reduce(
                    cur,
                    Udo::new(
                        UdoKind::TrimBand {
                            col: 1,
                            gap: rng.gen_range(0..5),
                        },
                        "PropLib",
                        "1.0",
                    ),
                    vec![0],
                ),
                6 => b.nop(cur),
                _ => b.spool(cur),
            };
        }
        branches.push(cur);
    }
    let merged = if branches.len() == 1 {
        branches[0]
    } else {
        b.union_all(branches)
    };
    // Optional final aggregate (changes schema; fine at the top).
    let top = if rng.gen_bool(0.5) {
        b.aggregate(
            merged,
            vec![0],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum_val", AggFunc::Sum, 2),
            ],
        )
    } else {
        merged
    };
    b.write(top, "prop/out/<date>/r.ss").build().unwrap()
}

fn storage_with_table(seed: u64, dataset: DatasetId) -> StorageManager {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xdead);
    let storage = StorageManager::new();
    storage.put_dataset(dataset, random_table(&mut rng, 400));
    storage
}

/// Any random plan optimizes, executes, and produces identical output
/// multisets at every optimizer configuration (enforcers must never
/// change results).
#[test]
fn optimizer_preserves_semantics() {
    for_cases("optimizer_preserves_semantics", |case_rng| {
        let seed = case_rng.gen_range(0u64..10_000);
        let dataset = DatasetId::new(9);
        let graph = random_plan(seed, dataset);
        let storage = storage_with_table(seed, dataset);
        let model = CostModel::default();
        let mut checksums = Vec::new();
        for dop in [2usize, 8] {
            let cfg = OptimizerConfig {
                default_dop: dop,
                ..Default::default()
            };
            let plan = optimize(&graph, &[], &NoViewServices, &cfg, JobId::new(1)).unwrap();
            let exec = execute_plan(&plan.physical, &storage, &model, SimTime::ZERO).unwrap();
            let out = exec.outputs.values().next().unwrap();
            checksums.push((out.num_rows(), multiset_checksum(out)));
        }
        assert_eq!(
            checksums[0], checksums[1],
            "dop changed the answer (seed {seed})"
        );
    });
}

/// The full CloudViews cycle on a random plan: job A builds a view over
/// an annotated subgraph, job B (same computation, different output)
/// reuses it; both match the baseline bit-for-bit.
#[test]
fn reuse_cycle_preserves_semantics() {
    for_cases("reuse_cycle_preserves_semantics", |case_rng| {
        use cloudviews::analyzer::SelectedView;
        use cloudviews::{CloudViews, RunMode};
        use scope_engine::optimizer::Annotation;
        use scope_plan::PhysicalProps;

        let seed = case_rng.gen_range(0u64..10_000);
        let node_pick = case_rng.gen_range(0usize..64);
        let dataset = DatasetId::new(9);
        let graph = random_plan(seed, dataset);
        let storage = Arc::new(storage_with_table(seed, dataset));
        let cv = CloudViews::builder(storage).build();

        // Pick a random non-leaf, non-output node to annotate as a view.
        let candidates: Vec<NodeId> = graph
            .nodes()
            .iter()
            .filter(|n| !n.children.is_empty() && !matches!(n.op, Operator::Output { .. }))
            .map(|n| n.id)
            .collect();
        if candidates.is_empty() {
            return; // assume(): nothing to annotate in this shape
        }
        let target = candidates[node_pick % candidates.len()];
        let signed = sign_graph(&graph).unwrap();
        let selected = SelectedView {
            annotation: Annotation {
                normalized: signed.of(target).normalized,
                props: PhysicalProps::hashed(vec![0], 4),
                ttl: SimDuration::from_secs(86_400),
                // Large mined cost so the cost-based check always reuses.
                avg_cpu: SimDuration::from_secs(3_600),
                avg_rows: 100,
                avg_bytes: 10_000,
            },
            input_tags: vec!["prop/<date>/t.ss".into()],
            utility: SimDuration::from_secs(10),
            frequency: 2,
            precise_last_seen: signed.of(target).precise,
        };
        cv.metadata.load_annotations(&[selected]);

        let spec = |id: u64, graph: QueryGraph| JobSpec {
            id: JobId::new(id),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(0),
            instance: 0,
            graph,
        };

        // Baseline answer.
        let base = cv
            .run_job_at(&spec(1, graph.clone()), RunMode::Baseline, SimTime::ZERO)
            .unwrap();
        // Builder (acquires the lock, materializes the view).
        let build = cv
            .run_job_at(&spec(2, graph.clone()), RunMode::CloudViews, cv.clock.now())
            .unwrap();
        // Reuser (same plan again; the view now exists).
        let reuse = cv
            .run_job_at(&spec(3, graph.clone()), RunMode::CloudViews, cv.clock.now())
            .unwrap();

        assert_eq!(
            &base.output_checksums, &build.output_checksums,
            "seed {seed}"
        );
        assert_eq!(
            &base.output_checksums, &reuse.output_checksums,
            "seed {seed}"
        );
        assert_eq!(
            build.views_built.len(),
            1,
            "builder must build (seed {seed})"
        );
        // The annotated subgraph may occur more than once in the random
        // plan (duplicated branches); every occurrence is rewritten.
        assert!(
            !reuse.views_reused.is_empty(),
            "reuser must reuse (seed {seed})"
        );
    });
}

/// After lowering, every operator's required properties are satisfied
/// by what its children actually deliver.
#[test]
fn enforcers_satisfy_requirements() {
    for_cases("enforcers_satisfy_requirements", |case_rng| {
        let seed = case_rng.gen_range(0u64..10_000);
        let graph = random_plan(seed, DatasetId::new(9));
        let cfg = OptimizerConfig::default();
        let plan = optimize(&graph, &[], &NoViewServices, &cfg, JobId::new(1)).unwrap();
        let phys = &plan.physical;
        // Recompute delivered props bottom-up.
        let mut delivered: Vec<scope_plan::PhysicalProps> = Vec::with_capacity(phys.len());
        for node in phys.nodes() {
            let child_props: Vec<_> = node
                .children
                .iter()
                .map(|c| delivered[c.index()].clone())
                .collect();
            let reqs = node.op.required_props(node.children.len(), cfg.default_dop);
            for (i, &child) in node.children.iter().enumerate() {
                if let Some(req) = reqs.get(i) {
                    assert!(
                        req.satisfied_by(&delivered[child.index()]),
                        "node {} ({}) requirement {} unsatisfied by child delivering {} (seed {})",
                        node.id,
                        node.op.describe(),
                        req.describe(),
                        delivered[child.index()].describe(),
                        seed
                    );
                }
            }
            delivered.push(node.op.delivered_props(&child_props));
        }
    });
}

/// Golden-hash snapshot: the interned-symbol signature path must produce
/// byte-identical Merkle hashes to the pre-interning string path. Each
/// digest below folds every node's (precise, normalized) pair of a random
/// plan, in arena order, through `sip64`; the constants were captured by
/// running the same fold on the commit immediately before the interner
/// landed. Any change to what bytes feed the signature hasher — symbol
/// tables, normalization memos, template caching — trips this test.
#[test]
fn golden_signatures_match_pre_interning_snapshot() {
    const GOLDEN: [(u64, u64); 8] = [
        (0, 0xe6f454b873a78ed4),
        (1, 0xddf0904696acbd3a),
        (2, 0xa4d3f393f841567e),
        (3, 0x5761f330d186e9fd),
        (4, 0xdce1144471443ff1),
        (5, 0x26b10f04b622303a),
        (6, 0x8b1a7d5a6dd239a4),
        (7, 0xd04512a67129e23f),
    ];
    for (seed, expected) in GOLDEN {
        let graph = random_plan(seed, DatasetId::new(777));
        let signed = sign_graph(&graph).unwrap();
        let mut bytes = Vec::new();
        for sig in signed.all() {
            bytes.extend_from_slice(&sig.precise.hi.to_le_bytes());
            bytes.extend_from_slice(&sig.precise.lo.to_le_bytes());
            bytes.extend_from_slice(&sig.normalized.hi.to_le_bytes());
            bytes.extend_from_slice(&sig.normalized.lo.to_le_bytes());
        }
        assert_eq!(
            scope_common::sip64(&bytes),
            expected,
            "signature drift from the pre-interning snapshot (seed {seed})"
        );
    }
}

/// Template-cache equivalence: compiling through a warm cache (normalized
/// skeleton hit) must produce exactly the signatures, subgraph records, and
/// job tags of a cold compile — for the *recurring instance* case too,
/// where the second graph differs only in its input GUID.
#[test]
fn template_cache_hit_is_equivalent_to_cold_compile() {
    use scope_signature::{enumerate_subgraphs, job_tags, TemplateCache};
    for_cases("template_cache_hit_equivalence", |case_rng| {
        let seed = case_rng.gen_range(0u64..10_000);
        let cache = TemplateCache::new();

        // Instance 0: cold compile, then an exact re-compile (hit).
        let g0 = random_plan(seed, DatasetId::new(100));
        let cold = cache.compile(&g0).unwrap();
        assert!(!cold.template_hit, "first compile must miss (seed {seed})");
        let hit = cache.compile(&g0).unwrap();
        assert!(hit.template_hit, "second compile must hit (seed {seed})");

        // Instance 1: same template, new GUID — still a hit, because the
        // normalized skeleton is GUID-invariant.
        let g1 = random_plan(seed, DatasetId::new(200));
        let next = cache.compile(&g1).unwrap();
        assert!(
            next.template_hit,
            "recurring instance must hit (seed {seed})"
        );

        // Every compile, hit or miss, must equal the from-scratch path.
        for (graph, compiled) in [(&g0, &cold), (&g0, &hit), (&g1, &next)] {
            let signed = sign_graph(graph).unwrap();
            let infos = enumerate_subgraphs(graph).unwrap();
            let tags = job_tags(graph);
            assert_eq!(compiled.infos, infos, "seed {seed}");
            assert_eq!(compiled.tags, tags, "seed {seed}");
            for (node, reference) in compiled.signed.all().iter().zip(signed.all()) {
                assert_eq!(node.precise, reference.precise, "seed {seed}");
                assert_eq!(node.normalized, reference.normalized, "seed {seed}");
            }
        }
    });
}

/// Recurring-delta invariance: rebinding GUIDs and date parameters
/// changes every precise signature on the path but no normalized one.
#[test]
fn signature_normalization_invariant() {
    for_cases("signature_normalization_invariant", |case_rng| {
        let seed = case_rng.gen_range(0u64..10_000);
        let g0 = random_plan(seed, DatasetId::new(100));
        let g1 = random_plan(seed, DatasetId::new(200)); // same shape, new GUID
        let s0 = sign_graph(&g0).unwrap();
        let s1 = sign_graph(&g1).unwrap();
        for (a, b) in s0.all().iter().zip(s1.all()) {
            assert_eq!(a.normalized, b.normalized, "seed {seed}");
        }
        // The roots' precise signatures must differ (they read new data).
        let r0 = g0.roots()[0];
        assert_ne!(s0.of(r0).precise, s1.of(r0).precise, "seed {seed}");
    });
}

/// The multiset checksum is invariant under arbitrary repartitioning.
#[test]
fn checksum_invariant_under_repartition() {
    for_cases("checksum_invariant_under_repartition", |case_rng| {
        let seed = case_rng.gen_range(0u64..10_000);
        let parts = case_rng.gen_range(1usize..9);
        let mut rng = SmallRng::seed_from_u64(seed);
        let t = random_table(&mut rng, 200);
        let by_hash = t.hash_repartition(&[0], parts).unwrap();
        let by_rr = t.round_robin_repartition(parts).unwrap();
        let gathered = by_hash.gather();
        let c = multiset_checksum(&t);
        assert_eq!(multiset_checksum(&by_hash), c, "seed {seed} parts {parts}");
        assert_eq!(multiset_checksum(&by_rr), c, "seed {seed} parts {parts}");
        assert_eq!(multiset_checksum(&gathered), c, "seed {seed} parts {parts}");
    });
}

/// Cost model monotonicity: more rows never costs less.
#[test]
fn cost_monotone() {
    for_cases("cost_monotone", |case_rng| {
        let rows_a = case_rng.gen_range(0u64..1_000_000);
        let rows_b = case_rng.gen_range(0u64..1_000_000);
        let (lo, hi) = if rows_a <= rows_b {
            (rows_a, rows_b)
        } else {
            (rows_b, rows_a)
        };
        let model = CostModel::default();
        for op in [
            Operator::Filter {
                predicate: Expr::lit(true),
            },
            Operator::Sort {
                order: SortOrder::asc(&[0]),
            },
            Operator::Exchange {
                scheme: Partitioning::Single,
            },
            Operator::Aggregate {
                keys: vec![0],
                aggs: vec![],
                implementation: scope_plan::op::AggImpl::Hash,
            },
        ] {
            let c_lo = model.op_cpu(&op, lo, lo, lo * 8);
            let c_hi = model.op_cpu(&op, hi, hi, hi * 8);
            assert!(
                c_lo <= c_hi,
                "{} regressed ({lo} vs {hi} rows)",
                op.describe()
            );
        }
    });
}

/// Shared fixture for the metadata-shard properties below: `n` analyzer
/// annotations, each tagged with its own input plus one shared tag.
fn shard_test_annotations(n: usize, ttl: SimDuration) -> Vec<cloudviews::analyzer::SelectedView> {
    use cloudviews::analyzer::SelectedView;
    use scope_common::Symbol;
    use scope_engine::optimizer::Annotation;
    use scope_plan::PhysicalProps;
    (0..n)
        .map(|i| SelectedView {
            annotation: Annotation {
                normalized: scope_common::sip128(format!("shard-prop/norm/{i}").as_bytes()),
                props: PhysicalProps::any(),
                ttl,
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1_000,
            },
            input_tags: vec![
                Symbol::intern(&format!("shard-prop/tag/{i}")),
                Symbol::intern("shard-prop/tag/shared"),
            ],
            utility: SimDuration::from_secs(30),
            frequency: 2,
            precise_last_seen: Sig128::ZERO,
        })
        .collect()
}

/// DESIGN.md §10 janitor invariant: after any purge — a full sweep or one
/// round-robin pass of the incremental per-shard janitor — no lookup
/// returns an annotation whose views have all expired and whose GC
/// horizon has lapsed, and the inverted index holds exactly the postings
/// of the surviving annotations (the dead-view leak, had it survived,
/// trips the posting-count assert).
#[test]
fn purge_never_leaks_dead_annotations() {
    for_cases("purge_never_leaks_dead_annotations", |rng| {
        use cloudviews::{MetadataService, ReportRequest};
        use scope_common::time::SimClock;
        use scope_common::Symbol;
        use scope_engine::optimizer::AvailableView;
        use scope_plan::PhysicalProps;

        let shards = 1usize << rng.gen_range(0u32..5); // 1, 2, 4, 8, 16
        let clock = Arc::new(SimClock::new());
        let m = MetadataService::with_shards(Arc::clone(&clock), 1, shards);
        let ttl = SimDuration::from_secs(3_600);
        let selected = shard_test_annotations(rng.gen_range(4..32), ttl);
        m.load_annotations(&selected);

        // One view per annotation, each with its own expiry; registration
        // renews the annotation's GC horizon to view-expiry + ttl.
        let mut view_expiry = Vec::new();
        for (i, s) in selected.iter().enumerate() {
            let expires = SimTime::ZERO + SimDuration::from_secs(rng.gen_range(10..1_000));
            view_expiry.push(expires);
            m.register(ReportRequest::new(
                AvailableView {
                    precise: scope_common::sip128(format!("shard-prop/precise/{i}").as_bytes()),
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                s.annotation.normalized,
                JobId::new(i as u64),
                SimTime::ZERO,
                expires,
            ));
        }

        let now = clock.advance(SimDuration::from_secs(rng.gen_range(0..6_000)));
        if rng.gen_bool(0.5) {
            m.purge_expired();
        } else {
            for _ in 0..m.num_shards() {
                m.purge_next_shard();
            }
        }

        let mut live = 0usize;
        for (i, s) in selected.iter().enumerate() {
            let horizon = view_expiry[i] + ttl;
            let expect_live = horizon > now;
            live += expect_live as usize;
            let r = m
                .relevant_views_for(JobId::new(1_000 + i as u64), &[s.input_tags[0]])
                .unwrap();
            let returned = r
                .annotations
                .iter()
                .any(|a| a.normalized == s.annotation.normalized);
            assert_eq!(
                returned, expect_live,
                "annotation {i}: horizon {horizon} vs now {now} (shards {shards})"
            );
        }
        assert_eq!(m.num_annotations(), live, "shards {shards}");
        // Exactly two postings per surviving annotation: its own tag plus
        // the shared one. Any excess is a leaked back-reference.
        assert_eq!(m.num_inverted_entries(), 2 * live, "shards {shards}");
        let shared = m
            .relevant_views_for(
                JobId::new(9_999),
                &[Symbol::intern("shard-prop/tag/shared")],
            )
            .unwrap();
        assert_eq!(shared.annotations.len(), live, "shards {shards}");
    });
}

/// ISSUE 6 satellite 1 — clock-skew regression: tier-2 candidate
/// visibility is decided against the *caller's pinned lookup time* (the
/// job's submission time), never the service's live clock. A shard whose
/// local clock has raced ahead (or lagged behind) must return exactly the
/// views that were live at the pinned instant: nothing before
/// `view_available_at`, nothing at-or-after expiry.
#[test]
fn tier2_lookup_pins_caller_time_under_clock_skew() {
    for_cases("tier2_lookup_pins_caller_time_under_clock_skew", |rng| {
        use cloudviews::{LookupRequest, MetadataService, ReportRequest};
        use scope_common::time::SimClock;
        use scope_common::Symbol;
        use scope_engine::optimizer::AvailableView;
        use scope_plan::{PhysicalProps, PlanBuilder};
        use scope_signature::SubsumeDescriptor;

        // A view filtered wide (v >= 0) and a query probe filtered tight
        // (v >= 10): the probe is compatible, so visibility is purely a
        // question of time-window filtering.
        let descriptor_for = |bound: i64| {
            let mut b = PlanBuilder::new();
            let s = b.table_scan(
                DatasetId::new(1),
                "skew/a.ss",
                Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]),
            );
            let f = b.filter(s, Expr::col(1).ge(Expr::lit(bound)));
            let g = b.output(f, "o").build().unwrap();
            let signed = sign_graph(&g).unwrap();
            let root = NodeId::new(1);
            let desc = SubsumeDescriptor::of(&g, root, signed.of(NodeId::new(0)).precise).unwrap();
            (signed.of(root).precise, signed.of(root).normalized, desc)
        };
        let (view_precise, view_norm, view_desc) = descriptor_for(0);
        let (_, _, probe) = descriptor_for(10);

        let clock = Arc::new(SimClock::new());
        let m = MetadataService::with_shards(Arc::clone(&clock), 1, 1 << rng.gen_range(0u32..5));
        m.load_annotations(&[cloudviews::analyzer::SelectedView {
            annotation: scope_engine::optimizer::Annotation {
                normalized: view_norm,
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(86_400),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1_000,
            },
            input_tags: vec![Symbol::intern("skew/a.ss")],
            utility: SimDuration::from_secs(30),
            frequency: 2,
            precise_last_seen: view_precise,
        }]);

        let created = SimTime::ZERO + SimDuration::from_secs(rng.gen_range(100..1_000));
        let expires = created + SimDuration::from_secs(rng.gen_range(100..1_000));
        m.register(
            ReportRequest::new(
                AvailableView {
                    precise: view_precise,
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                view_norm,
                JobId::new(1),
                created,
                expires,
            )
            .with_descriptor(Some(view_desc)),
        );

        // Skew the service's live clock to an arbitrary point — possibly
        // far past expiry — and probe at pinned times on both sides of
        // every boundary. The live clock must not influence the answer.
        clock.advance(SimDuration::from_secs(rng.gen_range(0..10_000)));
        let tags = [Symbol::intern("skew/a.ss")];
        let probes = std::slice::from_ref(&probe);
        for (at, expect) in [
            (SimTime::ZERO, false),
            (created + SimDuration::ZERO, true),
            (
                created
                    + SimDuration::from_secs(rng.gen_range(0..(expires.0 - created.0) / 1_000_000)),
                true,
            ),
            (expires, false),
            (expires + SimDuration::from_secs(1), false),
        ] {
            let r = m
                .lookup(&LookupRequest::new(JobId::new(2), &tags, at).with_probes(probes.to_vec()))
                .unwrap();
            assert_eq!(
                r.annotations.len(),
                1,
                "tier-1 annotations are time-agnostic"
            );
            assert_eq!(
                r.tier2.len(),
                expect as usize,
                "pinned at {at}: created {created}, expires {expires}, live {}",
                clock.now()
            );
            if expect {
                assert_eq!(r.tier2[0].view.precise, view_precise);
            }
        }
    });
}

/// The dead-view leak regression (ISSUE 4 acceptance): 1,000 recurring
/// instances, each registering fresh precise views that expire before the
/// next instance, must leave every metadata cardinality bounded by the
/// loaded analysis — not growing with instance count — and once
/// registrations stop and the GC horizon lapses, the service drains to
/// empty.
#[test]
fn thousand_recurring_instances_stay_bounded() {
    use cloudviews::{MetadataService, ReportRequest};
    use scope_common::time::SimClock;
    use scope_engine::optimizer::AvailableView;
    use scope_plan::PhysicalProps;

    let clock = Arc::new(SimClock::new());
    let m = MetadataService::with_shards(Arc::clone(&clock), 1, 16);
    let ttl = SimDuration::from_secs(3_600);
    const K: usize = 4;
    let selected = shard_test_annotations(K, ttl);
    m.load_annotations(&selected);

    for instance in 0..1_000u64 {
        let now = clock.now();
        for (k, s) in selected.iter().enumerate() {
            m.register(ReportRequest::new(
                AvailableView {
                    precise: scope_common::sip128(
                        format!("bounded/inst/{instance}/{k}").as_bytes(),
                    ),
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                s.annotation.normalized,
                JobId::new(instance * K as u64 + k as u64),
                now,
                now + SimDuration::from_secs(50),
            ));
        }
        clock.advance(SimDuration::from_secs(100));
        // The background janitor: one shard swept per job-sized step.
        m.purge_next_shard();
        if instance % 50 == 49 {
            // Every shard gets swept at least every 16 steps; the bound
            // below is deliberately loose (dead views linger at most one
            // full janitor rotation).
            assert!(
                m.num_views() <= K * (m.num_shards() + 1),
                "instance {instance}: {} live views",
                m.num_views()
            );
            assert_eq!(m.num_annotations(), K, "instance {instance}");
            assert_eq!(m.num_inverted_entries(), 2 * K, "instance {instance}");
        }
    }

    let swept = m.purge_expired();
    assert_eq!(swept.annotations_purged, 0, "horizons are still renewed");
    assert_eq!(m.num_annotations(), K);
    assert!(m.num_views() <= K);

    // Registrations stop; once the last view's horizon lapses everything
    // drains — annotations, postings, buckets, views.
    clock.advance(SimDuration::from_secs(50 + 3_600 + 1));
    let swept = m.purge_expired();
    assert_eq!(swept.annotations_purged, K);
    assert_eq!(m.num_views(), 0);
    assert_eq!(m.num_annotations(), 0);
    assert_eq!(m.num_inverted_entries(), 0);
    assert_eq!(m.num_tag_buckets(), 0);
    assert!(m.stats().purged_annotations >= K as u64);
}

/// Concurrent cross-shard stress: many threads mixing lookups, proposals,
/// registrations, and janitor sweeps against one sharded service, plus the
/// expired-lock takeover race — exactly one of the contending threads may
/// win the lapsed lock.
#[test]
fn concurrent_shard_stress_with_single_takeover_winner() {
    use cloudviews::{LockOutcome, MetadataService, ReportRequest};
    use scope_common::time::SimClock;
    use scope_engine::optimizer::AvailableView;
    use scope_plan::PhysicalProps;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const THREADS: u64 = 8;
    const OPS: u64 = 200;

    let clock = Arc::new(SimClock::new());
    let m = MetadataService::with_shards(Arc::clone(&clock), 1, 8);
    const K: usize = 16;
    let selected = shard_test_annotations(K, SimDuration::from_secs(3_600));
    m.load_annotations(&selected);

    // Seed a build lock whose TTL lapses before the threads start.
    let contested = scope_common::sip128(b"stress/contested");
    assert_eq!(
        m.propose_now(contested, JobId::new(0), SimDuration::from_secs(10))
            .unwrap(),
        LockOutcome::Acquired
    );
    clock.advance(SimDuration::from_secs(11));
    let now = clock.now();

    let takeover_wins = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let m = &m;
            let selected = &selected;
            let takeover_wins = &takeover_wins;
            scope.spawn(move || {
                // The takeover race: every thread sees the same expired
                // lock; the shard's lock-table mutex must elect one winner.
                match m
                    .propose_now(contested, JobId::new(100 + t), SimDuration::from_secs(60))
                    .unwrap()
                {
                    LockOutcome::Acquired => {
                        takeover_wins.fetch_add(1, Ordering::SeqCst);
                    }
                    LockOutcome::AlreadyLocked => {}
                    LockOutcome::AlreadyMaterialized => {
                        panic!("contested view was never materialized")
                    }
                }
                // Mixed traffic spread across shards: lookups on the
                // shared annotations, builds of thread-unique views
                // (half released via registration, half left locked),
                // and janitor sweeps interleaved throughout.
                for i in 0..OPS {
                    let s = &selected[((t + i) % K as u64) as usize];
                    let r = m
                        .relevant_views_for(JobId::new(1_000 + t), &[s.input_tags[0]])
                        .unwrap();
                    assert!(
                        r.annotations
                            .iter()
                            .any(|a| a.normalized == s.annotation.normalized),
                        "lookup lost a loaded annotation mid-stress"
                    );
                    let precise = scope_common::sip128(format!("stress/{t}/{i}").as_bytes());
                    assert_eq!(
                        m.propose_now(precise, JobId::new(1_000 + t), SimDuration::from_secs(60))
                            .unwrap(),
                        LockOutcome::Acquired,
                        "thread-unique signature must never conflict"
                    );
                    if i % 2 == 0 {
                        m.register(ReportRequest::new(
                            AvailableView {
                                precise,
                                rows: 10,
                                bytes: 100,
                                props: PhysicalProps::any(),
                            },
                            s.annotation.normalized,
                            JobId::new(1_000 + t),
                            now,
                            now + SimDuration::from_secs(1_000),
                        ));
                    }
                    if i % 32 == 0 {
                        m.purge_next_shard();
                    }
                }
            });
        }
    });

    assert_eq!(takeover_wins.load(Ordering::SeqCst), 1);
    let stats = m.stats();
    assert_eq!(stats.expired_takeovers, 1);
    // Registered views all survive (they expire well after `now`), and the
    // annotations they renewed are all intact.
    assert_eq!(m.num_views(), (THREADS * OPS / 2) as usize);
    assert_eq!(m.num_annotations(), K);
    assert_eq!(m.num_inverted_entries(), 2 * K);
    // Unreleased thread-unique locks plus the takeover winner's.
    assert_eq!(m.num_locks(), (THREADS * OPS / 2) as usize + 1);
    assert!(stats.lookups >= THREADS * OPS);
}

// ---------------------------------------------------------------------------
// PR 8 satellite 3 — columnar executor vs row-reference differential suite
// ---------------------------------------------------------------------------

/// Wider schema for the executor differential: integer join keys, a dense
/// and a sparse int, a float, a date, and a string column, so every typed
/// column kernel (and the null-mask path of each) gets exercised.
fn diff_schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Int),
        ("amt", DataType::Float),
        ("day", DataType::Date),
        ("tag", DataType::Str),
    ])
}

/// Random table over [`diff_schema`]; roughly 8% NULLs per cell when
/// `with_nulls`, including in join/group keys (NULL keys never join but do
/// form their own group — both kernels must agree on that).
fn random_diff_table(rng: &mut SmallRng, rows: usize, with_nulls: bool) -> Table {
    let tags = ["news", "video", "shop", "mail", "search"];
    let cell = |rng: &mut SmallRng, v: Value| {
        if with_nulls && rng.gen_bool(0.08) {
            Value::Null
        } else {
            v
        }
    };
    let data = (0..rows)
        .map(|_| {
            let k = Value::Int(rng.gen_range(0..12));
            let v = Value::Int(rng.gen_range(0..100));
            let amt = Value::Float((rng.gen_range(-50.0_f64..50.0) * 10.0).round() / 10.0);
            let day = Value::Date(rng.gen_range(0..50));
            let tag = Value::Str(tags[rng.gen_range(0..tags.len())].into());
            vec![
                cell(rng, k),
                cell(rng, v),
                cell(rng, amt),
                cell(rng, day),
                cell(rng, tag),
            ]
        })
        .collect();
    Table::single(diff_schema(), data)
}

/// One random schema-compatible unary operator on `cur`. Operators that
/// append columns (window, tokenize) are fine mid-chain: downstream ops only
/// reference columns 0..5.
fn random_diff_unary(
    b: &mut PlanBuilder,
    rng: &mut SmallRng,
    cur: NodeId,
    used_windows: &mut [bool; 3],
) -> NodeId {
    use scope_plan::op::WindowFunc;
    use scope_plan::{NamedExpr, ScalarFunc};
    match rng.gen_range(0..14) {
        0 => b.filter(
            cur,
            Expr::col(rng.gen_range(0..2)).ge(Expr::lit(rng.gen_range(0..40) as i64)),
        ),
        1 => b.filter(cur, Expr::col(4).eq(Expr::lit("news"))),
        // Conjunction over nullable columns: 3-valued logic differential.
        2 => b.filter(
            cur,
            Expr::col(0)
                .ge(Expr::lit(rng.gen_range(0..8) as i64))
                .and(Expr::col(1).lt(Expr::lit(rng.gen_range(40..90) as i64))),
        ),
        3 => b.project(
            cur,
            vec![
                NamedExpr::new("k", Expr::col(0)),
                NamedExpr::new("v2", Expr::col(0).add(Expr::col(1))),
                NamedExpr::new("amt", Expr::col(2).mul(Expr::lit(2.0))),
                NamedExpr::new("day", Expr::col(3)),
                NamedExpr::new("tag", Expr::col(4)),
            ],
        ),
        4 => b.project(
            cur,
            vec![
                NamedExpr::new("k", Expr::col(0).modulo(Expr::lit(5i64))),
                NamedExpr::new("v", Expr::col(1)),
                NamedExpr::new("yr", Expr::func(ScalarFunc::Year, vec![Expr::col(3)])),
                NamedExpr::new("day", Expr::col(3)),
                NamedExpr::new("tagl", Expr::func(ScalarFunc::Len, vec![Expr::col(4)])),
            ],
        ),
        5 => b.remap(
            cur,
            vec![0, 1, 2, 3, 4],
            ["a", "b", "c", "d", "e"].map(String::from).to_vec(),
        ),
        6 => {
            let col = rng.gen_range(0..5);
            let key = if rng.gen_bool(0.5) {
                SortKey::asc(col)
            } else {
                SortKey::desc(col)
            };
            b.sort(cur, SortOrder(vec![key]))
        }
        7 => b.top(
            cur,
            rng.gen_range(5..60),
            SortOrder(vec![SortKey::desc(rng.gen_range(0..5))]),
        ),
        8 => b.exchange(
            cur,
            match rng.gen_range(0..4) {
                0 => Partitioning::Hash {
                    cols: vec![rng.gen_range(0..2)],
                    parts: rng.gen_range(2..6),
                },
                1 => Partitioning::Range {
                    col: rng.gen_range(0..2),
                    parts: rng.gen_range(2..6),
                },
                2 => Partitioning::RoundRobin {
                    parts: rng.gen_range(2..6),
                },
                _ => Partitioning::Single,
            },
        ),
        9 => {
            // Each window func names its output column after itself; a
            // second use would collide, so each appears at most once.
            let pick = rng.gen_range(0..3);
            if used_windows[pick] {
                return b.nop(cur);
            }
            used_windows[pick] = true;
            let func = match pick {
                0 => WindowFunc::RowNumber,
                1 => WindowFunc::Rank,
                _ => WindowFunc::RunningSum(1),
            };
            b.window(cur, func, vec![0], SortOrder(vec![SortKey::asc(1)]))
        }
        10 => b.process(
            cur,
            Udo::new(
                UdoKind::ClampOutliers {
                    col: 2,
                    lo: -10,
                    hi: rng.gen_range(10..40),
                },
                "DiffLib",
                "1.0",
            ),
        ),
        11 => b.reduce(
            cur,
            Udo::new(
                UdoKind::TrimBand {
                    col: 1,
                    gap: rng.gen_range(0..5),
                },
                "DiffLib",
                "1.0",
            ),
            vec![0],
        ),
        12 => b.gb_apply(
            cur,
            Udo::new(
                UdoKind::TopPerGroup {
                    col: 1,
                    n: rng.gen_range(1..4),
                },
                "DiffLib",
                "1.0",
            ),
            vec![0],
        ),
        _ => b.spool(cur),
    }
}

/// A random plan exercising every executor operator family: scans (plain,
/// range-predicated, extract), unary chains, a join of random kind, an
/// optional union, and an optional terminal aggregate.
fn random_diff_plan(seed: u64, d1: DatasetId, d2: DatasetId) -> QueryGraph {
    use scope_plan::JoinKind;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = PlanBuilder::new();
    let mut used_windows = [false; 3];

    let scan = |b: &mut PlanBuilder, rng: &mut SmallRng, d: DatasetId| match rng.gen_range(0..4) {
        0 => b.range_scan(
            d,
            "diff/<date>/t.ss",
            diff_schema(),
            Expr::col(3).lt(Expr::lit(Value::Date(rng.gen_range(10..50)))),
        ),
        1 => b.extract(
            d,
            "diff/<date>/raw.ss",
            diff_schema(),
            Udo::new(UdoKind::Tokenize { col: 4 }, "DiffLib", "1.0"),
        ),
        _ => b.table_scan(d, "diff/<date>/t.ss", diff_schema()),
    };

    let mut top = if rng.gen_bool(0.7) {
        let mut left = scan(&mut b, &mut rng, d1);
        for _ in 0..rng.gen_range(1..=4) {
            left = random_diff_unary(&mut b, &mut rng, left, &mut used_windows);
        }
        let mut right = scan(&mut b, &mut rng, d2);
        for _ in 0..rng.gen_range(0..=3) {
            right = random_diff_unary(&mut b, &mut rng, right, &mut used_windows);
        }
        let kind = match rng.gen_range(0..3) {
            0 => JoinKind::Inner,
            1 => JoinKind::LeftOuter,
            _ => JoinKind::LeftSemi,
        };
        let (lk, rk) = if rng.gen_bool(0.7) {
            (vec![0], vec![0])
        } else {
            (vec![0, 1], vec![0, 1])
        };
        b.join(left, right, kind, lk, rk)
    } else {
        // Union first (both branches still carry the base schema), chain on
        // top — type-changing projections (or extract's appended token
        // column) would break branch compatibility.
        let a = b.table_scan(d1, "diff/<date>/t.ss", diff_schema());
        let c = if rng.gen_bool(0.5) {
            b.table_scan(d2, "diff/<date>/u.ss", diff_schema())
        } else {
            b.range_scan(
                d2,
                "diff/<date>/u.ss",
                diff_schema(),
                Expr::col(3).lt(Expr::lit(Value::Date(rng.gen_range(10..50)))),
            )
        };
        let u = b.union_all(vec![a, c]);
        random_diff_unary(&mut b, &mut rng, u, &mut used_windows)
    };
    for _ in 0..rng.gen_range(0..=2) {
        top = random_diff_unary(&mut b, &mut rng, top, &mut used_windows);
    }
    if rng.gen_bool(0.5) {
        top = b.aggregate(
            top,
            vec![0],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum_v", AggFunc::Sum, 1),
                AggExpr::new("avg_amt", AggFunc::Avg, 2),
                AggExpr::new("min_day", AggFunc::Min, 3),
                AggExpr::new("max_tag", AggFunc::Max, 4),
                AggExpr::new("uniq", AggFunc::CountDistinct, 1),
            ],
        );
    }
    b.write(top, "diff/out/<date>/r.ss").build().unwrap()
}

/// Randomly flips physical implementation choices the optimizer rarely
/// picks (stream aggregation, loops joins) so the differential covers those
/// kernels too. Both executors run the *same* patched plan, so semantic
/// oddities (e.g. stream agg over unsorted input) must still agree.
fn patch_physical(rng: &mut SmallRng, phys: &mut QueryGraph) {
    use scope_plan::op::AggImpl;
    use scope_plan::JoinImpl;
    let ids: Vec<NodeId> = phys.nodes().iter().map(|n| n.id).collect();
    for id in ids {
        let node = phys.node_mut(id).unwrap();
        match &mut node.op {
            Operator::Aggregate { implementation, .. } if rng.gen_bool(0.3) => {
                *implementation = AggImpl::Stream;
            }
            Operator::Join { implementation, .. } if rng.gen_bool(0.25) => {
                *implementation = JoinImpl::Loops;
            }
            _ => {}
        }
    }
}

/// Runs one graph through both executors and asserts byte-identical
/// results: every node's stats (rows, bytes, simulated CPU) and every
/// node's table — schema, physical properties, partition count, and
/// per-partition row *order*, not just multisets.
fn assert_executors_agree(graph: &QueryGraph, storage: &StorageManager, context: &str) {
    let model = CostModel::default();
    let columnar = execute_plan(graph, storage, &model, SimTime::ZERO).unwrap();
    let rowwise =
        scope_engine::rowref::execute_plan_rows(graph, storage, &model, SimTime::ZERO).unwrap();
    assert_eq!(
        columnar.node_stats, rowwise.node_stats,
        "NodeRuntimeStats diverged ({context})"
    );
    for (i, (ct, rt)) in columnar
        .node_tables
        .iter()
        .zip(&rowwise.node_tables)
        .enumerate()
    {
        assert_eq!(
            *ct,
            rt.to_table(),
            "node {i} table diverged ({context}: {})",
            graph.node(NodeId::new(i as u64)).unwrap().op.describe()
        );
    }
    assert_eq!(
        columnar.outputs.len(),
        rowwise.outputs.len(),
        "output set diverged ({context})"
    );
    for (name, ct) in &columnar.outputs {
        assert_eq!(
            *ct,
            rowwise.outputs[name].to_table(),
            "output {name} diverged ({context})"
        );
    }
}

/// PR 8 tentpole invariant: on random plans covering every operator family
/// — with NULLs in keys and payloads, random partitioning, stream/loops
/// implementation flips, and empty-input edge cases — the columnar executor
/// is *byte-identical* to the row-at-a-time reference executor, statistics
/// included.
#[test]
fn columnar_executor_matches_row_reference() {
    for_cases("columnar_executor_matches_row_reference", |case_rng| {
        let seed = case_rng.gen_range(0u64..100_000);
        let (d1, d2) = (DatasetId::new(11), DatasetId::new(12));
        let graph = random_diff_plan(seed, d1, d2);
        let storage = StorageManager::new();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xbeef);
        // Occasionally empty or tiny inputs: zero-row partitions and
        // empty-side joins must agree too.
        let rows1 = [0, 3, 200, 400][rng.gen_range(0..4)];
        let rows2 = [0, 5, 150][rng.gen_range(0..3)];
        storage.put_dataset(d1, random_diff_table(&mut rng, rows1, true));
        storage.put_dataset(d2, random_diff_table(&mut rng, rows2, true));

        let cfg = OptimizerConfig {
            default_dop: [1usize, 2, 8][rng.gen_range(0..3)],
            ..Default::default()
        };
        let plan = optimize(&graph, &[], &NoViewServices, &cfg, JobId::new(1)).unwrap();
        let mut phys = plan.physical.clone();
        patch_physical(&mut rng, &mut phys);
        assert_executors_agree(&phys, &storage, &format!("seed {seed}"));
    });
}

/// The same differential pinned on the real workload: every TPC-DS query's
/// optimized plan produces identical [`scope_engine::NodeRuntimeStats`] —
/// the EXPERIMENTS.md figures and the analyzer's mined statistics cannot
/// drift with the executor's data layout.
#[test]
fn columnar_stats_match_row_reference_on_tpcds() {
    use scope_workload::tpcds::{TpcdsWorkload, NUM_QUERIES};
    let tpcds = TpcdsWorkload::new(0.03, 1);
    let storage = StorageManager::new();
    tpcds.register_data(&storage).unwrap();
    let cfg = OptimizerConfig::default();
    for q in 1..=NUM_QUERIES {
        let job = tpcds.query_job(q).unwrap();
        let plan = optimize(&job.graph, &[], &NoViewServices, &cfg, job.id).unwrap();
        assert_executors_agree(&plan.physical, &storage, &format!("tpcds q{q}"));
    }
}

/// Build locks: under arbitrary interleavings of proposals from many
/// jobs, exactly one holds the lock at a time.
#[test]
fn lock_exclusivity() {
    for_cases("lock_exclusivity", |case_rng| {
        use cloudviews::{LockOutcome, MetadataService};
        use scope_common::time::SimClock;
        let n_jobs = case_rng.gen_range(2u64..12);
        let svc = MetadataService::new(Arc::new(SimClock::new()), 1);
        let sig = Sig128::new(1, 2);
        let mut winners = 0;
        for j in 0..n_jobs {
            if svc
                .propose_now(sig, JobId::new(j), SimDuration::from_secs(60))
                .unwrap()
                == LockOutcome::Acquired
            {
                winners += 1;
            }
        }
        assert_eq!(winners, 1, "{n_jobs} jobs");
    });
}
