//! ISSUE 6 satellite 4 — tier-2 equivalence: every subsumption rewrite the
//! cascade performs must yield outputs **byte-identical** to full
//! recomputation. Each test drives the real runtime end to end: a view job
//! materializes the wider computation (publishing its subsumption
//! descriptor), then a query job whose plan matches only *semantically* —
//! tighter filter, narrower projection, or coarser group-by — reuses it
//! through a compensation plan, and the compensated outputs are compared
//! against a baseline run of the same query with reuse disabled.

use std::sync::Arc;

use cloudviews::analyzer::SelectedView;
use cloudviews::{CloudViews, RunMode};
use scope_common::ids::{ClusterId, DatasetId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::time::{SimDuration, SimTime};
use scope_engine::data::Table;
use scope_engine::job::JobSpec;
use scope_engine::optimizer::Annotation;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{
    AggExpr, DataType, Expr, NamedExpr, PhysicalProps, PlanBuilder, QueryGraph, Schema, Value,
};
use scope_signature::sign_graph;

const DATASET: DatasetId = DatasetId::new(31);
const STREAM: &str = "sub/t.ss";

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("g", DataType::Int),
        ("v", DataType::Int),
    ])
}

/// Deterministic table with repeated `(k, g)` pairs so coarser rollups
/// genuinely merge groups, plus enough value spread for filters to bite.
fn table(seed: u64, rows: usize) -> Table {
    let data = (0..rows)
        .map(|i| {
            let x = scope_common::sip64(format!("sub/{seed}/{i}").as_bytes());
            vec![
                Value::Int((x % 7) as i64),
                Value::Int(((x >> 8) % 5) as i64),
                Value::Int(((x >> 16) % 100) as i64),
            ]
        })
        .collect();
    Table::single(schema(), data)
}

fn scan(b: &mut PlanBuilder) -> NodeId {
    b.table_scan(DATASET, STREAM, schema())
}

fn spec(id: u64, template: u64, graph: QueryGraph) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        cluster: ClusterId::new(0),
        vc: VcId::new(0),
        user: UserId::new(0),
        template: TemplateId::new(template),
        instance: 0,
        graph,
    }
}

/// Annotates `target` in the view graph so the view job materializes it.
fn annotate(cv: &CloudViews, view_graph: &QueryGraph, target: NodeId) {
    let signed = sign_graph(view_graph).unwrap();
    cv.metadata.load_annotations(&[SelectedView {
        annotation: Annotation {
            normalized: signed.of(target).normalized,
            props: PhysicalProps::any(),
            ttl: SimDuration::from_secs(86_400),
            // Large mined cost so the tier-2 cost gate always favors reuse.
            avg_cpu: SimDuration::from_secs(3_600),
            avg_rows: 100,
            avg_bytes: 10_000,
        },
        input_tags: vec![STREAM.into()],
        utility: SimDuration::from_secs(10),
        frequency: 2,
        precise_last_seen: signed.of(target).precise,
    }]);
}

/// Runs the full cycle: baseline answer for the query, view job builds,
/// query job must take a tier-2 rewrite and match the baseline exactly.
fn assert_tier2_equivalent(
    view_graph: QueryGraph,
    query_graph: QueryGraph,
    target: NodeId,
    seed: u64,
    context: &str,
) {
    let storage = Arc::new(StorageManager::new());
    storage.put_dataset(DATASET, table(seed, 200));
    let cv = CloudViews::builder(storage).build();
    annotate(&cv, &view_graph, target);

    let base = cv
        .run_job_at(
            &spec(1, 0, query_graph.clone()),
            RunMode::Baseline,
            SimTime::ZERO,
        )
        .unwrap();
    let build = cv
        .run_job_at(&spec(2, 1, view_graph), RunMode::CloudViews, cv.clock.now())
        .unwrap();
    assert_eq!(build.views_built.len(), 1, "{context}: view job must build");

    let query = cv
        .run_job_at(
            &spec(3, 2, query_graph),
            RunMode::CloudViews,
            cv.clock.now(),
        )
        .unwrap();
    assert!(
        query.optimizer.tier2_reused >= 1,
        "{context}: query must take a tier-2 rewrite (report: {:?})",
        query.optimizer
    );
    assert_eq!(
        query.views_reused, build.views_built,
        "{context}: the reused view is the one the view job built"
    );
    assert_eq!(
        base.output_checksums, query.output_checksums,
        "{context}: compensated outputs differ from recompute"
    );
    assert_eq!(
        base.output_rows, query.output_rows,
        "{context}: compensated row counts differ from recompute"
    );
    assert!(
        cv.metadata.stats().tier2_hits >= 1,
        "{context}: metadata service must record the tier-2 hit"
    );
}

/// Filter subsumption: the view keeps `v >= 10`, the query needs `v >= 40`.
/// The compensation re-applies the query's own filter over the view scan.
#[test]
fn tier2_filter_residual_matches_recompute() {
    let view = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let f = b.filter(s, Expr::col(2).ge(Expr::lit(10i64)));
        b.output(f, "v").build().unwrap()
    };
    let query = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let f = b.filter(s, Expr::col(2).ge(Expr::lit(40i64)));
        b.output(f, "q").build().unwrap()
    };
    assert_tier2_equivalent(view, query, NodeId::new(1), 11, "filter residual");
}

/// Projection subsumption: the view projects `(k, v)`, the query only
/// `v` — compensated by re-projecting in the view's output column space.
#[test]
fn tier2_projection_superset_matches_recompute() {
    let view = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let p = b.project(
            s,
            vec![
                NamedExpr::new("k", Expr::col(0)),
                NamedExpr::new("v", Expr::col(2)),
            ],
        );
        b.output(p, "v").build().unwrap()
    };
    let query = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let p = b.project(s, vec![NamedExpr::new("v", Expr::col(2))]);
        b.output(p, "q").build().unwrap()
    };
    assert_tier2_equivalent(view, query, NodeId::new(1), 13, "projection superset");
}

/// Group-by rollup: the view aggregates by `(k, g)`, the query by `k`
/// alone — compensated by re-aggregating the view with Count folded into
/// Sum over the view's count column.
#[test]
fn tier2_rollup_matches_recompute() {
    let view = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let a = b.aggregate(
            s,
            vec![0, 1],
            vec![
                AggExpr::new("n", AggFunc::Count, 2),
                AggExpr::new("hi", AggFunc::Max, 2),
            ],
        );
        b.output(a, "v").build().unwrap()
    };
    let query = {
        let mut b = PlanBuilder::new();
        let s = scan(&mut b);
        let a = b.aggregate(
            s,
            vec![0],
            vec![
                AggExpr::new("n", AggFunc::Count, 2),
                AggExpr::new("hi", AggFunc::Max, 2),
            ],
        );
        b.output(a, "q").build().unwrap()
    };
    assert_tier2_equivalent(view, query, NodeId::new(1), 17, "group-by rollup");
}

/// Property sweep: across many seeds and random bound pairs, whenever the
/// view's filter is at least as wide as the query's, the compensated
/// answer equals recompute. Wider-than-view queries must *not* rewrite.
#[test]
fn tier2_filter_equivalence_holds_across_random_bounds() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    for case in 0u64..12 {
        let mut rng =
            SmallRng::seed_from_u64(scope_common::sip64(format!("sub-prop/{case}").as_bytes()));
        let view_bound = rng.gen_range(0i64..50);
        let query_bound = rng.gen_range(view_bound..100);
        let graph_for = |bound: i64, out: &str| {
            let mut b = PlanBuilder::new();
            let s = scan(&mut b);
            let f = b.filter(s, Expr::col(2).ge(Expr::lit(bound)));
            b.output(f, out).build().unwrap()
        };
        if view_bound == query_bound {
            continue; // identical plans are tier-1 territory
        }
        assert_tier2_equivalent(
            graph_for(view_bound, "v"),
            graph_for(query_bound, "q"),
            NodeId::new(1),
            1_000 + case,
            &format!("bounds case {case}: view>={view_bound} query>={query_bound}"),
        );

        // Inverted direction: a query *wider* than the view must never be
        // served by it — the run still matches baseline (by recompute) and
        // performs no tier-2 rewrite.
        let storage = Arc::new(StorageManager::new());
        storage.put_dataset(DATASET, table(2_000 + case, 200));
        let cv = CloudViews::builder(storage).build();
        let wide_view = graph_for(query_bound, "v");
        let narrow_query = graph_for(view_bound, "q");
        annotate(&cv, &wide_view, NodeId::new(1));
        let base = cv
            .run_job_at(
                &spec(1, 0, narrow_query.clone()),
                RunMode::Baseline,
                SimTime::ZERO,
            )
            .unwrap();
        cv.run_job_at(&spec(2, 1, wide_view), RunMode::CloudViews, cv.clock.now())
            .unwrap();
        let query = cv
            .run_job_at(
                &spec(3, 2, narrow_query),
                RunMode::CloudViews,
                cv.clock.now(),
            )
            .unwrap();
        assert_eq!(
            query.optimizer.tier2_reused, 0,
            "case {case}: narrow view must not serve a wider query"
        );
        assert_eq!(base.output_checksums, query.output_checksums);
    }
}

/// The cascade stays sound over the full TPC-DS cycle with subsumption on
/// (the default): every query's output remains bit-identical to baseline.
#[test]
fn tpcds_cycle_with_subsumption_stays_bit_identical() {
    use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
    use scope_workload::tpcds::TpcdsWorkload;

    let tpcds = TpcdsWorkload::new(0.03, 1);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    tpcds.register_data(&cv.storage).unwrap();
    let jobs = tpcds.all_jobs().unwrap();
    let baseline = cv.run_sequence(&jobs, RunMode::Baseline).unwrap();

    let analysis = cv
        .analyze(&AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 10 },
            constraints: SelectionConstraints::default(),
            ..Default::default()
        })
        .unwrap();
    cv.install_analysis(&analysis);

    let enabled = cv
        .run_sequence(&tpcds.all_jobs().unwrap(), RunMode::CloudViews)
        .unwrap();
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(
            b.output_checksums, e.output_checksums,
            "q{}: subsumption-enabled run corrupted the answer",
            b.job
        );
        assert_eq!(b.output_rows, e.output_rows);
    }
    assert!(
        enabled.iter().any(|r| !r.views_reused.is_empty()),
        "cycle must still reuse views"
    );
}
