//! End-to-end integration tests spanning the whole stack: workload
//! generation → baseline runs → analyzer → metadata service → optimizer
//! rewriting → execution → correctness and savings.

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{CloudViews, ReportRequest, RunMode};
use scope_common::time::{SimDuration, SimTime};
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("e2e")],
        seed,
        stream_rows: LogNormal::new(6.5, 0.6, 200.0, 3_000.0),
    })
    .unwrap()
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn three_instance_lifecycle() {
    let w = workload(5);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();

    // Instance 0: baseline fills the repository.
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    let day0 = w.jobs_for_instance(0, 0).unwrap();
    cv.run_sequence(&day0, RunMode::Baseline).unwrap();

    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    assert!(!analysis.selected.is_empty());
    cv.install_analysis(&analysis);

    // Instances 1 and 2: enabled; views from instance 1 must NOT be reused
    // in instance 2 (new GUIDs ⇒ new precise signatures), but instance 2
    // builds its own.
    let mut built_per_instance = Vec::new();
    for inst in 1..3 {
        w.register_instance_data(0, inst, &cv.storage, 1.0).unwrap();
        let jobs = w.jobs_for_instance(0, inst).unwrap();
        let baseline = cv.run_sequence(&jobs, RunMode::Baseline).unwrap();
        let enabled = cv.run_sequence(&jobs, RunMode::CloudViews).unwrap();
        for (b, e) in baseline.iter().zip(&enabled) {
            assert_eq!(b.output_checksums, e.output_checksums);
        }
        built_per_instance.push(enabled.iter().map(|r| r.views_built.len()).sum::<usize>());
    }
    assert!(
        built_per_instance.iter().all(|&b| b > 0),
        "{built_per_instance:?}"
    );
}

#[test]
fn savings_are_real_and_outputs_identical() {
    let w = workload(11);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    cv.install_analysis(&analysis);

    w.register_instance_data(0, 1, &cv.storage, 1.0).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    let baseline = cv.run_sequence(&day1, RunMode::Baseline).unwrap();
    let enabled = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();

    let base_cpu: SimDuration = baseline.iter().map(|r| r.cpu_time).sum();
    let cv_cpu: SimDuration = enabled.iter().map(|r| r.cpu_time).sum();
    assert!(cv_cpu < base_cpu, "CPU must drop: {cv_cpu} vs {base_cpu}");
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(b.output_checksums, e.output_checksums);
        assert_eq!(b.output_rows, e.output_rows);
    }
}

#[test]
fn concurrent_jobs_build_each_view_once() {
    let w = workload(23);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 0.5).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    cv.install_analysis(&analysis);

    w.register_instance_data(0, 1, &cv.storage, 0.5).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    let reports = cv.run_concurrent(day1, RunMode::CloudViews).unwrap();
    let mut built: Vec<_> = reports
        .iter()
        .flat_map(|r| r.views_built.iter().copied())
        .collect();
    let n = built.len();
    built.sort_unstable();
    built.dedup();
    assert_eq!(built.len(), n, "a view was built twice under concurrency");
    // The storage manager holds exactly the deduplicated set.
    assert_eq!(cv.storage.num_views(), built.len());
}

#[test]
fn disabled_vcs_do_not_get_annotations() {
    // Admin excludes vc0 from analysis: no computation owned solely by vc0
    // may be selected.
    let w = workload(31);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 1.0).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let cfg = AnalyzerConfig {
        exclude_vcs: vec![scope_common::ids::VcId::new(0)],
        ..analyzer_cfg()
    };
    let analysis = cv.analyze(&cfg).unwrap();
    for group in &analysis.groups {
        assert!(
            !group.vcs.contains(&scope_common::ids::VcId::new(0)),
            "excluded VC leaked into analysis"
        );
    }
}

#[test]
fn views_expire_end_to_end() {
    let w = workload(47);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 0.5).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv
        .analyze(&AnalyzerConfig {
            default_ttl: SimDuration::from_secs(60),
            ..analyzer_cfg()
        })
        .unwrap();
    cv.install_analysis(&analysis);
    w.register_instance_data(0, 1, &cv.storage, 0.5).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    let views_before = cv.storage.num_views();
    assert!(views_before > 0);

    // A job submitted after expiry cannot read the views; it recomputes and
    // (with a fresh lock) rebuilds.
    cv.clock.advance(SimDuration::from_secs(7 * 86_400));
    let purge = cv.purge_expired();
    assert_eq!(purge.views_purged, views_before);
    assert!(purge.bytes_reclaimed > 0);
    let report = cv
        .run_job_at(&day1[0], RunMode::CloudViews, cv.clock.now())
        .unwrap();
    assert!(report.views_reused.is_empty(), "reused an expired view");
}

#[test]
fn baseline_and_enabled_interleave_safely() {
    // Mixed traffic: some jobs opt in, some do not (the paper's opt-in
    // deployment mode). Opted-out jobs are never rewritten and never build.
    let w = workload(61);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 0.5).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    cv.install_analysis(&analysis);
    w.register_instance_data(0, 1, &cv.storage, 0.5).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    for (i, spec) in day1.iter().enumerate() {
        let mode = if i % 2 == 0 {
            RunMode::CloudViews
        } else {
            RunMode::Baseline
        };
        let r = cv.run_job_at(spec, mode, cv.clock.now()).unwrap();
        if mode == RunMode::Baseline {
            assert!(r.views_built.is_empty());
            assert!(r.views_reused.is_empty());
            assert_eq!(r.lookup_latency, SimDuration::ZERO);
        }
    }
}

#[test]
fn offline_mode_builds_views_upfront() {
    use scope_engine::exec::execute_plan;
    use scope_engine::job::materialize_marked_views;
    use scope_engine::optimizer::{optimize, OptimizerConfig};
    use scope_engine::sim::{simulate, ClusterConfig};
    use scope_signature::job_tags;

    let w = workload(71);
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    w.register_instance_data(0, 0, &cv.storage, 0.5).unwrap();
    cv.run_sequence(&w.jobs_for_instance(0, 0).unwrap(), RunMode::Baseline)
        .unwrap();
    let analysis = cv.analyze(&analyzer_cfg()).unwrap();
    cv.install_analysis(&analysis);

    // Weekly-analytics style: an admin pre-builds views for instance 1
    // before the pipeline runs, using the optimizer's offline mode.
    w.register_instance_data(0, 1, &cv.storage, 0.5).unwrap();
    let day1 = w.jobs_for_instance(0, 1).unwrap();
    let mut prebuilt = 0;
    for spec in &day1 {
        let annotations = cv
            .metadata
            .relevant_views_for(spec.id, &job_tags(&spec.graph))
            .unwrap()
            .annotations;
        if annotations.is_empty() {
            continue;
        }
        let cfg = OptimizerConfig {
            offline_mode: true,
            enable_reuse: false,
            ..Default::default()
        };
        let Ok(plan) = optimize(
            &spec.graph,
            &annotations,
            cv.metadata.as_ref(),
            &cfg,
            spec.id,
        ) else {
            continue; // nothing to build for this job
        };
        let exec = execute_plan(&plan.physical, &cv.storage, &cv.cost, SimTime::ZERO).unwrap();
        let sim = simulate(&plan.physical, &exec, &ClusterConfig::default());
        for built in
            materialize_marked_views(&plan, &exec, &sim, &cv.cost, spec.id, SimTime::ZERO).unwrap()
        {
            let view = scope_engine::optimizer::AvailableView {
                precise: built.file.meta.precise,
                rows: built.file.meta.rows,
                bytes: built.file.meta.bytes,
                props: built.file.props.clone(),
            };
            let expires = built.file.meta.expires_at;
            let normalized = built.file.meta.normalized;
            cv.storage.publish_view(built.file).unwrap();
            cv.metadata
                .report(ReportRequest::new(
                    view,
                    normalized,
                    spec.id,
                    SimTime::ZERO,
                    expires,
                ))
                .unwrap();
            prebuilt += 1;
        }
    }
    assert!(prebuilt > 0, "offline mode built nothing");

    // The pipeline now runs with everything already materialized: at least
    // one job reuses and nobody needs to build those same views again.
    let reports = cv.run_sequence(&day1, RunMode::CloudViews).unwrap();
    let reused: usize = reports.iter().map(|r| r.views_reused.len()).sum();
    assert!(reused > 0, "prebuilt views were not reused");
}
