//! Incremental-analyzer invariants (DESIGN.md §11).
//!
//! The analyzer state folds records one at a time into persistent
//! aggregates; correctness rests on two properties this file pins down:
//!
//! 1. **Partition invariance** — ingesting a record stream in any split
//!    (one call, per-record calls, uneven chunks) yields byte-identical
//!    analysis to one full-batch `run_analysis`. This is what makes
//!    "ingest the delta, select from aggregates" exact rather than
//!    approximate.
//! 2. **Thread-count determinism** — the parallel fold merges per-shard
//!    partials with commutative updates guarded by pre-assigned sequence
//!    numbers, so 1 worker and 8 workers produce identical outcomes.
//!
//! Plus the service-level wiring: a resident analyzer fed by the pipeline's
//! record stage reaches the same selection as a full batch replay, and the
//! storage-budget knob packs under the byte budget.

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{AnalysisOutcome, AnalyzerState, CloudViews, RunMode};
use scope_engine::repo::JobRecord;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

/// Runs `instances` baseline instances of a tiny workload and returns the
/// recorded history.
fn history(instances: u64, seed: u64) -> Vec<JobRecord> {
    let w = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("inc")],
        seed,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap();
    let cv = CloudViews::builder(Arc::new(StorageManager::new())).build();
    let mut rounds = w.rounds(0);
    for _ in 0..instances {
        let jobs = rounds.next_round(&cv.storage, 1.0).unwrap();
        cv.run_sequence(&jobs, RunMode::Baseline).unwrap();
    }
    cv.repo.records()
}

/// Deterministic fingerprint of everything an analysis decides, excluding
/// wall-clock timings. `selected`, `groups`, and `order_hints` are ordered
/// deterministically by construction, so their `Debug` forms are
/// byte-comparable; the metrics maps are projected through sorted vectors.
fn fingerprint(o: &AnalysisOutcome) -> String {
    let m = &o.metrics;
    let mut per_job: Vec<_> = m.per_job.iter().map(|(k, v)| (*k, *v)).collect();
    per_job.sort_unstable();
    let mut per_user: Vec<_> = m.per_user.iter().map(|(k, v)| (*k, *v)).collect();
    per_user.sort_unstable();
    let mut per_vc: Vec<_> = m.per_vc.iter().map(|(k, v)| (*k, *v)).collect();
    per_vc.sort_unstable();
    let mut per_input: Vec<_> = m
        .per_input
        .iter()
        .map(|(k, v)| (format!("{k:?}"), *v))
        .collect();
    per_input.sort_unstable();
    let mut vc_jobs: Vec<_> = m.vc_jobs.iter().map(|(k, v)| (*k, *v)).collect();
    vc_jobs.sort_unstable();
    format!(
        "selected={:?}\ngroups={:?}\nhints={:?}\njobs={}\nscalars={:?}\nfreqs={:?}\n\
         per_job={per_job:?}\nper_user={per_user:?}\nper_vc={per_vc:?}\n\
         per_input={per_input:?}\nvc_jobs={vc_jobs:?}",
        o.selected,
        o.groups,
        o.order_hints,
        o.jobs_analyzed,
        (
            m.jobs_total,
            m.jobs_overlapping,
            m.users_total,
            m.users_overlapping,
            m.subgraphs_total,
            m.subgraphs_overlapping,
            m.occurrences_total,
            m.occurrences_overlapping,
        ),
        m.overlap_frequencies,
    )
}

fn configs() -> Vec<AnalyzerConfig> {
    vec![
        AnalyzerConfig::default(),
        AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 5 },
            constraints: SelectionConstraints {
                per_job_cap: Some(1),
                ..Default::default()
            },
            ..Default::default()
        },
        AnalyzerConfig {
            policy: SelectionPolicy::TopKUtilityPerByte { k: 8 },
            storage_budget_bytes: Some(50_000),
            ..Default::default()
        },
    ]
}

#[test]
fn ingest_is_partition_invariant() {
    let records = history(3, 19);
    assert!(records.len() >= 8, "need a real stream to partition");
    // Chunk sizes exercising the extremes: per-record, uneven, one batch.
    let partitions: &[usize] = &[1, 2, 3, 7, records.len() / 2, records.len()];
    for config in configs() {
        let full = cloudviews::analyzer::run_analysis(&records, &config).unwrap();
        let want = fingerprint(&full);
        for &chunk in partitions {
            let state = AnalyzerState::new(config.clone(), 1);
            for piece in records.chunks(chunk.max(1)) {
                state.ingest(piece);
            }
            let got = fingerprint(&state.select().unwrap());
            assert_eq!(
                got, want,
                "partition into chunks of {chunk} diverged from full batch \
                 under {:?}",
                config.policy
            );
        }
        // Selecting twice without new records is stable (select reads, never
        // consumes, the aggregates).
        let state = AnalyzerState::new(config.clone(), 1);
        state.ingest(&records);
        let first = fingerprint(&state.select().unwrap());
        let second = fingerprint(&state.select().unwrap());
        assert_eq!(first, second);
        assert_eq!(first, want);
    }
}

#[test]
fn parallel_fold_matches_serial() {
    let records = history(3, 23);
    for config in configs() {
        let serial = AnalyzerState::new(config.clone(), 1);
        serial.ingest(&records);
        let want = fingerprint(&serial.select().unwrap());
        for workers in [2, 4, 8] {
            let parallel = AnalyzerState::new(config.clone(), workers);
            parallel.ingest(&records);
            let got = fingerprint(&parallel.select().unwrap());
            assert_eq!(
                got, want,
                "{workers}-worker fold diverged from serial under {:?}",
                config.policy
            );
        }
    }
}

#[test]
fn resident_analyzer_round_matches_batch_analysis() {
    let config = AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        ..Default::default()
    };
    let w = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("inc-rt")],
        seed: 29,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap();
    let cv = CloudViews::builder(Arc::new(StorageManager::new()))
        .incremental_analyzer(config.clone())
        .build();
    let analyzer = cv.analyzer.as_ref().unwrap().clone();
    let mut rounds = w.rounds(0);
    for round in 1..=3u64 {
        let jobs = rounds.next_round(&cv.storage, 1.0).unwrap();
        cv.run_sequence(&jobs, RunMode::Baseline).unwrap();
        // The record stage already absorbed this round's records.
        assert_eq!(analyzer.state().jobs_admitted(), cv.repo.len());
        let incremental = cv.analyze_round().unwrap();
        let batch = cv.analyze(&config).unwrap();
        assert_eq!(
            fingerprint(&incremental),
            fingerprint(&batch),
            "round {round}: incremental state diverged from batch replay"
        );
        let delta = analyzer.last_delta().unwrap();
        assert_eq!(delta.round, round);
        assert_eq!(delta.jobs_total, cv.repo.len());
        if round == 1 {
            assert_eq!(delta.newly_selected.len(), incremental.selected.len());
            assert!(delta.dropped.is_empty());
        }
    }
    // Round without new records: nothing ingested, selection unchanged.
    let before = fingerprint(&cv.analyze_round().unwrap());
    let delta = analyzer.last_delta().unwrap();
    assert_eq!(delta.ingested_jobs, 0);
    assert!(delta.newly_selected.is_empty() && delta.dropped.is_empty());
    assert_eq!(before, fingerprint(&cv.analyze_round().unwrap()));
}

#[test]
fn storage_budget_packs_selection() {
    let records = history(3, 31);
    let unbounded = cloudviews::analyzer::run_analysis(
        &records,
        &AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 20 },
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        unbounded.selected.len() >= 2,
        "need at least two views to budget between"
    );
    let total: u64 = unbounded
        .selected
        .iter()
        .map(|s| s.annotation.avg_bytes.max(1))
        .sum();
    // A budget of half the unbounded footprint must still select something,
    // and the packed footprint must respect it.
    let budget = (total / 2).max(1);
    let packed = cloudviews::analyzer::run_analysis(
        &records,
        &AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 20 },
            storage_budget_bytes: Some(budget),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(
        !packed.selected.is_empty(),
        "budget {budget} selected nothing"
    );
    let packed_total: u64 = packed
        .selected
        .iter()
        .map(|s| s.annotation.avg_bytes.max(1))
        .sum();
    assert!(
        packed_total <= budget,
        "packed {packed_total} B over budget {budget} B"
    );
    assert!(packed.selected.len() <= unbounded.selected.len());
}
