//! TPC-DS integration: all 99 queries through the full CloudViews cycle at
//! a small scale factor, asserting bit-identical outputs and real reuse.

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{CloudViews, RunMode};
use scope_engine::storage::StorageManager;
use scope_workload::tpcds::{build_query, TpcdsWorkload, NUM_QUERIES};

#[test]
fn all_99_queries_validate_and_have_stable_signatures() {
    use scope_signature::sign_graph;
    for q in 1..=NUM_QUERIES {
        let g1 = build_query(q).unwrap();
        let g2 = build_query(q).unwrap();
        g1.validate().unwrap();
        let s1 = sign_graph(&g1).unwrap();
        let s2 = sign_graph(&g2).unwrap();
        assert_eq!(
            s1.of(g1.roots()[0]).precise,
            s2.of(g2.roots()[0]).precise,
            "q{q} signature unstable"
        );
    }
}

#[test]
fn tpcds_reuse_cycle_is_correct_for_all_queries() {
    let tpcds = TpcdsWorkload::new(0.03, 1);
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    tpcds.register_data(&service.storage).unwrap();
    let jobs = tpcds.all_jobs().unwrap();
    let baseline = service.run_sequence(&jobs, RunMode::Baseline).unwrap();

    let analysis = service
        .analyze(&AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 10 },
            constraints: SelectionConstraints::default(),
            ..Default::default()
        })
        .unwrap();
    assert!(
        !analysis.selected.is_empty(),
        "TPC-DS must expose overlapping computations"
    );
    service.install_analysis(&analysis);

    let enabled = service
        .run_sequence(&tpcds.all_jobs().unwrap(), RunMode::CloudViews)
        .unwrap();
    let mut reused = 0usize;
    let mut built = 0usize;
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(
            b.output_checksums, e.output_checksums,
            "q{} output corrupted by reuse",
            b.job
        );
        assert_eq!(b.output_rows, e.output_rows);
        reused += e.views_reused.len();
        built += e.views_built.len();
    }
    assert!(built > 0, "no views built over TPC-DS");
    assert!(reused > 0, "no views reused over TPC-DS");
}

#[test]
fn shared_subexpressions_span_many_queries() {
    use scope_signature::sign_graph;
    use std::collections::HashMap;
    // The store_sales ⋈ date_dim(2000) computation must appear in a large
    // fraction of the store-channel queries — that is the raw material of
    // the paper's Figure 13.
    let mut counts: HashMap<scope_common::Sig128, usize> = HashMap::new();
    for q in 1..=NUM_QUERIES {
        let g = build_query(q).unwrap();
        let signed = sign_graph(&g).unwrap();
        let mut seen: Vec<scope_common::Sig128> = g
            .nodes()
            .iter()
            .filter(|n| n.children.len() == 2) // joins
            .map(|n| signed.of(n.id).precise)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        for s in seen {
            *counts.entry(s).or_default() += 1;
        }
    }
    let hottest = counts.values().max().copied().unwrap_or(0);
    assert!(
        hottest >= 15,
        "hottest join subexpression only in {hottest} queries"
    );
}
