//! Minimal stand-in for `criterion` 0.5 (see shims/README.md).
//!
//! Implements the group/bench API surface the workspace's benches call and
//! reports mean wall-clock time per iteration (plus element throughput when
//! declared). No statistical analysis, HTML reports, or CLI filtering —
//! `cargo bench` stays runnable and comparable release to release.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export mirror of `criterion::black_box`.
pub use std::hint::black_box;

/// Declared throughput of one benchmark, for derived rates in the report.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only id (group name supplies the prefix).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    /// Mean time per iteration of the last `iter` call.
    elapsed_per_iter: Duration,
    min_measure_time: Duration,
}

impl Bencher {
    fn new(min_measure_time: Duration) -> Bencher {
        Bencher {
            elapsed_per_iter: Duration::ZERO,
            min_measure_time,
        }
    }

    /// Times `f` over an adaptively chosen iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run once to guess per-iter cost.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (self.min_measure_time.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.elapsed_per_iter = t1.elapsed() / iters as u32;
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares the throughput of subsequent benches in this group.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::new(self.criterion.min_measure_time);
        f(&mut b, input);
        report(&label, b.elapsed_per_iter, self.throughput);
        self
    }

    /// Runs one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        let mut b = Bencher::new(self.criterion.min_measure_time);
        f(&mut b);
        report(&label, b.elapsed_per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    min_measure_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            min_measure_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.min_measure_time);
        f(&mut b);
        report(&name.to_string(), b.elapsed_per_iter, None);
        self
    }
}

fn report(label: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if per_iter > Duration::ZERO => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / per_iter.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("bench: {label:<48} {per_iter:>12.2?}/iter{rate}");
}

/// Builds the group-runner function `criterion_main!` invokes.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Builds `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
