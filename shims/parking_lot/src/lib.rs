//! Minimal API-compatible stand-in for `parking_lot` (see shims/README.md).
//!
//! Wraps `std::sync::{Mutex, RwLock}` and recovers from poisoning instead of
//! propagating it: a panicking critical section in one job thread must not
//! poison the service for every other job (the workspace treats panics as
//! per-job failures, not process-wide ones).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Poison is ignored.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose guards never surface poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // A poisoned std mutex would panic here; the shim recovers.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
