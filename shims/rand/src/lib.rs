//! Minimal API-compatible stand-in for `rand` 0.8 (see shims/README.md).
//!
//! Provides `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! and `rngs::{SmallRng, StdRng}` backed by xoshiro256++ seeded through
//! SplitMix64. Streams are deterministic per seed (the workspace's
//! reproducibility requirement) but differ from upstream `rand`'s.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type `Standard` can sample uniformly.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Open-unit-interval double from the top 53 bits: uniform in `[0, 1)`.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A type usable as the element of a `gen_range` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range"
                );
                // Work in u64 offsets from `lo` so signed types wrap safely.
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Full u64 domain (0..=u64::MAX): no reduction needed.
                    return rng.next_u64() as $t;
                }
                // Widening-multiply reduction (Lemire); bias is < span/2^64,
                // negligible for simulation workloads.
                let hi_bits = ((rng.next_u64() as u128 * span) >> 64) as u64;
                (lo as i128 + hi_bits as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi, "gen_range: empty float range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range form accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw over `T`'s standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }

    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// SplitMix64: seeds the main generator and is itself a fine stream mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the shim's `SmallRng` *and* `StdRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any seed
            // cannot produce four zeros, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never depends on `StdRng`'s exact stream.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(42);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(43);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(5..=8);
            assert!((5..=8).contains(&y));
            let f = r.gen_range(0.25_f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            let n: i64 = r.gen_range(-50..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
