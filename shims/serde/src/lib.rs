//! Minimal stand-in for `serde` (see shims/README.md).
//!
//! The workspace derives `serde::Serialize`/`serde::Deserialize` on its
//! data types as forward-looking annotations but never instantiates a
//! serializer, so the traits are empty markers with blanket impls and the
//! derives (re-exported from the `serde_derive` shim, mirroring upstream's
//! layout) expand to nothing. Swap in real serde if serialization is ever
//! actually exercised.

pub use serde_derive::{Deserialize, Serialize};

/// Marker standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
