//! No-op `Serialize`/`Deserialize` derive macros (see shims/README.md).
//!
//! The workspace only ever *derives* the serde traits; no serializer is
//! instantiated anywhere, so the derives expand to nothing and the traits
//! are blanket-implemented in the `serde` shim crate.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` holds a blanket impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` holds a blanket impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
