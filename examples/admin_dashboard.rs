//! The VC-admin view: workload overlap analysis and what-to-materialize.
//!
//! Reproduces the admin experience of paper Sections 2 and 5.5: analyze
//! five production-like clusters, print the Figure-1-style overlap summary
//! per cluster, drill into the largest cluster's per-VC breakdown and
//! operator-wise overlap, and compare selection policies (top-k utility vs
//! utility-per-byte vs packing under a storage budget).
//!
//! Run with: `cargo run --release --example admin_dashboard`

use std::sync::Arc;

use cloudviews::admin;
use cloudviews::analyzer::{
    overlap, run_analysis, AnalyzerConfig, SelectionConstraints, SelectionPolicy,
};
use cloudviews::reporting;
use cloudviews::{CloudViews, RunMode};
use scope_engine::repo::JobRecord;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn main() -> scope_common::Result<()> {
    // Five clusters, scaled down from the paper preset for a fast demo.
    let mk = |name: &str, base: f64, zero: f64| ClusterSpec {
        name: name.into(),
        num_vcs: 8,
        num_users: 12,
        num_templates: 40,
        num_streams: 10,
        num_fragments: 14,
        fragment_zipf: 1.2,
        vc_zero_overlap: zero,
        vc_full_overlap: 0.05,
        base_overlap: base,
        num_business_units: 2,
    };
    let workload = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![
            mk("cluster1", 0.85, 0.05),
            mk("cluster2", 0.75, 0.08),
            mk("cluster3", 0.30, 0.30), // the paper's low outlier
            mk("cluster4", 0.80, 0.05),
            mk("cluster5", 0.70, 0.10),
        ],
        seed: 3,
        stream_rows: LogNormal::new(7.0, 0.8, 200.0, 4_000.0),
    })?;

    // Run one instance of every cluster baseline to populate repositories.
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    println!("running one recurring instance of 5 clusters (baseline)...\n");
    for c in 0..5 {
        workload.register_instance_data(c, 0, &service.storage, 1.0)?;
        let jobs = workload.jobs_for_instance(c, 0)?;
        service.run_sequence(&jobs, RunMode::Baseline)?;
    }
    let records = service.repo.records();

    // --- Figure-1-style summary per cluster. ------------------------------
    println!("=== overlap per cluster (cf. paper Figure 1) ===");
    for c in 0..5u64 {
        let cluster_records: Vec<&JobRecord> =
            records.iter().filter(|r| r.cluster.raw() == c).collect();
        let metrics = overlap::overlap_metrics(&cluster_records);
        println!(
            "{}",
            reporting::overlap_summary(&format!("cluster{}", c + 1), &metrics)
        );
    }

    // --- Largest cluster drill-down. --------------------------------------
    println!("\n=== cluster1 per-VC breakdown (cf. Figure 2) ===");
    let c1: Vec<&JobRecord> = records.iter().filter(|r| r.cluster.raw() == 0).collect();
    let m1 = overlap::overlap_metrics(&c1);
    let mut vcs: Vec<_> = m1.vc_overlap_pct().into_iter().collect();
    vcs.sort_by_key(|(vc, _)| *vc);
    for (vc, pct) in vcs {
        println!("{vc}\toverlapping_jobs={pct:.0}%");
    }

    let groups = overlap::mine_overlaps(&c1);
    println!("\n=== cluster1 operator-wise overlap (cf. Figure 4a) ===");
    for (kind, pct) in reporting::operator_breakdown(&groups).iter().take(10) {
        if *pct > 0.0 {
            println!("{kind}\t{pct:.1}%");
        }
    }

    println!("\n=== cluster1 top overlapping computations ===");
    print!("{}", reporting::top_overlaps(&groups, 8));

    // --- Selection policy comparison. --------------------------------------
    println!("\n=== selection policies on cluster1 (storage vs utility) ===");
    let constraints = SelectionConstraints {
        min_cost_ratio: 0.05,
        per_job_cap: Some(1),
        ..Default::default()
    };
    for (name, policy) in [
        ("top-5 utility", SelectionPolicy::TopKUtility { k: 5 }),
        (
            "top-5 utility/byte",
            SelectionPolicy::TopKUtilityPerByte { k: 5 },
        ),
        (
            "packing 1MB",
            SelectionPolicy::Packing {
                storage_budget_bytes: 1_000_000,
            },
        ),
        (
            "packing 10MB",
            SelectionPolicy::Packing {
                storage_budget_bytes: 10_000_000,
            },
        ),
    ] {
        let cluster_records: Vec<JobRecord> = c1.iter().map(|r| (*r).clone()).collect();
        let outcome = run_analysis(
            &cluster_records,
            &AnalyzerConfig {
                policy,
                constraints: constraints.clone(),
                ..Default::default()
            },
        )?;
        let utility: f64 = outcome
            .selected
            .iter()
            .map(|s| s.utility.as_secs_f64())
            .sum();
        let bytes: u64 = outcome
            .selected
            .iter()
            .map(|s| s.annotation.avg_bytes)
            .sum();
        println!(
            "{name}\tviews={}\ttotal_utility={utility:.2}s\tstorage={:.2}MB",
            outcome.selected.len(),
            bytes as f64 / 1e6
        );
    }

    // --- Why was (or wasn't) a computation selected? ------------------------
    println!("\n=== selection drill-down (paper §4 requirement 6) ===");
    let strict = SelectionConstraints::paper_production();
    for group in groups.iter().take(3) {
        print!("{}", admin::explain_selection(group, &strict).render());
    }

    // --- Storage reclamation (paper §5.4). ----------------------------------
    // Enable CloudViews on cluster1's next instance so views actually exist,
    // then reclaim half the store with the min-objective eviction.
    let outcome = run_analysis(
        &records
            .iter()
            .filter(|r| r.cluster.raw() == 0)
            .cloned()
            .collect::<Vec<_>>(),
        &AnalyzerConfig {
            policy: SelectionPolicy::TopKUtility { k: 5 },
            constraints: constraints.clone(),
            ..Default::default()
        },
    )?;
    service.metadata.load_annotations(&outcome.selected);
    workload.register_instance_data(0, 1, &service.storage, 1.0)?;
    service.run_sequence(&workload.jobs_for_instance(0, 1)?, RunMode::CloudViews)?;
    println!("\n=== storage reclamation ===");
    println!(
        "view store before: {} views, {:.2} MB",
        service.storage.num_views(),
        service.storage.total_view_bytes() as f64 / 1e6
    );
    let report = admin::reclaim_storage(&service, service.storage.total_view_bytes() / 2)?;
    println!(
        "reclaimed {} views / {:.2} MB; {:.2} MB remain",
        report.views_removed,
        report.bytes_reclaimed as f64 / 1e6,
        report.bytes_remaining as f64 / 1e6
    );
    Ok(())
}
