//! A week in the life of a recurring pipeline.
//!
//! Simulates seven daily recurring instances of one cluster:
//!
//! * day 0 runs baseline and is analyzed;
//! * days 1..6 run with CloudViews enabled, applying the analyzer's job
//!   coordination hints (view-building jobs first, Section 6.5);
//! * views expire via input lineage and are purged by the storage manager;
//! * on day 4 the workload *changes* (new script parameters) — stale
//!   annotations stop matching and materialization stops automatically,
//!   exactly the behaviour Section 6.2 describes.
//!
//! Run with: `cargo run --release --example recurring_pipeline`

use std::sync::Arc;

use cloudviews::analyzer::{coordination, AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::reporting;
use cloudviews::{CloudViews, RunMode};
use scope_common::time::SimDuration;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec {
            num_templates: 24,
            ..ClusterSpec::tiny("pipeline")
        }],
        seed,
        stream_rows: LogNormal::new(9.3, 0.6, 3_000.0, 25_000.0),
    })
    .expect("workload generation")
}

fn main() -> scope_common::Result<()> {
    let original = workload(21);
    let changed = workload(9_999); // the day-4 script rewrite
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();

    // Day 0: baseline + analysis.
    original.register_instance_data(0, 0, &service.storage, 1.0)?;
    let day0 = original.jobs_for_instance(0, 0)?;
    let base0 = service.run_sequence(&day0, RunMode::Baseline)?;
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 8 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.10,
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    })?;
    service.install_analysis(&analysis);
    println!(
        "day 0 (baseline): {} jobs, {} views selected, {} order hints",
        day0.len(),
        analysis.selected.len(),
        analysis.order_hints.len()
    );
    let base_cpu: SimDuration = base0.iter().map(|r| r.cpu_time).sum();

    println!("\nday\tjobs\tcpu_s\tvs_day0%\tbuilt\treused\tstored_MB\tpurged");
    for day in 1..7u64 {
        let w = if day >= 4 { &changed } else { &original };
        w.register_instance_data(0, day, &service.storage, 1.0)?;
        let jobs = w.jobs_for_instance(0, day)?;
        // Apply the coordination hints: view builders run first.
        let ordered = coordination::apply_order(jobs, &analysis.order_hints, |j| j.template);
        let reports = service.run_sequence(&ordered, RunMode::CloudViews)?;
        let built: usize = reports.iter().map(|r| r.views_built.len()).sum();
        let reused: usize = reports.iter().map(|r| r.views_reused.len()).sum();
        let cpu: SimDuration = reports.iter().map(|r| r.cpu_time).sum();
        let stored_mb = service.storage.total_view_bytes() as f64 / 1e6;
        // A day of simulated time passes, then the nightly maintenance
        // purge reclaims everything past its lineage-derived expiry.
        service.clock.advance(SimDuration::from_secs(86_400));
        let purged = service.purge_expired().views_purged;
        println!(
            "{day}\t{}\t{:.2}\t{:+.1}\t{built}\t{reused}\t{stored_mb:.2}\t{purged}",
            reports.len(),
            cpu.as_secs_f64(),
            reporting::pct_change(base_cpu, cpu),
        );
        if day == 3 {
            println!("--- day 4: workload changes; stale annotations must stop matching ---");
        }
    }

    println!(
        "\nmetadata service: {:?}\nanalysis wall time: {:?}",
        service.metadata.stats(),
        analysis.wall_time
    );
    println!(
        "note: after the day-4 script change, old annotations stop matching and\n\
         view building drops to (near) zero; day 4-6 rows compare a different\n\
         workload against day 0, so their percentage column is not comparable."
    );
    Ok(())
}
