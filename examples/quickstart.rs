//! Quickstart: the complete CloudViews loop in one file.
//!
//! 1. Build a tiny recurring workload (jobs that share computation).
//! 2. Run one recurring instance with CloudViews *disabled* — this fills
//!    the workload repository with reconciled runtime statistics.
//! 3. Run the analyzer: mine overlaps, select views, mine physical
//!    designs and expiries.
//! 4. Run the *next* recurring instance (new data, new input GUIDs) twice:
//!    baseline vs CloudViews-enabled, and compare.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::reporting;
use cloudviews::{CloudViews, RunMode};
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn main() -> scope_common::Result<()> {
    // A small cluster: 4 VCs, 12 recurring templates, heavy script cloning.
    let workload = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("demo")],
        seed: 7,
        stream_rows: LogNormal::new(10.0, 0.6, 8_000.0, 60_000.0),
    })?;
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();

    // --- Day 0: baseline runs fill the workload repository. ---------------
    workload.register_instance_data(0, 0, &service.storage, 1.0)?;
    let day0 = workload.jobs_for_instance(0, 0)?;
    println!(
        "day 0: running {} jobs with CloudViews disabled...",
        day0.len()
    );
    service.run_sequence(&day0, RunMode::Baseline)?;

    // --- The CloudViews analyzer (periodic, offline). ---------------------
    // Production-style constraints (paper Section 7.1): a view must cost a
    // meaningful share of its job, and we pick at most one view per job —
    // otherwise the per-job materialization budget gets spent on worthless
    // nested scan-level subgraphs.
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.10,
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    })?;
    println!(
        "\nanalyzer: {} jobs analyzed, {} overlapping computations mined, {} views selected ({:?})",
        analysis.jobs_analyzed,
        analysis.groups.len(),
        analysis.selected.len(),
        analysis.wall_time,
    );
    println!("\ntop overlapping computations:");
    print!("{}", reporting::top_overlaps(&analysis.groups, 5));
    service.install_analysis(&analysis);

    // --- Day 1: new data, new GUIDs; baseline vs CloudViews. --------------
    workload.register_instance_data(0, 1, &service.storage, 1.0)?;
    let day1 = workload.jobs_for_instance(0, 1)?;
    let baseline = service.run_sequence(&day1, RunMode::Baseline)?;
    let enabled = service.run_sequence(&day1, RunMode::CloudViews)?;

    // Outputs must be bit-identical (requirement 3: correctness).
    for (b, e) in baseline.iter().zip(&enabled) {
        assert_eq!(
            b.output_checksums, e.output_checksums,
            "corruption in {}",
            b.job
        );
    }
    println!("\nday 1 impact (baseline vs CloudViews):");
    print!("{}", reporting::impact_report(&baseline, &enabled));

    let (avg_lat, tot_lat) = reporting::improvement_stats(&baseline, &enabled, |r| r.latency);
    let (avg_cpu, tot_cpu) = reporting::improvement_stats(&baseline, &enabled, |r| r.cpu_time);
    println!("\nlatency improvement: avg {avg_lat:+.1}%, overall {tot_lat:+.1}%");
    println!("cpu-time improvement: avg {avg_cpu:+.1}%, overall {tot_cpu:+.1}%");
    println!(
        "views: {} materialized, {} stored bytes; outputs verified identical ✓",
        service.storage.num_views(),
        service.storage.total_view_bytes(),
    );
    Ok(())
}
