//! The observability layer end to end (DESIGN.md §8).
//!
//! Runs a small recurring workload through the service — baseline day,
//! analysis, an enabled day with twelve concurrent submissions, one
//! scripted fault — then walks everything the telemetry layer captured:
//!
//! * per-job span trees (simulated phase intervals + real wall time);
//! * the metric catalog (counters, gauges, log-scale histograms);
//! * the operator dashboard (`admin::telemetry_dashboard`);
//! * the machine exports: Prometheus text and JSON (both hand-rolled —
//!   the workspace has no serde).
//!
//! ```bash
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{admin, CloudViews, FaultPlan, FaultSite, RunMode, ScriptedFault};
use scope_common::telemetry::MetricsSnapshot;
use scope_common::Result;
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn main() -> Result<()> {
    let workload = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("obs")],
        seed: 42,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })?;

    // Telemetry is on by default; `.telemetry(Telemetry::disabled())` is
    // the zero-overhead opt-out the benches use.
    let mut service = CloudViews::builder(Arc::new(StorageManager::new())).build();

    println!("=== day 0: baseline fills the workload repository ===");
    workload.register_instance_data(0, 0, &service.storage, 1.0)?;
    let day0 = workload.jobs_for_instance(0, 0)?;
    service.run_sequence(&day0, RunMode::Baseline)?;
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    })?;
    service.install_analysis(&analysis);
    println!(
        "analyzer: {} jobs -> {} candidate overlaps -> {} views selected",
        analysis.jobs_analyzed,
        analysis.groups.len(),
        analysis.selected.len()
    );

    // One scripted fault so the degradation series light up: the first
    // lookup of the instance's first job times out (the retry succeeds).
    workload.register_instance_data(0, 1, &service.storage, 1.0)?;
    let day1: Vec<JobSpec> = workload.jobs_for_instance(0, 1)?;
    service.install_fault_plan(FaultPlan {
        scripted: vec![ScriptedFault {
            site: FaultSite::MetadataLookup,
            job: Some(day1[0].id),
            call_index: 0,
        }],
        ..Default::default()
    });

    println!("\n=== day 1: {} jobs, CloudViews on ===", day1.len());
    service.telemetry.tracer.clear();
    // First half arrives all at once (view availability is pinned at each
    // job's submission time, so this half builds and fights over locks);
    // the second half arrives back-to-back and reaps the reuse hits.
    let (burst, rest) = day1.split_at(day1.len() / 2);
    let mut reports = service.run_concurrent(burst.to_vec(), RunMode::CloudViews)?;
    reports.extend(service.run_sequence(rest, RunMode::CloudViews)?);
    println!(
        "reuse hits: {} / {} jobs, {} views built",
        reports
            .iter()
            .filter(|r| !r.views_reused.is_empty())
            .count(),
        reports.len(),
        reports.iter().map(|r| r.views_built.len()).sum::<usize>()
    );

    // --- span trees -------------------------------------------------------
    let sample_job = reports
        .iter()
        .find(|r| !r.views_reused.is_empty())
        .map(|r| r.job)
        .unwrap_or(reports[0].job);
    println!("\n=== span tree of job {sample_job} ===");
    let spans = service.telemetry.tracer.spans_for_job(sample_job);
    for span in &spans {
        let indent = if span.parent.is_some() { "  " } else { "" };
        println!(
            "{indent}{:<16} [{:>9} us .. {:>9} us] wall={} us{}",
            span.name,
            span.sim_start.micros(),
            span.sim_end.micros(),
            span.wall_micros,
            span.outcome
                .map(|o| format!("  outcome={o}"))
                .unwrap_or_default(),
        );
    }

    // --- metric catalog ---------------------------------------------------
    let snap: MetricsSnapshot = service.telemetry.metrics.snapshot();
    println!(
        "\n=== metric catalog: {} counters, {} gauges, {} histograms ===",
        snap.counters.len(),
        snap.gauges.len(),
        snap.histograms.len()
    );
    let latency = snap.histogram("cv_job_latency_sim_micros").unwrap();
    println!(
        "job latency: n={} mean={:.0} us p50<={} us p99<={} us",
        latency.count,
        latency.mean(),
        latency.quantile_upper_bound(0.50),
        latency.quantile_upper_bound(0.99),
    );

    // --- operator dashboard ----------------------------------------------
    println!("\n=== admin::telemetry_dashboard ===");
    let dashboard = admin::telemetry_dashboard(&service);
    // The dashboard ends with the full Prometheus exposition; print the
    // human summary here and the exposition in the next section.
    for line in dashboard.lines().take_while(|l| !l.starts_with('#')) {
        println!("{line}");
    }

    // --- machine exports --------------------------------------------------
    println!("=== Prometheus exposition (cv_jobs_* series) ===");
    for line in service
        .telemetry
        .metrics
        .prometheus_text()
        .lines()
        .filter(|l| l.contains("cv_jobs_"))
    {
        println!("{line}");
    }

    let encoded = snap.to_json();
    let decoded = MetricsSnapshot::from_json(&encoded).expect("own export parses");
    println!(
        "\nJSON snapshot: {} bytes, round-trips losslessly: {}",
        encoded.len(),
        decoded == snap
    );
    println!(
        "span export: {} spans, {} bytes of JSON",
        service.telemetry.tracer.finished().len(),
        service.telemetry.tracer.json().len()
    );
    Ok(())
}
