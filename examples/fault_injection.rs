//! Fault injection: graceful degradation under a chaos plan.
//!
//! 1. Prime a service exactly like the quickstart (day 0 baseline +
//!    analyzer + install).
//! 2. Install a deterministic [`FaultPlan`] that fails metadata calls,
//!    crashes builders, loses/corrupts view files, and delays publication.
//! 3. Run day 1 twice under CloudViews and verify every job's outputs stay
//!    row-multiset-identical to the fault-free baseline.
//! 4. Print the admin fault dashboard.
//!
//! Run with: `cargo run --example fault_injection [fault_probability]`
//! (default 0.25; `1.0` makes every injectable call fail).

use std::sync::Arc;

use cloudviews::admin;
use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{CloudViews, FaultPlan, RunMode};
use scope_common::time::SimDuration;
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn main() -> scope_common::Result<()> {
    let p: f64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("fault_probability must be a float"))
        .unwrap_or(0.25);
    assert!(
        (0.0..=1.0).contains(&p),
        "fault_probability must be in [0, 1]"
    );

    let workload = RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("chaos")],
        seed: 7,
        stream_rows: LogNormal::new(10.0, 0.6, 8_000.0, 60_000.0),
    })?;
    let mut service = CloudViews::builder(Arc::new(StorageManager::new())).build();

    // Prime: day 0 baseline fills the repository, then analyze + install.
    workload.register_instance_data(0, 0, &service.storage, 1.0)?;
    service.run_sequence(&workload.jobs_for_instance(0, 0)?, RunMode::Baseline)?;
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.10,
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    })?;
    service.install_analysis(&analysis);

    // Fault-free ground truth for day 1.
    workload.register_instance_data(0, 1, &service.storage, 1.0)?;
    let day1 = workload.jobs_for_instance(0, 1)?;
    let baseline = service.run_sequence(&day1, RunMode::Baseline)?;

    // Chaos: every fault mode at rate `p` (builder crashes kept below the
    // restart budget's certainty threshold).
    service.degradation.max_restarts = 12;
    service.install_fault_plan(FaultPlan {
        seed: 2024,
        lookup_fail: p,
        propose_fail: p,
        report_fail: p,
        builder_crash: p.min(0.5),
        view_loss: p,
        view_corruption: p,
        publish_delay: if p > 0.0 {
            SimDuration::from_secs_f64(2.0)
        } else {
            SimDuration::ZERO
        },
        scripted: Vec::new(),
    });
    println!("chaos plan installed: every fault mode at p={p} (seed 2024)\n");

    let mut reports = Vec::new();
    for wave in 0..2 {
        let r = service.run_sequence(&day1, RunMode::CloudViews)?;
        for (b, e) in baseline.iter().zip(&r) {
            assert_eq!(
                b.output_checksums, e.output_checksums,
                "job {} diverged from baseline under faults",
                b.job
            );
        }
        println!(
            "wave {wave}: {} jobs completed, outputs identical to fault-free baseline ✓",
            r.len()
        );
        reports.extend(r);
    }

    println!("\n{}", admin::fault_dashboard(&service, &reports));
    Ok(())
}
