//! CloudViews over TPC-DS (paper Section 7.2).
//!
//! Runs all 99 TPC-DS queries once without CloudViews to fill the workload
//! repository, selects the top-10 overlapping computations (the paper's
//! deliberately conservative choice), then reruns the benchmark with
//! CloudViews enabled — using the analyzer's coordination hints to run one
//! view-building query before its reusers — and reports per-query runtime
//! improvements, Figure 13 style.
//!
//! Run with: `cargo run --release --example tpcds_reuse`

use std::sync::Arc;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::reporting;
use cloudviews::{CloudViews, RunMode};
use scope_common::time::SimDuration;
use scope_engine::storage::StorageManager;
use scope_workload::tpcds::TpcdsWorkload;

fn main() -> scope_common::Result<()> {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.5);
    let tpcds = TpcdsWorkload::new(scale, 1);
    let service = CloudViews::builder(Arc::new(StorageManager::new())).build();
    tpcds.register_data(&service.storage)?;
    let jobs = tpcds.all_jobs()?;
    println!(
        "TPC-DS at scale {scale}: running {} queries baseline...",
        jobs.len()
    );
    let baseline = service.run_sequence(&jobs, RunMode::Baseline)?;

    // Top-10 overlapping computations, as in the paper.
    let analysis = service.analyze(&AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 10 },
        constraints: SelectionConstraints {
            min_cost_ratio: 0.05,
            ..Default::default()
        },
        ..Default::default()
    })?;
    println!(
        "analyzer: {} overlapping computations, selected top-{}:",
        analysis.groups.len(),
        analysis.selected.len()
    );
    print!("{}", reporting::top_overlaps(&analysis.groups, 10));
    service.install_analysis(&analysis);

    // Rerun with CloudViews, builders first (coordination hints).
    let ordered = cloudviews::analyzer::coordination::apply_order(
        tpcds.all_jobs()?,
        &analysis.order_hints,
        |j| j.template,
    );
    let enabled_unordered = service.run_sequence(&ordered, RunMode::CloudViews)?;
    // Re-align reports to query order for the per-query table.
    let mut enabled: Vec<_> = enabled_unordered.into_iter().collect();
    enabled.sort_by_key(|r| r.job);

    println!("\nquery\timprovement%\treused\tbuilt");
    let mut improved = 0;
    let mut regressed = 0;
    for (b, e) in baseline.iter().zip(&enabled) {
        let delta = reporting::pct_change(b.latency, e.latency);
        if delta > 0.5 {
            improved += 1;
        } else if delta < -0.5 {
            regressed += 1;
        }
        // Correctness spot check.
        assert_eq!(
            b.output_checksums, e.output_checksums,
            "q{} corrupted",
            b.job
        );
        println!(
            "q{}\t{:+.1}\t{}\t{}",
            b.job.raw(),
            delta,
            e.views_reused.len(),
            e.views_built.len()
        );
    }
    let (avg, total) = reporting::improvement_stats(&baseline, &enabled, |r| r.latency);
    let base_total: SimDuration = baseline.iter().map(|r| r.latency).sum();
    let cv_total: SimDuration = enabled.iter().map(|r| r.latency).sum();
    println!(
        "\n{improved} of 99 queries improved, {regressed} regressed; \
         average improvement {avg:+.1}%, total workload improvement {total:+.1}% \
         ({:.1}s -> {:.1}s)",
        base_total.as_secs_f64(),
        cv_total.as_secs_f64()
    );
    println!("(paper: 79 of 99 improved, average 12.5%, total 17%)");
    Ok(())
}
