//! Subgraph enumeration and job tagging.
//!
//! The CloudViews analyzer "enumerat\[es\] all possible subgraphs of all jobs
//! seen within a time window" (paper Section 5.1). In a tree/DAG plan, every
//! node is the root of exactly one subgraph, so enumeration is a walk over
//! nodes, emitting a [`SubgraphInfo`] record carrying both signatures plus
//! the structural features the selection heuristics use.
//!
//! [`job_tags`] extracts the normalized tags the metadata service's inverted
//! index is built on (Section 6.1): the normalized names of the job's inputs
//! and outputs. A job's compile-time lookup sends its tags once and receives
//! every normalized signature relevant to any of them.
//!
//! Tags are interned [`Symbol`]s and delivered properties are pooled behind
//! `Arc`s, so the records a recurring workload emits over and over share
//! allocations instead of cloning strings and property structs per node.

use std::collections::HashSet;
use std::sync::Arc;

use scope_common::hash::Sig128;
use scope_common::ids::NodeId;
use scope_common::intern::Symbol;
use scope_common::Result;
use scope_plan::op::normalize_stream_symbol;
use scope_plan::{shared_props, OpKind, Operator, PhysicalProps, QueryGraph};

use crate::signature::{sign_graph, SignedGraph};

/// One enumerated subgraph: the analyzer's unit of candidate selection.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SubgraphInfo {
    /// Root node of the subgraph within its job's plan.
    pub root: NodeId,
    /// Precise signature (matches within a recurring instance).
    pub precise: Sig128,
    /// Normalized signature (matches across recurring instances).
    pub normalized: Sig128,
    /// Root operator kind (Figure 4a breakdown).
    pub root_kind: OpKind,
    /// Number of nodes in the subgraph.
    pub num_nodes: usize,
    /// Normalized names of the input streams feeding this subgraph.
    pub input_tags: Vec<Symbol>,
    /// Output physical properties delivered at the subgraph root, mined for
    /// view physical design (Section 5.3). Guarantees propagate bottom-up
    /// through position-preserving operators and are remapped (or dropped)
    /// across width-changing ones — the paper's "traverse down until we hit
    /// one or more physical properties", done soundly. Shared via the
    /// global [`shared_props`] pool.
    pub props: Arc<PhysicalProps>,
    /// True when the subgraph contains user code (affects costing trust).
    pub has_user_code: bool,
}

/// Enumerates every subgraph of `graph`, one record per node.
///
/// Records are emitted in bottom-up topological order. `Output` sinks are
/// included (the paper's "reusing existing outputs" lesson needs them);
/// callers filter by kind when appropriate.
pub fn enumerate_subgraphs(graph: &QueryGraph) -> Result<Vec<SubgraphInfo>> {
    let signed: SignedGraph = sign_graph(graph)?;
    enumerate_with_signed(graph, &signed)
}

/// [`enumerate_subgraphs`] when the signatures are already computed — the
/// template cache's miss path signs once and enumerates with the result.
pub fn enumerate_with_signed(
    graph: &QueryGraph,
    signed: &SignedGraph,
) -> Result<Vec<SubgraphInfo>> {
    let mut infos: Vec<SubgraphInfo> = Vec::with_capacity(graph.len());
    // Per-node accumulators, reusing children's results (DAG-aware).
    let mut tags: Vec<Vec<Symbol>> = Vec::with_capacity(graph.len());
    let mut user_code: Vec<bool> = Vec::with_capacity(graph.len());
    let mut props: Vec<Arc<PhysicalProps>> = Vec::with_capacity(graph.len());
    // Scratch set for O(1) duplicate checks while merging child tag lists
    // (symbols hash as integers); cleared per node.
    let mut seen: HashSet<Symbol> = HashSet::new();

    for node in graph.nodes() {
        let idx = node.id.index();
        debug_assert_eq!(idx, tags.len());

        // num_nodes: exact via subgraph walk (cheap for our plan sizes, and
        // exact in the presence of shared spools where child sums overcount).
        let num_nodes = graph.subgraph_nodes(node.id)?.len();

        seen.clear();
        let mut my_tags: Vec<Symbol> = Vec::new();
        let mut my_user = false;
        match &node.op {
            Operator::Get {
                template_name,
                extractor,
                ..
            } => {
                let tag = normalize_stream_symbol(*template_name);
                if seen.insert(tag) {
                    my_tags.push(tag);
                }
                my_user |= extractor.is_some();
            }
            Operator::Process { .. }
            | Operator::Reduce { .. }
            | Operator::GbApply { .. }
            | Operator::Combine { .. } => my_user = true,
            _ => {}
        }
        for &c in &node.children {
            for &t in &tags[c.index()] {
                if seen.insert(t) {
                    my_tags.push(t);
                }
            }
            my_user |= user_code[c.index()];
        }

        // Delivered physical properties. `delivered_props` already walks
        // guarantees through position-preserving operators (the paper's
        // "traverse down until we hit one or more physical properties")
        // and remaps or drops them across width-changing ones, so no extra
        // inheritance is needed — or sound — here.
        let child_props: Vec<PhysicalProps> = node
            .children
            .iter()
            .map(|c| (*props[c.index()]).clone())
            .collect();
        let delivered = shared_props(node.op.delivered_props(&child_props));

        infos.push(SubgraphInfo {
            root: node.id,
            precise: signed.of(node.id).precise,
            normalized: signed.of(node.id).normalized,
            root_kind: node.op.kind(),
            num_nodes,
            input_tags: my_tags.clone(),
            props: Arc::clone(&delivered),
            has_user_code: my_user,
        });
        tags.push(my_tags);
        user_code.push(my_user);
        props.push(delivered);
    }
    Ok(infos)
}

/// The normalized tags identifying a job for the metadata-service inverted
/// index: normalized input stream names plus normalized output names.
pub fn job_tags(graph: &QueryGraph) -> Vec<Symbol> {
    let mut seen: HashSet<Symbol> = HashSet::new();
    let mut tags: Vec<Symbol> = Vec::new();
    for node in graph.nodes() {
        let tag = match &node.op {
            Operator::Get { template_name, .. } => Some(normalize_stream_symbol(*template_name)),
            Operator::Output { name, .. } => Some(normalize_stream_symbol(*name)),
            _ => None,
        };
        if let Some(t) = tag {
            if seen.insert(t) {
                tags.push(t);
            }
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, Partitioning, PlanBuilder, Schema, Udo, UdoKind};

    fn schema() -> Schema {
        Schema::from_pairs(&[("user", DataType::Int), ("text", DataType::Str)])
    }

    fn pipeline_graph() -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(3), "clicks/2017-11-08/log.ss", schema());
        let f = b.filter(s, Expr::col(0).gt(Expr::lit(10i64)));
        let ex = b.exchange(
            f,
            Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        );
        let a = b.aggregate(ex, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
        b.output(a, "out/2017-11-08/res.ss").build().unwrap()
    }

    #[test]
    fn one_record_per_node() {
        let g = pipeline_graph();
        let infos = enumerate_subgraphs(&g).unwrap();
        assert_eq!(infos.len(), g.len());
        // Bottom-up: first record is the scan.
        assert_eq!(infos[0].root_kind, OpKind::TableScan);
        assert_eq!(infos[0].num_nodes, 1);
        // Last record is the output and spans the whole job.
        assert_eq!(infos.last().unwrap().root_kind, OpKind::Output);
        assert_eq!(infos.last().unwrap().num_nodes, g.len());
    }

    #[test]
    fn input_tags_are_normalized_and_propagate() {
        let g = pipeline_graph();
        let infos = enumerate_subgraphs(&g).unwrap();
        for info in &infos {
            assert_eq!(
                info.input_tags,
                vec![Symbol::intern("clicks/<date>/log.ss")]
            );
        }
    }

    #[test]
    fn job_tags_include_inputs_and_outputs() {
        let g = pipeline_graph();
        let tags = job_tags(&g);
        assert!(tags.contains(&Symbol::intern("clicks/<date>/log.ss")));
        assert!(tags.contains(&Symbol::intern("out/<date>/res.ss")));
        assert_eq!(tags.len(), 2);
    }

    #[test]
    fn props_mined_at_exchange_and_inherited_above() {
        let g = pipeline_graph();
        let infos = enumerate_subgraphs(&g).unwrap();
        // Node 2 is the exchange: delivers hash[0]x8.
        let ex = &infos[2];
        assert_eq!(ex.root_kind, OpKind::Exchange);
        assert_eq!(ex.props.partitioning.parts(), Some(8));
        // The aggregate above delivers its input's distribution.
        let agg = &infos[3];
        assert_eq!(agg.props.partitioning.parts(), Some(8));
        // The filter below the exchange has no explicit props and no
        // property-delivering descendant -> Any.
        assert_eq!(*infos[1].props, PhysicalProps::any());
    }

    #[test]
    fn identical_props_share_one_allocation() {
        let g = pipeline_graph();
        let infos = enumerate_subgraphs(&g).unwrap();
        // Exchange and the aggregate above it deliver the same shape — the
        // pool must hand back the same Arc, not two equal copies.
        assert!(Arc::ptr_eq(&infos[2].props, &infos[3].props));
    }

    #[test]
    fn user_code_flag_propagates() {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema());
        let p = b.process(s, Udo::new(UdoKind::Tokenize { col: 1 }, "Lib", "1.0"));
        let f = b.filter(p, Expr::col(0).gt(Expr::lit(0i64)));
        let g = b.output(f, "o").build().unwrap();
        let infos = enumerate_subgraphs(&g).unwrap();
        assert!(!infos[0].has_user_code); // scan
        assert!(infos[1].has_user_code); // process
        assert!(infos[2].has_user_code); // filter above process
        assert!(infos[3].has_user_code); // output
    }

    #[test]
    fn shared_spool_counts_nodes_once() {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema());
        let sp = b.spool(s);
        let f1 = b.filter(sp, Expr::col(0).gt(Expr::lit(0i64)));
        let f2 = b.filter(sp, Expr::col(0).lt(Expr::lit(0i64)));
        let u = b.union_all(vec![f1, f2]);
        let g = b.output(u, "o").build().unwrap();
        let infos = enumerate_subgraphs(&g).unwrap();
        let union_info = &infos[4];
        assert_eq!(union_info.root_kind, OpKind::UnionAll);
        // scan + spool + 2 filters + union = 5, not 6 (scan counted once).
        assert_eq!(union_info.num_nodes, 5);
    }

    #[test]
    fn multi_input_tags_dedup() {
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "a/x.ss", schema());
        let r = b.table_scan(DatasetId::new(2), "a/x.ss", schema()); // same template
        let j = b.join(l, r, scope_plan::JoinKind::Inner, vec![0], vec![0]);
        let g = b.output(j, "o").build().unwrap();
        let infos = enumerate_subgraphs(&g).unwrap();
        assert_eq!(infos[2].input_tags.len(), 1);
    }
}
