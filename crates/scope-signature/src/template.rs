//! The template cache: recurrence-aware compilation of plan signatures.
//!
//! The paper's workloads are dominated by recurring jobs — the same script
//! shape resubmitted daily/hourly with only deltas (input GUIDs, dates,
//! parameters; Section 3). Yet signing and enumerating a plan from scratch
//! costs the same whether the template was seen a second ago or never:
//! a subgraph walk per node for `num_nodes`, tag-vector merges, and
//! delivered-property derivation. GEqO makes the same observation at cloud
//! scale: the reuse machinery itself must be cheap relative to the jobs.
//!
//! [`TemplateCache::compile`] keys a compiled **skeleton** by the plan's
//! full normalized signature vector. A recurring instance hits the cache
//! and re-derives only what actually differs per instance — the precise
//! Merkle pass — while the structural features (node counts, normalized
//! input tags, delivered properties, user-code flags, job tags) are copied
//! from the skeleton as interned symbols and shared `Arc`s. The normalized
//! pass is computed either way: it *is* the cache key.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use scope_common::hash::{Sig128, SipHasher24};
use scope_common::ids::NodeId;
use scope_common::intern::Symbol;
use scope_common::Result;
use scope_plan::expr::HashMode;
use scope_plan::{OpKind, PhysicalProps, QueryGraph};

use crate::enumerate::{enumerate_with_signed, job_tags, SubgraphInfo};
use crate::signature::{signature_pass, SignedGraph};

// Domain-separation keys for template-cache keys (distinct from both
// signature domains).
const TEMPLATE_K0: u64 = 0x7465_6d70_6c61_7465; // "template"
const TEMPLATE_K1: u64 = 0x7465_6d70_6c6b_6579; // "templkey"

/// Everything the compile path derives from one plan: both signature
/// passes, the enumerated subgraph records, and the job's inverted-index
/// tags.
#[derive(Clone, Debug)]
pub struct CompiledJob {
    /// Per-node precise + normalized signatures.
    pub signed: SignedGraph,
    /// One enumerated record per node, bottom-up.
    pub infos: Vec<SubgraphInfo>,
    /// Normalized input/output tags for the metadata-service lookup.
    pub tags: Vec<Symbol>,
    /// Whether the structural features came from a cached skeleton.
    pub template_hit: bool,
}

/// The instance-invariant part of a compiled plan, cached per template.
#[derive(Debug)]
struct Skeleton {
    nodes: Vec<SkeletonNode>,
    job_tags: Vec<Symbol>,
}

#[derive(Debug)]
struct SkeletonNode {
    root_kind: OpKind,
    num_nodes: usize,
    input_tags: Vec<Symbol>,
    props: Arc<PhysicalProps>,
    has_user_code: bool,
}

impl Skeleton {
    fn from_compiled(infos: &[SubgraphInfo], job_tags: &[Symbol]) -> Skeleton {
        Skeleton {
            nodes: infos
                .iter()
                .map(|i| SkeletonNode {
                    root_kind: i.root_kind,
                    num_nodes: i.num_nodes,
                    input_tags: i.input_tags.clone(),
                    props: Arc::clone(&i.props),
                    has_user_code: i.has_user_code,
                })
                .collect(),
            job_tags: job_tags.to_vec(),
        }
    }

    /// Rebuilds per-node records for a new instance: structural features
    /// from the skeleton, signatures from the instance's own passes.
    fn instantiate(&self, signed: &SignedGraph) -> Vec<SubgraphInfo> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(idx, n)| {
                let id = NodeId::new(idx as u64);
                let sigs = signed.of(id);
                SubgraphInfo {
                    root: id,
                    precise: sigs.precise,
                    normalized: sigs.normalized,
                    root_kind: n.root_kind,
                    num_nodes: n.num_nodes,
                    input_tags: n.input_tags.clone(),
                    props: Arc::clone(&n.props),
                    has_user_code: n.has_user_code,
                }
            })
            .collect()
    }
}

/// Hit/miss counters and current size of a [`TemplateCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemplateCacheStats {
    /// Compiles served from a cached skeleton.
    pub hits: u64,
    /// Compiles that enumerated from scratch (and populated the cache).
    pub misses: u64,
    /// Distinct templates currently cached.
    pub entries: usize,
}

/// A concurrent cache of compiled plan skeletons keyed by normalized
/// signature. See the module docs for the recurrence argument.
///
/// The key is a keyed hash over the plan's **entire** normalized signature
/// vector plus its root ids — not just the root signature — so it also pins
/// the arena ordering of nodes; two plans with the same key are structurally
/// interchangeable node-for-node.
#[derive(Default)]
pub struct TemplateCache {
    templates: RwLock<HashMap<Sig128, Arc<Skeleton>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TemplateCache {
    /// An empty cache.
    pub fn new() -> TemplateCache {
        TemplateCache::default()
    }

    /// Compiles `graph`: signs both modes, and either instantiates the
    /// cached skeleton for its template (hit) or enumerates from scratch
    /// and caches the result (miss).
    pub fn compile(&self, graph: &QueryGraph) -> Result<CompiledJob> {
        let normalized = signature_pass(graph, HashMode::Normalized);
        let key = template_key(&normalized, graph.roots());
        let precise = signature_pass(graph, HashMode::Precise);
        let signed = SignedGraph::from_passes(precise, normalized);

        let cached = self
            .templates
            .read()
            .expect("template cache poisoned")
            .get(&key)
            .cloned();
        if let Some(skeleton) = cached {
            if skeleton.nodes.len() == graph.len() {
                self.hits.fetch_add(1, Ordering::Relaxed);
                let infos = skeleton.instantiate(&signed);
                return Ok(CompiledJob {
                    signed,
                    infos,
                    tags: skeleton.job_tags.clone(),
                    template_hit: true,
                });
            }
        }

        self.misses.fetch_add(1, Ordering::Relaxed);
        let infos = enumerate_with_signed(graph, &signed)?;
        let tags = job_tags(graph);
        let skeleton = Arc::new(Skeleton::from_compiled(&infos, &tags));
        self.templates
            .write()
            .expect("template cache poisoned")
            .insert(key, skeleton);
        Ok(CompiledJob {
            signed,
            infos,
            tags,
            template_hit: false,
        })
    }

    /// Current counters and size.
    pub fn stats(&self) -> TemplateCacheStats {
        TemplateCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .templates
                .read()
                .expect("template cache poisoned")
                .len(),
        }
    }

    /// Drops all cached skeletons and resets counters (tests, admin).
    pub fn clear(&self) {
        self.templates
            .write()
            .expect("template cache poisoned")
            .clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

fn template_key(normalized: &[Sig128], roots: &[NodeId]) -> Sig128 {
    let mut hi = SipHasher24::new_with_keys(TEMPLATE_K0, TEMPLATE_K1);
    let mut lo = SipHasher24::new_with_keys(!TEMPLATE_K0, !TEMPLATE_K1);
    for h in [&mut hi, &mut lo] {
        h.write_u64(normalized.len() as u64);
    }
    for sig in normalized {
        for h in [&mut hi, &mut lo] {
            h.write_u64(sig.hi);
            h.write_u64(sig.lo);
        }
    }
    for h in [&mut hi, &mut lo] {
        h.write_u64(roots.len() as u64);
    }
    for r in roots {
        for h in [&mut hi, &mut lo] {
            h.write_u64(r.raw());
        }
    }
    Sig128::new(hi.finish(), lo.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_subgraphs;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[("user", DataType::Int), ("lat", DataType::Float)])
    }

    /// One recurring instance: scan GUID, date param, dated output name.
    fn instance(guid: u64, date: i32) -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(
            DatasetId::new(guid),
            format!("clicks/2017-11-{date:02}/log.ss"),
            schema(),
        );
        let f = b.filter(
            s,
            Expr::col(0).ge(Expr::param("@@startDate", scope_plan::Value::Date(date))),
        );
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        b.output(a, format!("out/2017-11-{date:02}/x.ss"))
            .build()
            .unwrap()
    }

    #[test]
    fn recurring_instance_hits_and_matches_cold_compile() {
        let cache = TemplateCache::new();
        let day1 = cache.compile(&instance(1, 8)).unwrap();
        assert!(!day1.template_hit);

        let g2 = instance(2, 9);
        let day2 = cache.compile(&g2).unwrap();
        assert!(day2.template_hit);

        // The hit path must produce exactly what a cold compile would.
        let cold_infos = enumerate_subgraphs(&g2).unwrap();
        assert_eq!(day2.infos, cold_infos);
        assert_eq!(day2.tags, job_tags(&g2));
        let cold_signed = crate::signature::sign_graph(&g2).unwrap();
        assert_eq!(day2.signed.all(), cold_signed.all());

        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_template_misses() {
        let cache = TemplateCache::new();
        cache.compile(&instance(1, 8)).unwrap();
        // Different shape: no aggregate.
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "clicks/2017-11-08/log.ss", schema());
        let f = b.filter(s, Expr::col(0).gt(Expr::lit(1i64)));
        let g = b.output(f, "out/2017-11-08/x.ss").build().unwrap();
        let c = cache.compile(&g).unwrap();
        assert!(!c.template_hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn precise_signatures_still_distinguish_instances() {
        let cache = TemplateCache::new();
        let day1 = cache.compile(&instance(1, 8)).unwrap();
        let day2 = cache.compile(&instance(2, 9)).unwrap();
        let root = day1.infos.last().unwrap().root;
        assert_ne!(day1.signed.of(root).precise, day2.signed.of(root).precise);
        assert_eq!(
            day1.signed.of(root).normalized,
            day2.signed.of(root).normalized
        );
    }

    #[test]
    fn clear_resets_everything() {
        let cache = TemplateCache::new();
        cache.compile(&instance(1, 8)).unwrap();
        cache.compile(&instance(2, 9)).unwrap();
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
        assert!(!cache.compile(&instance(3, 10)).unwrap().template_hit);
    }
}
