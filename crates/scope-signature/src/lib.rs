//! Plan-subgraph signatures — the heart of the paper's Section 3.
//!
//! CloudViews identifies overlapping computations by hashing plan subgraphs.
//! Two hashes are computed for every subgraph:
//!
//! * the **precise signature** identifies the computation *exactly*: it
//!   includes the concrete input GUIDs, all parameter values, and the
//!   identity+version of any user code and external libraries. Equal precise
//!   signatures ⇒ the computations produce identical results, so a
//!   materialized result of one can safely substitute for the other.
//! * the **normalized signature** strips the recurring deltas (input GUIDs,
//!   date/time predicate values, parameterized output names) so that the
//!   *same template computation* in yesterday's and today's job instance
//!   hashes identically.
//!
//! The normalized signature matches computations **across** recurring
//! instances (used to decide what to materialize); the precise signature
//! matches **within** an instance (used to decide what can reuse a given
//! materialized file, and when it must expire). See Figure 7 of the paper.
//!
//! [`sign_graph`] Merkle-hashes a whole [`QueryGraph`](scope_plan::QueryGraph) bottom-up, producing
//! both signatures for every node in one pass; [`enumerate_subgraphs`] turns
//! that into the per-subgraph candidate records the CloudViews analyzer
//! consumes.

pub mod enumerate;
pub mod signature;
pub mod subsume;
pub mod template;

pub use enumerate::{enumerate_subgraphs, enumerate_with_signed, job_tags, SubgraphInfo};
pub use signature::{sign_graph, NodeSignatures, SignedGraph};
pub use subsume::{
    rollup_safe_for_rows, Compensation, SubsumeDescriptor, SubsumeDetail, SubsumeKind,
};
pub use template::{CompiledJob, TemplateCache, TemplateCacheStats};
