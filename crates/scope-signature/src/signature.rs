//! Merkle hashing of plan DAGs into precise + normalized signatures.

use scope_common::hash::{Sig128, SipHasher24};
use scope_common::ids::NodeId;
use scope_common::Result;
use scope_plan::expr::HashMode;
use scope_plan::QueryGraph;

/// The two signatures of one plan node's subgraph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeSignatures {
    /// Exact identity (input GUIDs, parameter values, user-code versions).
    pub precise: Sig128,
    /// Template identity (recurring deltas stripped).
    pub normalized: Sig128,
}

/// A graph with per-node subgraph signatures, indexed by [`NodeId`].
#[derive(Clone, Debug)]
pub struct SignedGraph {
    sigs: Vec<NodeSignatures>,
}

impl SignedGraph {
    /// Signatures of the subgraph rooted at `id`.
    pub fn of(&self, id: NodeId) -> NodeSignatures {
        self.sigs[id.index()]
    }

    /// All signatures in node order.
    pub fn all(&self) -> &[NodeSignatures] {
        &self.sigs
    }

    /// Zips independently computed per-mode passes into one signed graph.
    pub(crate) fn from_passes(precise: Vec<Sig128>, normalized: Vec<Sig128>) -> SignedGraph {
        debug_assert_eq!(precise.len(), normalized.len());
        SignedGraph {
            sigs: precise
                .into_iter()
                .zip(normalized)
                .map(|(precise, normalized)| NodeSignatures {
                    precise,
                    normalized,
                })
                .collect(),
        }
    }
}

// Domain-separation keys for the two Merkle trees.
const PRECISE_K0: u64 = 0x7072_6563_6973_6531; // "precise1"
const PRECISE_K1: u64 = 0x7072_6563_6973_6532;
const NORM_K0: u64 = 0x6e6f_726d_616c_697a; // "normaliz"
const NORM_K1: u64 = 0x6e6f_726d_616c_7a32;

/// Computes precise and normalized signatures for every node of `graph`.
///
/// The signature of a node is a keyed hash of its operator content (hashed
/// in the corresponding [`HashMode`]) combined with its children's
/// signatures *in order* (join sides are not interchangeable). Because the
/// arena's insertion order is bottom-up, one linear pass suffices; shared
/// (spooled) children are hashed once and their signature reused, so the
/// cost is O(nodes), not O(paths).
pub fn sign_graph(graph: &QueryGraph) -> Result<SignedGraph> {
    let precise = signature_pass(graph, HashMode::Precise);
    let normalized = signature_pass(graph, HashMode::Normalized);
    Ok(SignedGraph::from_passes(precise, normalized))
}

/// One Merkle pass over `graph` in a single [`HashMode`], in node order.
///
/// The byte stream fed to the hashers is exactly the one [`sign_graph`]
/// feeds for that mode, so the resulting `Sig128`s are interchangeable with
/// the corresponding half of a [`SignedGraph`]. Split out so the template
/// cache can compute the (always-needed) normalized pass first, consult the
/// cache, and run the precise pass alone on a hit.
pub(crate) fn signature_pass(graph: &QueryGraph, mode: HashMode) -> Vec<Sig128> {
    let mut sigs: Vec<Sig128> = Vec::with_capacity(graph.len());
    for node in graph.nodes() {
        let sig = hash_node(graph, node.id, &sigs, mode);
        sigs.push(sig);
    }
    sigs
}

fn hash_node(graph: &QueryGraph, id: NodeId, done: &[Sig128], mode: HashMode) -> Sig128 {
    let (k0, k1, l0, l1) = match mode {
        HashMode::Precise => (PRECISE_K0, PRECISE_K1, !PRECISE_K0, !PRECISE_K1),
        HashMode::Normalized => (NORM_K0, NORM_K1, !NORM_K0, !NORM_K1),
    };
    let node = graph.node(id).expect("id produced by iteration");
    let mut hi = SipHasher24::new_with_keys(k0, k1);
    let mut lo = SipHasher24::new_with_keys(l0, l1);
    node.op.stable_hash_into(&mut hi, mode);
    node.op.stable_hash_into(&mut lo, mode);
    for h in [&mut hi, &mut lo] {
        h.write_u64(node.children.len() as u64);
    }
    for &c in &node.children {
        let pick = done[c.index()];
        for h in [&mut hi, &mut lo] {
            h.write_u64(pick.hi);
            h.write_u64(pick.lo);
        }
    }
    Sig128::new(hi.finish(), lo.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[("user", DataType::Int), ("lat", DataType::Float)])
    }

    /// Builds a small recurring job: scan -> filter(date param) -> agg -> out.
    fn job(guid: u64, date: i32, out_name: &str) -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(guid), "clicks/<date>/log.ss", schema());
        let f = b.filter(
            s,
            Expr::col(0).ge(Expr::param("@@startDate", scope_plan::Value::Date(date))),
        );
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        b.output(a, out_name).build().unwrap()
    }

    #[test]
    fn identical_graphs_identical_signatures() {
        let g1 = job(1, 100, "out/x.ss");
        let g2 = job(1, 100, "out/x.ss");
        let s1 = sign_graph(&g1).unwrap();
        let s2 = sign_graph(&g2).unwrap();
        for (a, b) in s1.all().iter().zip(s2.all()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn recurring_instance_matches_normalized_not_precise() {
        // New day: new GUID, new date parameter, dated output name.
        let today = job(1, 100, "out/2017-11-08/x.ss");
        let tomorrow = job(2, 101, "out/2017-11-09/x.ss");
        let s1 = sign_graph(&today).unwrap();
        let s2 = sign_graph(&tomorrow).unwrap();
        let root1 = today.roots()[0];
        let root2 = tomorrow.roots()[0];
        assert_ne!(s1.of(root1).precise, s2.of(root2).precise);
        assert_eq!(s1.of(root1).normalized, s2.of(root2).normalized);
        // Every interior node too.
        for (a, b) in s1.all().iter().zip(s2.all()) {
            assert_eq!(a.normalized, b.normalized);
        }
    }

    #[test]
    fn same_instance_same_precise() {
        // Two jobs in the SAME recurring instance (same GUID and params)
        // share precise signatures — that is what reuse matches on.
        let j1 = job(5, 200, "out/a.ss");
        let j2 = job(5, 200, "out/b.ss"); // different output name
        let s1 = sign_graph(&j1).unwrap();
        let s2 = sign_graph(&j2).unwrap();
        // The aggregate below the output is node 2 in both.
        let agg = NodeId::new(2);
        assert_eq!(s1.of(agg).precise, s2.of(agg).precise);
        // Roots (outputs) differ because names differ.
        assert_ne!(s1.of(j1.roots()[0]).precise, s2.of(j2.roots()[0]).precise);
    }

    #[test]
    fn operator_change_changes_both() {
        let g1 = job(1, 100, "o");
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "clicks/<date>/log.ss", schema());
        let f = b.filter(
            s,
            Expr::col(0).gt(Expr::param("@@startDate", scope_plan::Value::Date(100))), // gt not ge
        );
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        let g2 = b.output(a, "o").build().unwrap();
        let s1 = sign_graph(&g1).unwrap();
        let s2 = sign_graph(&g2).unwrap();
        let r1 = g1.roots()[0];
        let r2 = g2.roots()[0];
        assert_ne!(s1.of(r1).precise, s2.of(r2).precise);
        assert_ne!(s1.of(r1).normalized, s2.of(r2).normalized);
    }

    #[test]
    fn child_order_matters() {
        use scope_plan::JoinKind;
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", schema());
        let r = b.table_scan(DatasetId::new(2), "r", schema());
        let j = b.join(l, r, JoinKind::Inner, vec![0], vec![0]);
        let g1 = b.output(j, "o").build().unwrap();

        let mut b = PlanBuilder::new();
        let r = b.table_scan(DatasetId::new(2), "r", schema());
        let l = b.table_scan(DatasetId::new(1), "l", schema());
        let j = b.join(r, l, JoinKind::Inner, vec![0], vec![0]);
        let g2 = b.output(j, "o").build().unwrap();

        let s1 = sign_graph(&g1).unwrap();
        let s2 = sign_graph(&g2).unwrap();
        assert_ne!(s1.of(g1.roots()[0]).precise, s2.of(g2.roots()[0]).precise);
    }

    #[test]
    fn precise_and_normalized_never_collide_across_domains() {
        // A static plan (no recurring deltas) still gets DIFFERENT precise
        // and normalized signatures thanks to domain separation — the
        // metadata service stores them in separate keyspaces.
        let g = job(1, 100, "o");
        let s = sign_graph(&g).unwrap();
        for ns in s.all() {
            assert_ne!(ns.precise, ns.normalized);
        }
    }

    #[test]
    fn subgraph_signature_independent_of_context() {
        // The signature of the scan->filter prefix is the same whether or
        // not an aggregate sits above it (Merkle property) — this is what
        // lets signatures computed in one job match subgraphs of another.
        let with_agg = job(1, 100, "o");
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "clicks/<date>/log.ss", schema());
        let f = b.filter(
            s,
            Expr::col(0).ge(Expr::param("@@startDate", scope_plan::Value::Date(100))),
        );
        let without_agg = b.output(f, "other").build().unwrap();
        let s1 = sign_graph(&with_agg).unwrap();
        let s2 = sign_graph(&without_agg).unwrap();
        // filter is node 1 in both graphs
        assert_eq!(s1.of(NodeId::new(1)), s2.of(NodeId::new(1)));
    }
}
