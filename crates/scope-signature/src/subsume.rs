//! Tier-2 subsumption matching: semantic reuse beyond exact signatures.
//!
//! Exact signature matching (tier 1) only fires when a query subgraph's
//! precise hash equals a materialized view's. This module implements the
//! second tier of the matching cascade: a view can serve a query subgraph it
//! does not hash-equal when the two share an identical child computation and
//! the query's root is *subsumed* by the view's root —
//!
//! * **predicate containment**: a view filtered on `date >= X` serves any
//!   query filtering the same child on a tighter range (compensation: keep
//!   the query's own filter as the residual);
//! * **projection supersets**: a view projecting a superset of the query's
//!   output expressions serves the query (compensation: re-project the
//!   needed columns);
//! * **group-by rollups**: a view aggregated on a superset of the query's
//!   grouping keys serves the query (compensation: re-aggregate the view's
//!   partial results — `Sum` of partial sums/counts, `Min` of minima, …).
//!
//! Following GEqO's staged-cascade lesson, every candidate first passes a
//! cheap **feature vector** test ([`SubsumeDescriptor::quick_compat`]:
//! root-kind, child signature, column/key bitsets — a handful of integer
//! compares) so non-candidates are rejected without any plan inspection;
//! only survivors pay for the full [`SubsumeDescriptor::subsumes`] check.
//!
//! ## False-positive safety
//!
//! Every rule here is *sound for byte-identical results*, not just
//! set-equivalence:
//!
//! * equal child **precise** signatures ⇒ identical child computation,
//!   schema included (the precise hash pins input GUIDs, parameter values,
//!   user code, and the schema — see `signature.rs`);
//! * filter residuals re-apply the query's own predicate verbatim, so rows
//!   the abstraction cannot reason about (NULLs, ties) are re-decided by
//!   the real predicate;
//! * projection compensation only maps structurally-identical expressions
//!   (recurring-parameter *values* included — yesterday's `@@date` never
//!   matches today's);
//! * rollups exclude `Avg` and `CountDistinct` (not decomposable) and
//!   float `Sum` (re-grouping partial sums reorders float addition);
//!   integer sums wrap associatively, and `Min`/`Max`/`Count` are exact
//!   under re-grouping. The one remaining edge — a *global* rollup over an
//!   empty view produces one row where recompute would also produce one
//!   row, but `Count` would read `Sum(∅) = NULL` instead of `0` — is
//!   guarded by the caller via [`rollup_safe_for_rows`].

use scope_common::hash::Sig128;
use scope_common::ids::NodeId;
use scope_plan::interval::{column_intervals, implies, ColumnIntervals};
use scope_plan::{AggExpr, AggFunc, DataType, Expr, NamedExpr, Operator, QueryGraph, Schema};

/// Which subsumption rule a descriptor participates in (= its root
/// operator's kind).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubsumeKind {
    /// Root is a `Filter` with an interval-eligible predicate.
    Filter,
    /// Root is a `Project`.
    Project,
    /// Root is an `Aggregate`.
    Rollup,
}

/// Rule-specific payload of a descriptor.
#[derive(Clone, Debug, PartialEq)]
pub enum SubsumeDetail {
    /// Per-column intervals of the filter predicate.
    Filter {
        /// The interval abstraction of the (conjunctive) predicate.
        intervals: ColumnIntervals,
    },
    /// The projected output expressions.
    Project {
        /// The root's named output expressions.
        exprs: Vec<NamedExpr>,
    },
    /// Grouping keys and aggregate outputs.
    Rollup {
        /// Grouping column positions (in the shared child's schema).
        keys: Vec<usize>,
        /// Aggregate outputs.
        aggs: Vec<AggExpr>,
    },
}

/// A per-instance description of one unary subgraph root, usable either as
/// a **query probe** (what would subsume this subgraph?) or a **view
/// candidate** (what does this materialized view subsume?).
///
/// Descriptors are computed per job instance from the concrete plan — they
/// embed instance-specific predicate values, so they are deliberately *not*
/// part of the instance-invariant [`SubgraphInfo`](crate::SubgraphInfo) the
/// template cache reuses across instances.
#[derive(Clone, Debug, PartialEq)]
pub struct SubsumeDescriptor {
    /// Which rule this root participates in.
    pub kind: SubsumeKind,
    /// Precise signature of the root's (single) child: tier-2 candidates
    /// must share the child computation exactly.
    pub child_precise: Sig128,
    /// Bitset of child columns the root consumes (feature vector; roots
    /// touching columns ≥ 64 are not eligible).
    pub cols: u64,
    /// Bitset of grouping-key columns (`Rollup` only, else 0).
    pub keys: u64,
    /// The root's output schema — for a view candidate, the stored schema a
    /// compensating `ViewGet` must carry.
    pub schema: Schema,
    /// Rule-specific payload.
    pub detail: SubsumeDetail,
}

/// How to rewrite a subsumed query root on top of a `ViewGet` of the
/// serving view.
#[derive(Clone, Debug, PartialEq)]
pub enum Compensation {
    /// Keep the query's root `Filter` unchanged; only its child becomes the
    /// view scan (the view's rows are a superset, the residual re-filters).
    Residual,
    /// Replace the root with a `Project` of these expressions over the view
    /// output.
    Reproject {
        /// Bare column picks, named as the query expects.
        exprs: Vec<NamedExpr>,
    },
    /// Replace the root `Aggregate`'s keys/aggs to re-aggregate the view's
    /// partial results (the implementation choice is kept).
    Rollup {
        /// Grouping positions in the *view's* output schema.
        keys: Vec<usize>,
        /// Aggregates over the view's partial-aggregate columns.
        aggs: Vec<AggExpr>,
    },
}

fn bitset(cols: impl IntoIterator<Item = usize>) -> Option<u64> {
    let mut set = 0u64;
    for c in cols {
        if c >= 64 {
            return None;
        }
        set |= 1u64 << c;
    }
    Some(set)
}

fn subset(a: u64, b: u64) -> bool {
    a & !b == 0
}

impl SubsumeDescriptor {
    /// Builds the descriptor for the subgraph rooted at `root`, or `None`
    /// when the root is not an eligible unary operator. `child_precise` is
    /// the precise signature of the root's child, which the caller already
    /// has from signing the graph.
    pub fn of(
        graph: &QueryGraph,
        root: NodeId,
        child_precise: Sig128,
    ) -> Option<SubsumeDescriptor> {
        let node = graph.node(root).ok()?;
        if node.children.len() != 1 {
            return None;
        }
        let schema = graph.schema_of(root).ok()?;
        match &node.op {
            Operator::Filter { predicate } => {
                let intervals = column_intervals(predicate)?;
                let cols = bitset(intervals.keys().copied())?;
                Some(SubsumeDescriptor {
                    kind: SubsumeKind::Filter,
                    child_precise,
                    cols,
                    keys: 0,
                    schema,
                    detail: SubsumeDetail::Filter { intervals },
                })
            }
            Operator::Project { exprs } => {
                let mut referenced = Vec::new();
                for ne in exprs {
                    ne.expr.referenced_columns(&mut referenced);
                }
                let cols = bitset(referenced)?;
                Some(SubsumeDescriptor {
                    kind: SubsumeKind::Project,
                    child_precise,
                    cols,
                    keys: 0,
                    schema,
                    detail: SubsumeDetail::Project {
                        exprs: exprs.clone(),
                    },
                })
            }
            Operator::Aggregate { keys, aggs, .. } => {
                let key_set = bitset(keys.iter().copied())?;
                let cols = bitset(keys.iter().copied().chain(aggs.iter().map(|a| a.input)))?;
                Some(SubsumeDescriptor {
                    kind: SubsumeKind::Rollup,
                    child_precise,
                    cols,
                    keys: key_set,
                    schema,
                    detail: SubsumeDetail::Rollup {
                        keys: keys.clone(),
                        aggs: aggs.clone(),
                    },
                })
            }
            _ => None,
        }
    }

    /// The cheap cascade gate: a handful of integer compares deciding
    /// whether `view` could possibly serve `query`. No plan inspection.
    pub fn quick_compat(query: &SubsumeDescriptor, view: &SubsumeDescriptor) -> bool {
        if query.kind != view.kind || query.child_precise != view.child_precise {
            return false;
        }
        match query.kind {
            // The view may only constrain columns the query also constrains.
            SubsumeKind::Filter => subset(view.cols, query.cols),
            // The view must compute every column the query touches.
            SubsumeKind::Project => subset(query.cols, view.cols),
            // The view must group at least as finely and carry the inputs.
            SubsumeKind::Rollup => subset(query.keys, view.keys) && subset(query.cols, view.cols),
        }
    }

    /// The full tier-2 check: does `view` serve `query`, and if so, how is
    /// the query root compensated on top of the view scan?
    pub fn subsumes(query: &SubsumeDescriptor, view: &SubsumeDescriptor) -> Option<Compensation> {
        if !SubsumeDescriptor::quick_compat(query, view) {
            return None;
        }
        match (&query.detail, &view.detail) {
            (SubsumeDetail::Filter { intervals: q }, SubsumeDetail::Filter { intervals: v }) => {
                implies(q, v).then_some(Compensation::Residual)
            }
            (SubsumeDetail::Project { exprs: q }, SubsumeDetail::Project { exprs: v }) => {
                let exprs = q
                    .iter()
                    .map(|qe| {
                        v.iter()
                            .position(|ve| ve.expr == qe.expr)
                            .map(|i| NamedExpr::new(qe.name.clone(), Expr::Col(i)))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Compensation::Reproject { exprs })
            }
            (
                SubsumeDetail::Rollup {
                    keys: q_keys,
                    aggs: q_aggs,
                },
                SubsumeDetail::Rollup {
                    keys: v_keys,
                    aggs: v_aggs,
                },
            ) => {
                // Key k of the child appears at position i in the view's
                // key prefix, hence at column i of the view's output.
                let keys = q_keys
                    .iter()
                    .map(|k| v_keys.iter().position(|vk| vk == k))
                    .collect::<Option<Vec<_>>>()?;
                let aggs = q_aggs
                    .iter()
                    .map(|qa| {
                        let (j, func) = match qa.func {
                            // A partial count re-aggregates by summing.
                            AggFunc::Count => (
                                v_aggs.iter().position(|va| va.func == AggFunc::Count)?,
                                AggFunc::Sum,
                            ),
                            AggFunc::Sum => {
                                let j = v_aggs.iter().position(|va| {
                                    va.func == AggFunc::Sum && va.input == qa.input
                                })?;
                                // Float sums are not safely re-groupable:
                                // partial-sum addition order differs.
                                let dtype = view.schema.column(v_keys.len() + j).ok()?.dtype;
                                if dtype == DataType::Float {
                                    return None;
                                }
                                (j, AggFunc::Sum)
                            }
                            AggFunc::Min | AggFunc::Max => (
                                v_aggs
                                    .iter()
                                    .position(|va| va.func == qa.func && va.input == qa.input)?,
                                qa.func,
                            ),
                            // Not decomposable from partial aggregates.
                            AggFunc::Avg | AggFunc::CountDistinct => return None,
                        };
                        Some(AggExpr::new(qa.name.clone(), func, v_keys.len() + j))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(Compensation::Rollup { keys, aggs })
            }
            _ => None,
        }
    }
}

/// Guard for the one rollup edge the rules above cannot see: a *global*
/// rollup (`keys` empty) over an empty view emits `Sum(∅) = NULL` where
/// recompute's `Count(∅)` emits `0`. Callers must skip rollup adoption when
/// this returns false.
pub fn rollup_safe_for_rows(compensation: &Compensation, view_rows: u64) -> bool {
    match compensation {
        Compensation::Rollup { keys, .. } => !keys.is_empty() || view_rows > 0,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::{DataType, PlanBuilder, Value};

    fn base() -> Schema {
        Schema::from_pairs(&[
            ("k", DataType::Int),
            ("d", DataType::Date),
            ("v", DataType::Int),
            ("f", DataType::Float),
        ])
    }

    /// Builds `root(child)` where child is a plain scan, returns the graph,
    /// the root id, and a fake child signature.
    fn unary(
        f: impl FnOnce(&mut PlanBuilder, scope_common::ids::NodeId) -> scope_common::ids::NodeId,
    ) -> (QueryGraph, scope_common::ids::NodeId) {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(7), "t", base());
        let r = f(&mut b, s);
        let g = b.output(r, "o").build().unwrap();
        (g, r)
    }

    fn sig(x: u64) -> Sig128 {
        Sig128 {
            lo: x,
            hi: x ^ 0xabc,
        }
    }

    #[test]
    fn filter_containment_residual() {
        let (g1, r1) = unary(|b, s| b.filter(s, Expr::col(1).ge(Expr::lit(Value::Date(100)))));
        let (g2, r2) = unary(|b, s| {
            b.filter(
                s,
                Expr::col(1)
                    .ge(Expr::lit(Value::Date(150)))
                    .and(Expr::col(1).lt(Expr::lit(Value::Date(160)))),
            )
        });
        let view = SubsumeDescriptor::of(&g1, r1, sig(1)).unwrap();
        let query = SubsumeDescriptor::of(&g2, r2, sig(1)).unwrap();
        assert!(SubsumeDescriptor::quick_compat(&query, &view));
        assert_eq!(
            SubsumeDescriptor::subsumes(&query, &view),
            Some(Compensation::Residual)
        );
        // The wider query is NOT served by the tighter view.
        assert!(SubsumeDescriptor::subsumes(&view, &query).is_none());
        // Different child signatures never match.
        let other = SubsumeDescriptor::of(&g2, r2, sig(2)).unwrap();
        assert!(!SubsumeDescriptor::quick_compat(&other, &view));
    }

    #[test]
    fn projection_superset_reprojects() {
        let (g1, r1) = unary(|b, s| {
            b.project(
                s,
                vec![
                    NamedExpr::new("k", Expr::col(0)),
                    NamedExpr::new("dv", Expr::col(2).mul(Expr::lit(2i64))),
                    NamedExpr::new("d", Expr::col(1)),
                ],
            )
        });
        let (g2, r2) = unary(|b, s| {
            b.project(
                s,
                vec![
                    NamedExpr::new("double", Expr::col(2).mul(Expr::lit(2i64))),
                    NamedExpr::new("key", Expr::col(0)),
                ],
            )
        });
        let view = SubsumeDescriptor::of(&g1, r1, sig(3)).unwrap();
        let query = SubsumeDescriptor::of(&g2, r2, sig(3)).unwrap();
        let comp = SubsumeDescriptor::subsumes(&query, &view).unwrap();
        assert_eq!(
            comp,
            Compensation::Reproject {
                exprs: vec![
                    NamedExpr::new("double", Expr::Col(1)),
                    NamedExpr::new("key", Expr::Col(0)),
                ]
            }
        );
        // A query needing an expression the view lacks is rejected.
        let (g3, r3) = unary(|b, s| b.project(s, vec![NamedExpr::new("f", Expr::col(3))]));
        let q3 = SubsumeDescriptor::of(&g3, r3, sig(3)).unwrap();
        assert!(SubsumeDescriptor::subsumes(&q3, &view).is_none());
    }

    #[test]
    fn recurring_param_values_must_match() {
        let proj = |d: i32| {
            unary(move |b, s| {
                b.project(
                    s,
                    vec![NamedExpr::new("tag", Expr::param("@@date", Value::Date(d)))],
                )
            })
        };
        let (g1, r1) = proj(100);
        let (g2, r2) = proj(200);
        let view = SubsumeDescriptor::of(&g1, r1, sig(4)).unwrap();
        let query = SubsumeDescriptor::of(&g2, r2, sig(4)).unwrap();
        assert!(
            SubsumeDescriptor::subsumes(&query, &view).is_none(),
            "yesterday's parameter value must not serve today's query"
        );
    }

    #[test]
    fn rollup_maps_keys_and_aggs() {
        let (g1, r1) = unary(|b, s| {
            b.aggregate(
                s,
                vec![0, 1],
                vec![
                    AggExpr::new("n", AggFunc::Count, 0),
                    AggExpr::new("sv", AggFunc::Sum, 2),
                    AggExpr::new("mx", AggFunc::Max, 2),
                ],
            )
        });
        let (g2, r2) = unary(|b, s| {
            b.aggregate(
                s,
                vec![1],
                vec![
                    AggExpr::new("total", AggFunc::Sum, 2),
                    AggExpr::new("cnt", AggFunc::Count, 0),
                ],
            )
        });
        let view = SubsumeDescriptor::of(&g1, r1, sig(5)).unwrap();
        let query = SubsumeDescriptor::of(&g2, r2, sig(5)).unwrap();
        let comp = SubsumeDescriptor::subsumes(&query, &view).unwrap();
        // View output: [k, d, n, sv, mx]; query key d is view column 1;
        // Sum(v) re-aggregates view column 3, Count re-sums view column 2.
        assert_eq!(
            comp,
            Compensation::Rollup {
                keys: vec![1],
                aggs: vec![
                    AggExpr::new("total", AggFunc::Sum, 3),
                    AggExpr::new("cnt", AggFunc::Sum, 2),
                ]
            }
        );
        // Finer query than the view: rejected by the bitset gate.
        assert!(SubsumeDescriptor::subsumes(&view, &query).is_none());
    }

    #[test]
    fn rollup_rejects_float_sum_avg_and_distinct() {
        let (g1, r1) = unary(|b, s| {
            b.aggregate(
                s,
                vec![0, 1],
                vec![
                    AggExpr::new("sf", AggFunc::Sum, 3),
                    AggExpr::new("af", AggFunc::Avg, 2),
                    AggExpr::new("cd", AggFunc::CountDistinct, 2),
                ],
            )
        });
        let view = SubsumeDescriptor::of(&g1, r1, sig(6)).unwrap();
        for (name, func, input) in [
            ("sf", AggFunc::Sum, 3),
            ("af", AggFunc::Avg, 2),
            ("cd", AggFunc::CountDistinct, 2),
        ] {
            let (g2, r2) =
                unary(|b, s| b.aggregate(s, vec![0], vec![AggExpr::new(name, func, input)]));
            let query = SubsumeDescriptor::of(&g2, r2, sig(6)).unwrap();
            assert!(
                SubsumeDescriptor::subsumes(&query, &view).is_none(),
                "{name} must not roll up"
            );
        }
    }

    #[test]
    fn global_rollup_empty_view_guard() {
        let comp = Compensation::Rollup {
            keys: vec![],
            aggs: vec![AggExpr::new("n", AggFunc::Sum, 0)],
        };
        assert!(!rollup_safe_for_rows(&comp, 0));
        assert!(rollup_safe_for_rows(&comp, 1));
        let keyed = Compensation::Rollup {
            keys: vec![0],
            aggs: vec![],
        };
        assert!(rollup_safe_for_rows(&keyed, 0));
        assert!(rollup_safe_for_rows(&Compensation::Residual, 0));
    }

    #[test]
    fn non_unary_and_ineligible_roots_are_none() {
        let (g, _r) = unary(|b, s| b.filter(s, Expr::col(1).ge(Expr::lit(Value::Date(0)))));
        // The scan (leaf) has no child.
        let scan = g.nodes().iter().find(|n| n.children.is_empty()).unwrap();
        assert!(SubsumeDescriptor::of(&g, scan.id, sig(7)).is_none());
        // A filter with an ineligible predicate.
        let (g2, r2) = unary(|b, s| {
            b.filter(
                s,
                Expr::col(1)
                    .ge(Expr::lit(Value::Date(0)))
                    .or(Expr::col(0).eq(Expr::lit(1i64))),
            )
        });
        assert!(SubsumeDescriptor::of(&g2, r2, sig(7)).is_none());
    }
}
