//! Job descriptors, the baseline runner, and online view materialization.
//!
//! [`run_job_baseline`] is plain SCOPE: optimize without any view services,
//! execute, simulate. The CloudViews-enabled path lives in the `cloudviews`
//! crate and composes the same pieces plus the metadata-service protocol;
//! both share [`materialize_marked_views`], which implements the paper's
//! online materialization (Section 6.2): the marked subgraph's output is
//! copied into a view file in the analyzer-mined physical design (enforcing
//! any missing partitioning/sorting), with the precise signature and
//! producing job id recorded in the file path.

use std::collections::HashMap;
use std::sync::Arc;

use scope_common::ids::{ClusterId, JobId, TemplateId, UserId, VcId};
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_plan::{Partitioning, QueryGraph};

use crate::cost::CostModel;
use crate::data::Table;
use crate::exec::{execute_plan, ExecOutcome};
use crate::optimizer::{optimize, NoViewServices, OptimizedPlan, OptimizerConfig};
use crate::sim::{simulate, ClusterConfig, SimOutcome};
use crate::storage::{StorageManager, ViewFile, ViewMeta};

/// A job to run: identity plus its compiled logical plan.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job instance id.
    pub id: JobId,
    /// Physical cluster the job runs in.
    pub cluster: ClusterId,
    /// Virtual cluster (tenant).
    pub vc: VcId,
    /// Submitting user entity.
    pub user: UserId,
    /// Recurring template.
    pub template: TemplateId,
    /// Recurrence instance index.
    pub instance: u64,
    /// The compiled logical plan.
    pub graph: QueryGraph,
}

/// The result of running one job.
#[derive(Debug)]
pub struct JobOutcome {
    /// Job id.
    pub job: JobId,
    /// End-to-end latency (including any view-write overhead).
    pub latency: SimDuration,
    /// Total CPU time (including any view-write overhead).
    pub cpu_time: SimDuration,
    /// Terminal outputs by name.
    pub outputs: HashMap<String, Table>,
    /// The optimized plan that ran.
    pub plan: OptimizedPlan,
    /// Execution statistics.
    pub exec: ExecOutcome,
    /// Simulation breakdown.
    pub sim: SimOutcome,
    /// Precise signatures of views this job materialized.
    pub views_built: Vec<scope_common::Sig128>,
}

/// One materialized view produced by a job, with the simulated time at which
/// it became available (early materialization: the producing *stage*'s
/// finish, not the job's).
#[derive(Debug)]
pub struct BuiltView {
    /// The stored file.
    pub file: ViewFile,
    /// Extra CPU charged for building (enforcers + write).
    pub extra_cpu: SimDuration,
    /// Extra job latency attributable to the build.
    pub extra_latency: SimDuration,
    /// Offset from job start at which the view is published.
    pub available_offset: SimDuration,
}

/// Runs a job with CloudViews disabled: the paper's baseline.
pub fn run_job_baseline(
    spec: &JobSpec,
    storage: &StorageManager,
    model: &CostModel,
    cluster: &ClusterConfig,
    now: SimTime,
) -> Result<JobOutcome> {
    let config = OptimizerConfig {
        default_dop: cluster.default_dop,
        enable_reuse: false,
        enable_materialize: false,
        ..Default::default()
    };
    let plan = optimize(&spec.graph, &[], &NoViewServices, &config, spec.id)?;
    let exec = execute_plan(&plan.physical, storage, model, now)?;
    let sim = simulate(&plan.physical, &exec, cluster);
    Ok(JobOutcome {
        job: spec.id,
        latency: sim.latency,
        cpu_time: sim.cpu_time,
        outputs: exec.outputs.clone(),
        exec,
        sim,
        plan,
        views_built: Vec::new(),
    })
}

/// Builds the view files for every materialization mark in `plan`,
/// enforcing the analyzer-mined physical design and charging the extra work.
///
/// Returns the built views; the caller publishes them to storage (and to the
/// metadata service) at their `available_offset` — immediately for the
/// early-materialization path, or at job end when early materialization is
/// disabled (ablation).
pub fn materialize_marked_views(
    plan: &OptimizedPlan,
    exec: &ExecOutcome,
    sim: &SimOutcome,
    model: &CostModel,
    job: JobId,
    job_start: SimTime,
) -> Result<Vec<BuiltView>> {
    let mut built = Vec::new();
    for mark in &plan.materialize {
        let source = &exec.node_tables[mark.physical_node.index()];
        // Enforce the mined physical design on the stored copy.
        let mut table = source.clone();
        let mut enforcer_cpu = SimDuration::ZERO;
        match &mark.props.partitioning {
            Partitioning::Hash { cols, parts } => {
                if !mark
                    .props
                    .partitioning
                    .satisfied_by(&table.props.partitioning)
                {
                    table = table.hash_repartition(cols, *parts)?;
                    enforcer_cpu += model.op_cpu(
                        &scope_plan::Operator::Exchange {
                            scheme: mark.props.partitioning.clone(),
                        },
                        source.num_rows() as u64,
                        source.num_rows() as u64,
                        source.num_bytes(),
                    );
                }
            }
            Partitioning::Range { col, parts } => {
                if !mark
                    .props
                    .partitioning
                    .satisfied_by(&table.props.partitioning)
                {
                    table = table.range_repartition(*col, *parts)?;
                    enforcer_cpu += model.op_cpu(
                        &scope_plan::Operator::Exchange {
                            scheme: mark.props.partitioning.clone(),
                        },
                        source.num_rows() as u64,
                        source.num_rows() as u64,
                        source.num_bytes(),
                    );
                }
            }
            Partitioning::Single => {
                if table.num_partitions() != 1 {
                    table = table.gather();
                }
            }
            Partitioning::RoundRobin { parts } => {
                if !mark
                    .props
                    .partitioning
                    .satisfied_by(&table.props.partitioning)
                {
                    table = table.round_robin_repartition(*parts)?;
                }
            }
            Partitioning::Any => {}
        }
        if !mark.props.sort.is_none() && !mark.props.sort.satisfied_by(&table.props.sort) {
            table = table.sort_partitions(&mark.props.sort);
            enforcer_cpu += model.op_cpu(
                &scope_plan::Operator::Sort {
                    order: mark.props.sort.clone(),
                },
                source.num_rows() as u64,
                source.num_rows() as u64,
                0,
            );
        }
        let rows = table.num_rows() as u64;
        let bytes = table.num_bytes();
        let write_cpu = model.view_write_cpu(rows, bytes);
        let extra_cpu = enforcer_cpu + write_cpu;
        // Latency impact: the write runs with the view's own parallelism.
        let parts = table.num_partitions().max(1) as f64;
        let extra_latency = extra_cpu.mul_f64(1.0 / parts);
        let produced_at = sim.node_finish[mark.physical_node.index()] + extra_latency;
        let created_at = job_start + produced_at;
        let props = table.props.clone();
        built.push(BuiltView {
            file: ViewFile {
                table: Arc::new(table),
                props,
                meta: ViewMeta {
                    precise: mark.precise,
                    normalized: mark.normalized,
                    producer: job,
                    created_at,
                    expires_at: created_at + mark.ttl,
                    rows,
                    bytes,
                },
            },
            extra_cpu,
            extra_latency,
            available_offset: produced_at,
        });
    }
    Ok(built)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{
        AggExpr, DataType, Expr, PhysicalProps, PlanBuilder, Schema, SortOrder, Value,
    };
    use scope_signature::sign_graph;

    fn storage() -> StorageManager {
        let s = StorageManager::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let rows = (0..500)
            .map(|i| vec![Value::Int(i % 7), Value::Int(i)])
            .collect();
        s.put_dataset(DatasetId::new(1), Table::single(schema, rows));
        s
    }

    fn spec() -> JobSpec {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let mut b = PlanBuilder::new();
        let scan = b.table_scan(DatasetId::new(1), "in/t.ss", schema);
        let f = b.filter(scan, Expr::col(1).ge(Expr::lit(0i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("c", AggFunc::Count, 1)]);
        let g = b.output(a, "out/r.ss").build().unwrap();
        JobSpec {
            id: JobId::new(1),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(0),
            instance: 0,
            graph: g,
        }
    }

    #[test]
    fn baseline_runs_end_to_end() {
        let st = storage();
        let out = run_job_baseline(
            &spec(),
            &st,
            &CostModel::default(),
            &ClusterConfig::default(),
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(out.outputs["out/r.ss"].num_rows(), 7);
        assert!(out.latency > SimDuration::ZERO);
        assert!(out.cpu_time >= out.latency || out.sim.vertices == 1);
        assert!(out.views_built.is_empty());
    }

    #[test]
    fn materialize_enforces_design_and_charges_cost() {
        use crate::optimizer::{Annotation, ViewServices};
        use scope_common::Sig128;

        struct GrantAll;
        impl ViewServices for GrantAll {
            fn view_available(&self, _p: Sig128) -> Option<crate::optimizer::AvailableView> {
                None
            }
            fn propose_materialize(
                &self,
                _p: Sig128,
                _n: Sig128,
                _j: JobId,
                _t: SimDuration,
            ) -> bool {
                true
            }
        }

        let st = storage();
        let spec = spec();
        let signed = sign_graph(&spec.graph).unwrap();
        let agg = scope_common::ids::NodeId::new(2);
        let annotation = Annotation {
            normalized: signed.of(agg).normalized,
            props: PhysicalProps {
                partitioning: Partitioning::Hash {
                    cols: vec![0],
                    parts: 4,
                },
                sort: SortOrder::asc(&[0]),
            },
            ttl: SimDuration::from_secs(3600),
            avg_cpu: SimDuration::from_secs(1),
            avg_rows: 7,
            avg_bytes: 200,
        };
        let plan = optimize(
            &spec.graph,
            &[annotation],
            &GrantAll,
            &OptimizerConfig {
                max_materialize_per_job: 1,
                ..Default::default()
            },
            spec.id,
        )
        .unwrap();
        assert_eq!(plan.materialize.len(), 1);
        let exec = execute_plan(&plan.physical, &st, &CostModel::default(), SimTime::ZERO).unwrap();
        let sim = simulate(&plan.physical, &exec, &ClusterConfig::default());
        let built = materialize_marked_views(
            &plan,
            &exec,
            &sim,
            &CostModel::default(),
            spec.id,
            SimTime::ZERO,
        )
        .unwrap();
        assert_eq!(built.len(), 1);
        let v = &built[0];
        // Stored in the mined design.
        assert_eq!(v.file.table.num_partitions(), 4);
        assert_eq!(v.file.props.sort, SortOrder::asc(&[0]));
        assert!(v.extra_cpu > SimDuration::ZERO);
        assert!(v.extra_latency <= v.extra_cpu);
        // Early availability: before (or at) the job's own end plus write.
        assert!(v.available_offset <= sim.latency + v.extra_latency);
        assert_eq!(v.file.meta.precise, signed.of(agg).precise);
        assert_eq!(v.file.meta.rows, 7);
        assert!(v.file.meta.expires_at > v.file.meta.created_at);
    }
}
