//! The columnar batch-at-a-time physical executor.
//!
//! [`execute_plan`] runs an optimized plan bottom-up against the
//! [`StorageManager`], producing the output table of every node plus the
//! per-node runtime statistics ([`NodeRuntimeStats`]) that feed the
//! CloudViews feedback loop: rows, bytes, and exclusive CPU from the
//! calibrated [`CostModel`].
//!
//! Operators process whole [`RecordBatch`]es: filters compute selection
//! vectors and gather once, projections evaluate expressions column-wise
//! ([`crate::vexpr`]), joins and aggregates run typed single-key fast paths
//! over the raw vectors, and column-preserving operators (Remap, Exchange,
//! UnionAll, Spool, gather) move `Arc`'d buffers without copying data.
//!
//! **Pinned semantics.** Every [`NodeRuntimeStats`] field, the cost-model
//! inputs, partition counts, and per-partition row order are byte-identical
//! to the seed row executor (preserved in [`crate::rowref`]); the
//! EXPERIMENTS.md figures and the subsumption byte-identity suite depend on
//! it. Cases the batch kernels cannot reproduce exactly — user-defined
//! operators, window functions, loops joins, ragged partitions, mismatched
//! LeftOuter padding widths, and any vectorized expression error — drop to
//! the row kernels in [`crate::rowref`], so the two paths cannot disagree.
//!
//! The executor trusts the optimizer's property enforcement: group-wise
//! operators assume their input is co-partitioned (and, for stream variants,
//! sorted) on the keys. [`super::optimizer`] guarantees this; the
//! correctness property tests cross-check by comparing against
//! single-partition reference runs.

use std::collections::HashMap;
use std::sync::Arc;

use scope_common::ids::NodeId;
use scope_common::time::{SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_plan::expr::AggFunc;
use scope_plan::op::AggImpl;
use scope_plan::{
    AggExpr, Expr, JoinImpl, JoinKind, Operator, Partitioning, PhysicalProps, QueryGraph, Schema,
    SortOrder, Value,
};

use crate::cost::CostModel;
use crate::data::{
    batches_from_rows, compare_batch_rows, compare_batch_rows_full, compare_rows, sort_rows,
    ColumnVector, RecordBatch, Row, Table,
};
use crate::rowref::{self, Acc};
use crate::storage::StorageManager;
use crate::vexpr;

/// Observed execution statistics of one plan node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeRuntimeStats {
    /// Rows consumed (sum over inputs; scanned rows for leaves).
    pub in_rows: u64,
    /// Rows produced.
    pub out_rows: u64,
    /// Bytes produced.
    pub out_bytes: u64,
    /// Exclusive CPU attributed to this node.
    pub exclusive_cpu: SimDuration,
}

/// Result of executing a plan: every node's output and statistics.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Output table per node (same indexing as the graph arena).
    pub node_tables: Vec<Table>,
    /// Runtime statistics per node.
    pub node_stats: Vec<NodeRuntimeStats>,
    /// Terminal outputs by name (gathered single-partition tables).
    pub outputs: HashMap<String, Table>,
}

impl ExecOutcome {
    /// Total exclusive CPU across all nodes.
    pub fn total_cpu(&self) -> SimDuration {
        self.node_stats.iter().map(|s| s.exclusive_cpu).sum()
    }

    /// Cumulative CPU of the subgraph rooted at `root`.
    pub fn subgraph_cpu(&self, graph: &QueryGraph, root: NodeId) -> SimDuration {
        graph
            .subgraph_nodes(root)
            .map(|ids| {
                ids.iter()
                    .map(|id| self.node_stats[id.index()].exclusive_cpu)
                    .sum()
            })
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Executes `graph` against `storage`, charging costs with `model`.
///
/// `now` is the simulated time at which view reads are checked for expiry.
pub fn execute_plan(
    graph: &QueryGraph,
    storage: &StorageManager,
    model: &CostModel,
    now: SimTime,
) -> Result<ExecOutcome> {
    let mut tables: Vec<Table> = Vec::with_capacity(graph.len());
    let mut stats: Vec<NodeRuntimeStats> = Vec::with_capacity(graph.len());
    let mut outputs = HashMap::new();
    let schemas = graph.validate()?;

    for node in graph.nodes() {
        let child_tables: Vec<&Table> = node.children.iter().map(|c| &tables[c.index()]).collect();
        let in_rows: u64 = child_tables.iter().map(|t| t.num_rows() as u64).sum();
        let out_schema = &schemas[node.id.index()];
        let (table, scanned) = exec_node(&node.op, &child_tables, out_schema, storage, now)?;
        let out_rows = table.num_rows() as u64;
        let out_bytes = table.num_bytes();
        let effective_in = if node.children.is_empty() {
            scanned
        } else {
            in_rows
        };
        let cpu = model.op_cpu(&node.op, effective_in, out_rows, out_bytes);
        if let Operator::Output { name, .. } = &node.op {
            // The Output kernel already gathered; a clone shares the batch
            // buffers instead of re-materializing the table.
            outputs.insert(name.as_str().to_string(), table.clone());
        }
        stats.push(NodeRuntimeStats {
            in_rows: effective_in,
            out_rows,
            out_bytes,
            exclusive_cpu: cpu,
        });
        tables.push(table);
    }

    Ok(ExecOutcome {
        node_tables: tables,
        node_stats: stats,
        outputs,
    })
}

/// Applies an optional predicate to every batch of one partition: selection
/// vector, then a single gather (or a zero-copy pass-through when every row
/// survives).
fn filter_batches(
    batches: &[Arc<RecordBatch>],
    predicate: Option<&Expr>,
) -> Result<Vec<Arc<RecordBatch>>> {
    let mut out = Vec::with_capacity(batches.len());
    for batch in batches {
        if batch.num_rows() == 0 {
            continue;
        }
        match predicate {
            None => out.push(batch.clone()),
            Some(pred) => {
                let sel = vexpr::eval_predicate_selection(pred, batch)?;
                if sel.len() == batch.num_rows() {
                    out.push(batch.clone());
                } else if !sel.is_empty() {
                    out.push(Arc::new(batch.take(&sel)));
                }
            }
        }
    }
    Ok(out)
}

/// Executes one operator. Returns the output table and, for leaves, the
/// number of rows scanned (pre-predicate).
fn exec_node(
    op: &Operator,
    inputs: &[&Table],
    out_schema: &Schema,
    storage: &StorageManager,
    now: SimTime,
) -> Result<(Table, u64)> {
    let one = || -> Result<&Table> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| ScopeError::Execution(format!("{} executed without input", op.kind())))
    };
    match op {
        Operator::Get {
            dataset,
            kind,
            predicate,
            extractor,
            ..
        } => {
            let stored = storage.dataset(*dataset)?;
            let scanned = stored.num_rows() as u64;
            let mut parts: Vec<Vec<Arc<RecordBatch>>> = Vec::with_capacity(stored.num_partitions());
            for p in 0..stored.num_partitions() {
                if matches!(kind, scope_plan::ScanKind::Extract) {
                    // Extract scans interleave predicate and UDO per row;
                    // stay row-at-a-time to keep error order identical.
                    let udo = extractor.as_ref().ok_or_else(|| {
                        ScopeError::Execution("extract scan without extractor".into())
                    })?;
                    let mut out_part: Vec<Row> = Vec::new();
                    for batch in stored.partition_batches(p) {
                        for i in 0..batch.num_rows() {
                            let row = batch.row(i);
                            if let Some(pred) = predicate {
                                if !pred.eval(&row)?.is_true() {
                                    continue;
                                }
                            }
                            udo.process_row(&row, &mut out_part)?;
                        }
                    }
                    parts.push(batches_from_rows(out_part));
                } else {
                    parts.push(filter_batches(
                        stored.partition_batches(p),
                        predicate.as_ref(),
                    )?);
                }
            }
            Ok((
                Table::from_batches(out_schema.clone(), parts, stored.props.clone()),
                scanned,
            ))
        }
        Operator::ViewGet { view_sig, .. } => {
            // Integrity-verified read: a lost or corrupted file surfaces as
            // ViewUnavailable, which the CloudViews runtime absorbs by
            // falling back to recomputation. The clone is batch-buffer
            // sharing, not a data copy.
            let file = storage.open_view(*view_sig, now)?;
            let scanned = file.table.num_rows() as u64;
            Ok(((*file.table).clone(), scanned))
        }
        Operator::Filter { predicate } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                parts.push(filter_batches(input.partition_batches(p), Some(predicate))?);
            }
            Ok((
                Table::from_batches(out_schema.clone(), parts, input.props.clone()),
                0,
            ))
        }
        Operator::Project { exprs } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                let mut out = Vec::new();
                for batch in input.partition_batches(p) {
                    if batch.num_rows() == 0 {
                        continue;
                    }
                    let cols = vexpr::eval_exprs(exprs, batch)?;
                    out.push(Arc::new(RecordBatch::new(cols, batch.num_rows())));
                }
                parts.push(out);
            }
            Ok((
                Table::from_batches(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Remap { cols, .. } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                let mut out = Vec::new();
                for batch in input.partition_batches(p) {
                    if batch.num_rows() == 0 {
                        continue;
                    }
                    // Pure column shuffle: Arc bumps, no data movement.
                    let picked: Vec<Arc<ColumnVector>> =
                        cols.iter().map(|&c| batch.column(c).clone()).collect();
                    out.push(Arc::new(RecordBatch::new(picked, batch.num_rows())));
                }
                parts.push(out);
            }
            Ok((
                Table::from_batches(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Sort { order } => {
            let input = one()?;
            Ok((input.sort_partitions(order), 0))
        }
        Operator::Exchange { scheme } => {
            let input = one()?;
            let out = match scheme {
                Partitioning::Hash { cols, parts } => input.hash_repartition(cols, *parts)?,
                Partitioning::Range { col, parts } => input.range_repartition(*col, *parts)?,
                Partitioning::RoundRobin { parts } => input.round_robin_repartition(*parts)?,
                Partitioning::Single => input.gather(),
                Partitioning::Any => input.clone(),
            };
            Ok((out, 0))
        }
        Operator::Aggregate {
            keys,
            aggs,
            implementation,
        } => {
            let input = one()?;
            let mut parts: Vec<Vec<Row>> = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                let rows = match input.partition_as_batch(p) {
                    Some(batch) => match implementation {
                        AggImpl::Hash => hash_aggregate_batch(&batch, keys, aggs)?,
                        AggImpl::Stream => stream_aggregate_batch(&batch, keys, aggs)?,
                    },
                    None => {
                        // Ragged partition: row kernels.
                        let rows = input.partition_rows(p);
                        match implementation {
                            AggImpl::Hash => rowref::hash_aggregate(&rows, keys, aggs)?,
                            AggImpl::Stream => rowref::stream_aggregate(&rows, keys, aggs)?,
                        }
                    }
                };
                parts.push(rows);
            }
            // Global aggregate over an empty input emits exactly one row.
            if keys.is_empty() {
                let total: usize = parts.iter().map(Vec::len).sum();
                if total == 0 && !parts.is_empty() {
                    parts[0].push(rowref::empty_global_agg_row(aggs));
                }
            }
            Ok((
                Table::from_rows(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Top { n, order } => {
            let input = one()?;
            let gathered = input.gather();
            // Deterministic top-N: ties under the requested order are broken
            // by full-row comparison, so the result is independent of the
            // physical arrival order (and hence of view reuse).
            let props = PhysicalProps {
                partitioning: Partitioning::Single,
                sort: order.clone(),
            };
            let table = match gathered.partition_as_batch(0) {
                Some(batch) => {
                    let mut idx: Vec<usize> = (0..batch.num_rows()).collect();
                    idx.sort_by(|&a, &b| {
                        compare_batch_rows(&batch, a, b, order)
                            .then_with(|| compare_batch_rows_full(&batch, a, b))
                    });
                    idx.truncate(*n);
                    let out = if idx.is_empty() {
                        Vec::new()
                    } else {
                        vec![Arc::new(batch.take(&idx))]
                    };
                    Table::from_batches(out_schema.clone(), vec![out], props)
                }
                None => {
                    let mut rows = gathered.all_rows();
                    rows.sort_by(|a, b| compare_rows(a, b, order).then_with(|| a.cmp(b)));
                    rows.truncate(*n);
                    Table::from_rows(out_schema.clone(), vec![rows], props)
                }
            };
            Ok((table, 0))
        }
        Operator::Window {
            func,
            partition,
            order,
        } => {
            // Window functions are row-ordered by definition; the row kernel
            // is the semantics.
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                parts.push(rowref::exec_window(
                    &input.partition_rows(p),
                    func,
                    partition,
                    order,
                )?);
            }
            Ok((
                Table::from_rows(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Process { udo } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                let mut out = Vec::new();
                for row in input.partition_rows(p) {
                    udo.process_row(&row, &mut out)?;
                }
                parts.push(out);
            }
            Ok((
                Table::from_rows(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Reduce { udo, keys } | Operator::GbApply { udo, keys } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.num_partitions());
            for p in 0..input.num_partitions() {
                let rows = input.partition_rows(p);
                let mut out = Vec::new();
                for group in rowref::key_runs(&rows, keys) {
                    udo.reduce_group(group, &mut out)?;
                }
                parts.push(out);
            }
            Ok((
                Table::from_rows(
                    out_schema.clone(),
                    parts,
                    op.delivered_props(std::slice::from_ref(&input.props)),
                ),
                0,
            ))
        }
        Operator::Spool | Operator::Nop => Ok((one()?.clone(), 0)),
        Operator::Sequence => {
            let last = inputs.last().copied().ok_or_else(|| {
                ScopeError::Execution("Sequence executed without children".into())
            })?;
            Ok((last.clone(), 0))
        }
        Operator::Join {
            kind,
            implementation,
            left_keys,
            right_keys,
        } => {
            let left = inputs[0];
            let right = inputs[1];
            let table = exec_join(
                left,
                right,
                *kind,
                *implementation,
                left_keys,
                right_keys,
                out_schema,
            )?;
            Ok((table, 0))
        }
        Operator::UnionAll => {
            let mut parts = Vec::new();
            for t in inputs {
                for p in 0..t.num_partitions() {
                    parts.push(t.partition_batches(p).to_vec());
                }
            }
            Ok((
                Table::from_batches(out_schema.clone(), parts, PhysicalProps::any()),
                0,
            ))
        }
        Operator::Combine { udo } => {
            // Both sides gathered single (enforced); the toy combiner sorts
            // both by column 0 and concatenates.
            let mut left = inputs[0].all_rows();
            let mut right = inputs[1].all_rows();
            if !matches!(udo.kind, scope_plan::UdoKind::MergeStreams) {
                return Err(ScopeError::Execution(format!(
                    "{} is not a combiner",
                    udo.kind.name()
                )));
            }
            let order = SortOrder::asc(&[0]);
            sort_rows(&mut left, &order);
            sort_rows(&mut right, &order);
            left.extend(right);
            Ok((
                Table::from_rows(out_schema.clone(), vec![left], PhysicalProps::single()),
                0,
            ))
        }
        Operator::Output { .. } => {
            let input = one()?;
            Ok((input.gather(), 0))
        }
    }
}

// ---------------------------------------------------------------------------
// Vectorized aggregation
// ---------------------------------------------------------------------------

/// Group index per input row, plus the distinct keys in first-seen order —
/// the seed hash aggregate's grouping, computed column-wise with a typed
/// fast path for single integer-like keys.
/// Null-test closure over a typed column's optional mask.
fn null_at(nulls: &Option<crate::data::NullMask>) -> impl Fn(usize) -> bool + '_ {
    move |i| nulls.as_ref().is_some_and(|m| m[i])
}

/// Monomorphized single-key grouping over an i64-valued key accessor.
/// Group ids are assigned in first-seen row order (NULL is its own group),
/// matching the generic `HashMap<Vec<Value>>` kernel exactly. Small key
/// ranges get a direct-address table instead of a hash map.
fn group_typed_ints(
    rows: usize,
    key_at: impl Fn(usize) -> i64,
    is_null: impl Fn(usize) -> bool,
    value_at: impl Fn(usize) -> Value,
) -> (Vec<u32>, Vec<Vec<Value>>) {
    let mut group_of = Vec::with_capacity(rows);
    let mut key_rows: Vec<Vec<Value>> = Vec::new();
    let (mut lo, mut hi, mut any) = (i64::MAX, i64::MIN, false);
    for i in 0..rows {
        if !is_null(i) {
            let v = key_at(i);
            lo = lo.min(v);
            hi = hi.max(v);
            any = true;
        }
    }
    let range = if any { (hi - lo) as u128 + 1 } else { 0 };
    if range <= (rows as u128) * 4 + 1024 && range <= 1 << 21 {
        let mut table = vec![u32::MAX; range as usize];
        let mut null_gid = u32::MAX;
        for i in 0..rows {
            let gid = if is_null(i) {
                if null_gid == u32::MAX {
                    null_gid = key_rows.len() as u32;
                    key_rows.push(vec![Value::Null]);
                }
                null_gid
            } else {
                let slot = (key_at(i) - lo) as usize;
                if table[slot] == u32::MAX {
                    table[slot] = key_rows.len() as u32;
                    key_rows.push(vec![value_at(i)]);
                }
                table[slot]
            };
            group_of.push(gid);
        }
    } else {
        let mut map: HashMap<Option<i64>, u32> = HashMap::new();
        for i in 0..rows {
            let key = if is_null(i) { None } else { Some(key_at(i)) };
            let gid = *map.entry(key).or_insert_with(|| {
                key_rows.push(vec![if key.is_none() {
                    Value::Null
                } else {
                    value_at(i)
                }]);
                (key_rows.len() - 1) as u32
            });
            group_of.push(gid);
        }
    }
    (group_of, key_rows)
}

fn group_rows(batch: &RecordBatch, keys: &[usize]) -> (Vec<u32>, Vec<Vec<Value>>) {
    let rows = batch.num_rows();

    if let [k] = keys {
        // Typed single-key grouping: one i64 (or NULL) per row. Valid
        // because a typed column never mixes numeric types, so i64 equality
        // coincides with Value equality.
        let kcol = batch.column(*k);
        match kcol.as_ref() {
            ColumnVector::Int { data, nulls } => {
                return group_typed_ints(rows, |i| data[i], null_at(nulls), |i| kcol.value(i));
            }
            ColumnVector::Date { data, nulls } => {
                return group_typed_ints(
                    rows,
                    |i| data[i] as i64,
                    null_at(nulls),
                    |i| kcol.value(i),
                );
            }
            _ => {}
        }
    }

    let mut group_of = Vec::with_capacity(rows);
    let mut key_rows: Vec<Vec<Value>> = Vec::new();
    let mut map: HashMap<Vec<Value>, u32> = HashMap::new();
    for i in 0..rows {
        let key: Vec<Value> = keys.iter().map(|&k| batch.cell(i, k).to_value()).collect();
        let gid = *map.entry(key.clone()).or_insert_with(|| {
            key_rows.push(key);
            (key_rows.len() - 1) as u32
        });
        group_of.push(gid);
    }
    (group_of, key_rows)
}

fn hash_aggregate_batch(batch: &RecordBatch, keys: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let rows = batch.num_rows();
    if rows == 0 {
        return Ok(Vec::new());
    }
    let width = batch.width();
    let (group_of, key_rows) = group_rows(batch, keys);
    let ngroups = key_rows.len();
    let mut group_sizes = vec![0u64; ngroups];
    for &g in &group_of {
        group_sizes[g as usize] += 1;
    }

    // Column-wise accumulation: one pass per aggregate over its input
    // column. COUNT/SUM/AVG over typed numeric columns run monomorphized
    // loops feeding the exact `Acc` fields their `finish` arm reads;
    // everything else falls back to the borrowed-cell update.
    let mut acc_cols: Vec<Vec<Acc>> = Vec::with_capacity(aggs.len());
    for a in aggs {
        let col = batch.column(a.input.min(width - 1));
        let mut accs: Vec<Acc> = (0..ngroups).map(|_| Acc::new()).collect();
        match (a.func, col.as_ref()) {
            (AggFunc::Count, _) => {
                // finish(Count) reads only the row count; nulls don't matter.
                for (acc, &n) in accs.iter_mut().zip(&group_sizes) {
                    acc.bump_rows(n, 0);
                }
            }
            (AggFunc::Sum | AggFunc::Avg, ColumnVector::Int { data, nulls }) => {
                accumulate_sums(&mut accs, &group_of, &group_sizes, nulls, |acc, i| {
                    acc.add_int(data[i])
                });
            }
            (AggFunc::Sum | AggFunc::Avg, ColumnVector::Float { data, nulls }) => {
                accumulate_sums(&mut accs, &group_of, &group_sizes, nulls, |acc, i| {
                    acc.push_float(data[i])
                });
            }
            _ => {
                for (i, &g) in group_of.iter().enumerate() {
                    accs[g as usize].update_cell(a.func, col.cell(i));
                }
            }
        }
        acc_cols.push(accs);
    }
    Ok(key_rows
        .iter()
        .enumerate()
        .map(|(g, key)| {
            let mut row: Row = key.clone();
            for (j, a) in aggs.iter().enumerate() {
                row.push(acc_cols[j][g].finish(a.func));
            }
            row
        })
        .collect())
}

/// SUM/AVG inner loop shared by the typed numeric columns: `add` feeds one
/// non-null value into its group's accumulator; row/non-null counts are
/// bulk-applied afterwards so the per-row work is a single indexed update.
fn accumulate_sums(
    accs: &mut [Acc],
    group_of: &[u32],
    group_sizes: &[u64],
    nulls: &Option<crate::data::NullMask>,
    mut add: impl FnMut(&mut Acc, usize),
) {
    match nulls {
        None => {
            for (i, &g) in group_of.iter().enumerate() {
                add(&mut accs[g as usize], i);
            }
            for (acc, &n) in accs.iter_mut().zip(group_sizes) {
                acc.bump_rows(n, n);
            }
        }
        Some(mask) => {
            let mut non_null = vec![0u64; accs.len()];
            for (i, &g) in group_of.iter().enumerate() {
                if !mask[i] {
                    non_null[g as usize] += 1;
                    add(&mut accs[g as usize], i);
                }
            }
            for ((acc, &n), &nn) in accs.iter_mut().zip(group_sizes).zip(&non_null) {
                acc.bump_rows(n, nn);
            }
        }
    }
}

fn stream_aggregate_batch(
    batch: &RecordBatch,
    keys: &[usize],
    aggs: &[AggExpr],
) -> Result<Vec<Row>> {
    let rows = batch.num_rows();
    let mut out = Vec::new();
    if rows == 0 {
        return Ok(out);
    }
    let width = batch.width();
    let key_cols: Vec<&Arc<ColumnVector>> = keys.iter().map(|&k| batch.column(k)).collect();
    let agg_cols: Vec<&Arc<ColumnVector>> = aggs
        .iter()
        .map(|a| batch.column(a.input.min(width - 1)))
        .collect();
    let mut start = 0;
    while start < rows {
        // Maximal run of adjacent equal keys, like the row kernel.
        let mut end = start + 1;
        while end < rows
            && key_cols
                .iter()
                .all(|c| c.cell(end).cmp_cell(c.cell(start)).is_eq())
        {
            end += 1;
        }
        let mut accs: Vec<Acc> = aggs.iter().map(|_| Acc::new()).collect();
        for i in start..end {
            for (acc, (a, col)) in accs.iter_mut().zip(aggs.iter().zip(&agg_cols)) {
                acc.update_cell(a.func, col.cell(i));
            }
        }
        let key: Vec<Value> = key_cols.iter().map(|c| c.value(start)).collect();
        out.push(rowref::agg_row(&key, &accs, aggs));
        start = end;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Vectorized hash join
// ---------------------------------------------------------------------------

fn join_props(left: &Table) -> PhysicalProps {
    PhysicalProps {
        partitioning: left.props.partitioning.clone(),
        sort: SortOrder::none(),
    }
}

fn exec_join(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    implementation: JoinImpl,
    left_keys: &[usize],
    right_keys: &[usize],
    out_schema: &Schema,
) -> Result<Table> {
    let rwidth = right.schema.len();

    if matches!(implementation, JoinImpl::Loops) {
        // Loops joins are rare and inherently row-pairwise; the row kernel
        // is the semantics. Right side gathered single (enforced).
        if right.num_partitions() == 0 {
            return Err(ScopeError::Execution(
                "loops join with no right partition".into(),
            ));
        }
        let rp = right.partition_rows(0);
        let parts = (0..left.num_partitions())
            .map(|p| {
                rowref::loops_join_rows(
                    &left.partition_rows(p),
                    &rp,
                    kind,
                    left_keys,
                    right_keys,
                    rwidth,
                )
            })
            .collect();
        return Ok(Table::from_rows(
            out_schema.clone(),
            parts,
            join_props(left),
        ));
    }

    if left.num_partitions() != right.num_partitions() {
        return Err(ScopeError::Execution(format!(
            "join partition mismatch: {} vs {}",
            left.num_partitions(),
            right.num_partitions()
        )));
    }

    let mut parts: Vec<Vec<Arc<RecordBatch>>> = Vec::with_capacity(left.num_partitions());
    for p in 0..left.num_partitions() {
        let row_fallback = |parts: &mut Vec<Vec<Arc<RecordBatch>>>| {
            let rows = rowref::hash_join_rows(
                &left.partition_rows(p),
                &right.partition_rows(p),
                kind,
                left_keys,
                right_keys,
                rwidth,
            );
            parts.push(batches_from_rows(rows));
        };
        let (Some(lb), Some(rb)) = (left.partition_as_batch(p), right.partition_as_batch(p)) else {
            row_fallback(&mut parts); // ragged partition
            continue;
        };
        // LeftOuter pads unmatched rows to the right *schema* width; when the
        // physical width disagrees (or the right side is empty, width 0),
        // only the row kernel reproduces that padding.
        if kind == JoinKind::LeftOuter && rb.width() != rwidth {
            row_fallback(&mut parts);
            continue;
        }
        parts.push(hash_join_batch(&lb, &rb, kind, left_keys, right_keys));
    }
    Ok(Table::from_batches(
        out_schema.clone(),
        parts,
        join_props(left),
    ))
}

/// Right-side groups of row indices plus, per left row, the matching group.
type BuildProbe = (Vec<Vec<u32>>, Vec<Option<u32>>);

/// Build/probe grouping: distinct non-NULL right keys get a group of right
/// row indices (arrival order); each left row resolves to its group or none.
fn build_probe<K: std::hash::Hash + Eq>(
    rrows: usize,
    lrows: usize,
    rkey: impl Fn(usize) -> Option<K>,
    lkey: impl Fn(usize) -> Option<K>,
) -> BuildProbe {
    let mut map: HashMap<K, u32> = HashMap::new();
    let mut groups: Vec<Vec<u32>> = Vec::new();
    for i in 0..rrows {
        if let Some(k) = rkey(i) {
            let gid = *map.entry(k).or_insert_with(|| {
                groups.push(Vec::new());
                (groups.len() - 1) as u32
            });
            groups[gid as usize].push(i as u32);
        }
    }
    let lgroup = (0..lrows)
        .map(|i| lkey(i).and_then(|k| map.get(&k).copied()))
        .collect();
    (groups, lgroup)
}

/// Monomorphized i64 build/probe with the same group-id contract as
/// [`build_probe`] (build groups in right arrival order, NULL keys never
/// match). Small build-key ranges use a direct-address table so the probe
/// is an array lookup per left row instead of a hash.
fn build_probe_ints(
    rrows: usize,
    lrows: usize,
    rkey: impl Fn(usize) -> i64,
    rnull: impl Fn(usize) -> bool,
    lkey: impl Fn(usize) -> i64,
    lnull: impl Fn(usize) -> bool,
) -> BuildProbe {
    let (mut lo, mut hi, mut any) = (i64::MAX, i64::MIN, false);
    for i in 0..rrows {
        if !rnull(i) {
            let v = rkey(i);
            lo = lo.min(v);
            hi = hi.max(v);
            any = true;
        }
    }
    let range = if any { (hi - lo) as u128 + 1 } else { 0 };
    if range <= (rrows as u128) * 4 + 1024 && range <= 1 << 21 {
        let mut table = vec![u32::MAX; range as usize];
        let mut groups: Vec<Vec<u32>> = Vec::new();
        for i in 0..rrows {
            if rnull(i) {
                continue;
            }
            let slot = (rkey(i) - lo) as usize;
            if table[slot] == u32::MAX {
                table[slot] = groups.len() as u32;
                groups.push(Vec::new());
            }
            groups[table[slot] as usize].push(i as u32);
        }
        let lgroup = (0..lrows)
            .map(|i| {
                if lnull(i) {
                    return None;
                }
                let k = lkey(i);
                if k < lo || k > hi {
                    return None;
                }
                let g = table[(k - lo) as usize];
                (g != u32::MAX).then_some(g)
            })
            .collect();
        (groups, lgroup)
    } else {
        build_probe(
            rrows,
            lrows,
            |i| (!rnull(i)).then(|| rkey(i)),
            |i| (!lnull(i)).then(|| lkey(i)),
        )
    }
}

fn hash_join_batch(
    lb: &RecordBatch,
    rb: &RecordBatch,
    kind: JoinKind,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Vec<Arc<RecordBatch>> {
    let lrows = lb.num_rows();
    if lrows == 0 {
        return Vec::new();
    }
    let rrows = rb.num_rows();

    // Typed single-key fast path: both sides must be the *same* concrete
    // type — Value equality is cross-type for numerics, but a typed column
    // never mixes types, so same-variant i64 equality is exact. An empty
    // right side may be a zero-width batch whose key columns don't exist;
    // the row kernel never touches right keys then, so neither may we.
    let typed: Option<BuildProbe> = if let (true, [lk], [rk]) = (rrows > 0, left_keys, right_keys) {
        match (lb.column(*lk).as_ref(), rb.column(*rk).as_ref()) {
            (
                ColumnVector::Int {
                    data: ld,
                    nulls: ln,
                },
                ColumnVector::Int {
                    data: rd,
                    nulls: rn,
                },
            ) => Some(build_probe_ints(
                rrows,
                lrows,
                |i| rd[i],
                null_at(rn),
                |i| ld[i],
                null_at(ln),
            )),
            (
                ColumnVector::Date {
                    data: ld,
                    nulls: ln,
                },
                ColumnVector::Date {
                    data: rd,
                    nulls: rn,
                },
            ) => Some(build_probe_ints(
                rrows,
                lrows,
                |i| rd[i] as i64,
                null_at(rn),
                |i| ld[i] as i64,
                null_at(ln),
            )),
            _ => None,
        }
    } else {
        None
    };
    let (groups, lgroup) = typed.unwrap_or_else(|| {
        let key_of = |b: &RecordBatch, keys: &[usize], i: usize| -> Option<Vec<Value>> {
            let key: Vec<Value> = keys.iter().map(|&k| b.cell(i, k).to_value()).collect();
            if key.iter().any(Value::is_null) {
                None
            } else {
                Some(key)
            }
        };
        build_probe(
            rrows,
            lrows,
            |i| key_of(rb, right_keys, i),
            |i| key_of(lb, left_keys, i),
        )
    });

    // Emit phase: index pairs, then one gather per side.
    let batch = match kind {
        JoinKind::LeftSemi => {
            let sel: Vec<usize> = (0..lrows).filter(|&i| lgroup[i].is_some()).collect();
            if sel.is_empty() {
                return Vec::new();
            }
            lb.take(&sel)
        }
        JoinKind::Inner => {
            let mut lidx = Vec::new();
            let mut ridx = Vec::new();
            for (i, g) in lgroup.iter().enumerate() {
                if let Some(g) = g {
                    for &r in &groups[*g as usize] {
                        lidx.push(i);
                        ridx.push(r as usize);
                    }
                }
            }
            if lidx.is_empty() {
                return Vec::new();
            }
            let mut cols: Vec<Arc<ColumnVector>> = lb
                .columns()
                .iter()
                .map(|c| Arc::new(c.take(&lidx)))
                .collect();
            cols.extend(rb.columns().iter().map(|c| Arc::new(c.take(&ridx))));
            RecordBatch::new(cols, lidx.len())
        }
        JoinKind::LeftOuter => {
            let mut lidx = Vec::new();
            let mut ridx: Vec<Option<usize>> = Vec::new();
            for (i, g) in lgroup.iter().enumerate() {
                match g {
                    Some(g) => {
                        for &r in &groups[*g as usize] {
                            lidx.push(i);
                            ridx.push(Some(r as usize));
                        }
                    }
                    None => {
                        lidx.push(i);
                        ridx.push(None);
                    }
                }
            }
            let mut cols: Vec<Arc<ColumnVector>> = lb
                .columns()
                .iter()
                .map(|c| Arc::new(c.take(&lidx)))
                .collect();
            cols.extend(rb.columns().iter().map(|c| Arc::new(c.take_opt(&ridx))));
            RecordBatch::new(cols, lidx.len())
        }
    };
    vec![Arc::new(batch)]
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::multiset_checksum;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::op::WindowFunc;
    use scope_plan::{DataType, Expr, PlanBuilder, SortKey, Udo, UdoKind};

    fn storage_with(rows: Vec<Row>, schema: Schema) -> StorageManager {
        let s = StorageManager::new();
        s.put_dataset(DatasetId::new(1), Table::single(schema, rows));
        s
    }

    fn kv_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn kv_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
            .collect()
    }

    fn run(graph: &QueryGraph, storage: &StorageManager) -> ExecOutcome {
        execute_plan(graph, storage, &CostModel::default(), SimTime::ZERO).unwrap()
    }

    #[test]
    fn scan_filter_output() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s, Expr::col(0).eq(Expr::lit(2i64)));
        let g = b.output(f, "o").build().unwrap();
        let out = run(&g, &storage);
        assert_eq!(out.outputs["o"].num_rows(), 20);
        assert_eq!(out.node_stats[0].in_rows, 100);
        assert_eq!(out.node_stats[1].out_rows, 20);
        assert!(out.total_cpu() > SimDuration::ZERO);
    }

    #[test]
    fn hash_aggregate_groups() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let a = b.aggregate(
            s,
            vec![0],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum", AggFunc::Sum, 1),
                AggExpr::new("mx", AggFunc::Max, 1),
            ],
        );
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        let result = &out.outputs["o"];
        assert_eq!(result.num_rows(), 5);
        for row in result.iter_rows() {
            assert_eq!(row[1], Value::Int(20)); // 20 rows per key
            let k = row[0].as_i64().unwrap();
            // sum of k, k+5, ..., k+95 = 20k + 5*(0+..+19)*? -> compute:
            let expect: i64 = (0..100).filter(|i| i % 5 == k).sum();
            assert_eq!(row[2], Value::Int(expect));
            assert_eq!(row[3], Value::Int(95 + k)); // max element ≡ k mod 5
        }
    }

    #[test]
    fn stream_vs_hash_aggregate_agree_on_sorted_input() {
        let rows = kv_rows(60);
        let storage = storage_with(rows, kv_schema());
        let aggs = vec![
            AggExpr::new("cnt", AggFunc::Count, 1),
            AggExpr::new("avg", AggFunc::Avg, 1),
            AggExpr::new("cd", AggFunc::CountDistinct, 1),
        ];
        let build = |implementation| {
            let mut b = PlanBuilder::new();
            let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
            let sorted = b.sort(s, SortOrder::asc(&[0]));
            let a = b.aggregate(sorted, vec![0], aggs.clone());
            let g = b.output(a, "o").build().unwrap();
            // Patch implementation.
            let mut g2 = g.clone();
            if let Operator::Aggregate {
                implementation: impl_,
                ..
            } = &mut g2.node_mut(a).unwrap().op
            {
                *impl_ = implementation;
            }
            g2
        };
        let hash_out = run(&build(AggImpl::Hash), &storage);
        let stream_out = run(&build(AggImpl::Stream), &storage);
        assert_eq!(
            multiset_checksum(&hash_out.outputs["o"]),
            multiset_checksum(&stream_out.outputs["o"])
        );
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let storage = storage_with(vec![], kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let a = b.aggregate(
            s,
            vec![],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 0),
                AggExpr::new("sum", AggFunc::Sum, 1),
            ],
        );
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        let rows = out.outputs["o"].all_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[0][1], Value::Null);
    }

    #[test]
    fn exchange_then_aggregate_partitioned() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let a = b.aggregate(ex, vec![0], vec![AggExpr::new("cnt", AggFunc::Count, 1)]);
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        // Co-partitioned: aggregate per-partition is globally correct.
        assert_eq!(out.outputs["o"].num_rows(), 5);
        for row in out.outputs["o"].iter_rows() {
            assert_eq!(row[1], Value::Int(20));
        }
    }

    #[test]
    fn joins_inner_outer_semi() {
        let storage = StorageManager::new();
        storage.put_dataset(
            DatasetId::new(1),
            Table::single(
                kv_schema(),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        storage.put_dataset(
            DatasetId::new(2),
            Table::single(
                kv_schema(),
                vec![
                    vec![Value::Int(2), Value::Int(200)],
                    vec![Value::Int(2), Value::Int(201)],
                    vec![Value::Int(3), Value::Int(300)],
                ],
            ),
        );
        let build = |kind| {
            let mut b = PlanBuilder::new();
            let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
            let r = b.table_scan(DatasetId::new(2), "r", kv_schema());
            let j = b.join(l, r, kind, vec![0], vec![0]);
            b.output(j, "o").build().unwrap()
        };
        let inner = run(&build(JoinKind::Inner), &storage);
        assert_eq!(inner.outputs["o"].num_rows(), 3); // k=2 x2, k=3 x1
        let outer = run(&build(JoinKind::LeftOuter), &storage);
        assert_eq!(outer.outputs["o"].num_rows(), 4); // + unmatched k=1
        let padded: Vec<_> = outer.outputs["o"]
            .iter_rows()
            .filter(|r| r[2].is_null())
            .collect();
        assert_eq!(padded.len(), 1);
        let semi = run(&build(JoinKind::LeftSemi), &storage);
        assert_eq!(semi.outputs["o"].num_rows(), 2); // k=2 and k=3 once
        assert_eq!(semi.outputs["o"].schema.len(), 2);
    }

    #[test]
    fn null_keys_never_join() {
        let storage = StorageManager::new();
        storage.put_dataset(
            DatasetId::new(1),
            Table::single(kv_schema(), vec![vec![Value::Null, Value::Int(1)]]),
        );
        storage.put_dataset(
            DatasetId::new(2),
            Table::single(kv_schema(), vec![vec![Value::Null, Value::Int(2)]]),
        );
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
        let r = b.table_scan(DatasetId::new(2), "r", kv_schema());
        let j = b.join(l, r, JoinKind::Inner, vec![0], vec![0]);
        let g = b.output(j, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 0);
    }

    #[test]
    fn top_is_global_and_sorted() {
        let storage = storage_with(kv_rows(50), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let gathered = b.exchange(ex, Partitioning::Single);
        let t = b.top(gathered, 3, SortOrder(vec![SortKey::desc(1)]));
        let g = b.output(t, "o").build().unwrap();
        let rows = run(&g, &storage).outputs["o"].all_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], Value::Int(49));
        assert_eq!(rows[1][1], Value::Int(48));
        assert_eq!(rows[2][1], Value::Int(47));
    }

    #[test]
    fn window_row_number_and_rank() {
        let schema = kv_schema();
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(20)],
            vec![Value::Int(2), Value::Int(5)],
        ];
        let storage = storage_with(rows, schema.clone());
        let build = |func| {
            let mut b = PlanBuilder::new();
            let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
            let sorted = b.sort(s, SortOrder::asc(&[0, 1]));
            let w = b.window(sorted, func, vec![0], SortOrder::asc(&[1]));
            b.output(w, "o").build().unwrap()
        };
        let rn = run(&build(WindowFunc::RowNumber), &storage);
        let rows: Vec<_> = rn.outputs["o"].all_rows();
        assert_eq!(rows[0][2], Value::Int(1));
        assert_eq!(rows[1][2], Value::Int(2));
        assert_eq!(rows[2][2], Value::Int(3));
        assert_eq!(rows[3][2], Value::Int(1)); // new partition
        let rk = run(&build(WindowFunc::Rank), &storage);
        let rows: Vec<_> = rk.outputs["o"].all_rows();
        assert_eq!(rows[0][2], Value::Int(1));
        assert_eq!(rows[1][2], Value::Int(1)); // tie
        assert_eq!(rows[2][2], Value::Int(3)); // gap
    }

    #[test]
    fn process_and_reduce_udos() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("text", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::Str("a b".into())],
            vec![Value::Int(2), Value::Str("c".into())],
        ];
        let storage = storage_with(rows, schema.clone());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema);
        let p = b.process(s, Udo::new(UdoKind::Tokenize { col: 1 }, "L", "1"));
        let g = b.output(p, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 3);
    }

    #[test]
    fn view_get_reads_store_and_respects_expiry() {
        use crate::storage::{ViewFile, ViewMeta};
        use scope_common::sip128;
        use std::sync::Arc;
        let storage = StorageManager::new();
        let table = Table::single(kv_schema(), kv_rows(10));
        let sig = sip128(b"view");
        storage
            .publish_view(ViewFile {
                table: Arc::new(table),
                props: PhysicalProps::single(),
                meta: ViewMeta {
                    precise: sig,
                    normalized: sip128(b"n"),
                    producer: scope_common::ids::JobId::new(1),
                    created_at: SimTime::ZERO,
                    expires_at: SimTime(100),
                    rows: 10,
                    bytes: 100,
                },
            })
            .unwrap();
        let mut g = QueryGraph::new();
        let v = g
            .add(
                Operator::ViewGet {
                    view_sig: sig,
                    schema: kv_schema(),
                    props: PhysicalProps::single(),
                },
                vec![],
            )
            .unwrap();
        let o = g
            .add(
                Operator::Output {
                    name: "o".into(),
                    stored: false,
                },
                vec![v],
            )
            .unwrap();
        g.add_root(o).unwrap();
        let out = execute_plan(&g, &storage, &CostModel::default(), SimTime(50)).unwrap();
        assert_eq!(out.outputs["o"].num_rows(), 10);
        // Past expiry it errors.
        let err = execute_plan(&g, &storage, &CostModel::default(), SimTime(100)).unwrap_err();
        assert_eq!(err.kind(), "view_unavailable");
        assert!(err.is_degradable());
    }

    #[test]
    fn union_all_concats() {
        let storage = storage_with(kv_rows(10), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let u = b.union_all(vec![s1, s2]);
        let g = b.output(u, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 20);
    }

    #[test]
    fn combine_merges_streams() {
        let storage = storage_with(kv_rows(6), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let c = b.combine(s1, s2, Udo::new(UdoKind::MergeStreams, "L", "1"));
        let g = b.output(c, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 12);
    }

    #[test]
    fn sequence_takes_last() {
        let storage = storage_with(kv_rows(4), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s2, Expr::col(1).lt(Expr::lit(2i64)));
        let seq = b.sequence(vec![s1, f]);
        let g = b.output(seq, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 2);
    }

    #[test]
    fn stats_subgraph_cpu_partial() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s, Expr::col(0).gt(Expr::lit(0i64)));
        let g = b.output(f, "o").build().unwrap();
        let out = run(&g, &storage);
        let sub = out.subgraph_cpu(&g, NodeId::new(1));
        assert!(sub > SimDuration::ZERO);
        assert!(sub < out.total_cpu());
    }
}
