//! The row-at-a-time physical executor.
//!
//! [`execute_plan`] runs an optimized plan bottom-up against the
//! [`StorageManager`], producing the output table of every node plus the
//! per-node runtime statistics ([`NodeRuntimeStats`]) that feed the
//! CloudViews feedback loop: rows, bytes, and exclusive CPU from the
//! calibrated [`CostModel`].
//!
//! The executor trusts the optimizer's property enforcement: group-wise
//! operators assume their input is co-partitioned (and, for stream variants,
//! sorted) on the keys. [`super::optimizer`] guarantees this; the
//! correctness property tests cross-check by comparing against
//! single-partition reference runs.

use std::collections::HashMap;

use scope_common::ids::NodeId;
use scope_common::time::{SimDuration, SimTime};
use scope_common::{Result, ScopeError};
use scope_plan::op::{AggImpl, WindowFunc};
use scope_plan::{
    AggExpr, AggFunc, JoinImpl, JoinKind, Operator, Partitioning, PhysicalProps, QueryGraph,
    Schema, SortOrder, Value,
};

use crate::cost::CostModel;
use crate::data::{compare_rows, sort_rows, Row, Table};
use crate::storage::StorageManager;

/// Observed execution statistics of one plan node.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct NodeRuntimeStats {
    /// Rows consumed (sum over inputs; scanned rows for leaves).
    pub in_rows: u64,
    /// Rows produced.
    pub out_rows: u64,
    /// Bytes produced.
    pub out_bytes: u64,
    /// Exclusive CPU attributed to this node.
    pub exclusive_cpu: SimDuration,
}

/// Result of executing a plan: every node's output and statistics.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Output table per node (same indexing as the graph arena).
    pub node_tables: Vec<Table>,
    /// Runtime statistics per node.
    pub node_stats: Vec<NodeRuntimeStats>,
    /// Terminal outputs by name (gathered single-partition tables).
    pub outputs: HashMap<String, Table>,
}

impl ExecOutcome {
    /// Total exclusive CPU across all nodes.
    pub fn total_cpu(&self) -> SimDuration {
        self.node_stats.iter().map(|s| s.exclusive_cpu).sum()
    }

    /// Cumulative CPU of the subgraph rooted at `root`.
    pub fn subgraph_cpu(&self, graph: &QueryGraph, root: NodeId) -> SimDuration {
        graph
            .subgraph_nodes(root)
            .map(|ids| {
                ids.iter()
                    .map(|id| self.node_stats[id.index()].exclusive_cpu)
                    .sum()
            })
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Executes `graph` against `storage`, charging costs with `model`.
///
/// `now` is the simulated time at which view reads are checked for expiry.
pub fn execute_plan(
    graph: &QueryGraph,
    storage: &StorageManager,
    model: &CostModel,
    now: SimTime,
) -> Result<ExecOutcome> {
    let mut tables: Vec<Table> = Vec::with_capacity(graph.len());
    let mut stats: Vec<NodeRuntimeStats> = Vec::with_capacity(graph.len());
    let mut outputs = HashMap::new();
    let schemas = graph.validate()?;

    for node in graph.nodes() {
        let child_tables: Vec<&Table> = node.children.iter().map(|c| &tables[c.index()]).collect();
        let in_rows: u64 = child_tables.iter().map(|t| t.num_rows() as u64).sum();
        let out_schema = &schemas[node.id.index()];
        let (table, scanned) = exec_node(&node.op, &child_tables, out_schema, storage, now)?;
        let out_rows = table.num_rows() as u64;
        let out_bytes = table.num_bytes();
        let effective_in = if node.children.is_empty() {
            scanned
        } else {
            in_rows
        };
        let cpu = model.op_cpu(&node.op, effective_in, out_rows, out_bytes);
        if let Operator::Output { name, .. } = &node.op {
            outputs.insert(name.as_str().to_string(), table.gather());
        }
        stats.push(NodeRuntimeStats {
            in_rows: effective_in,
            out_rows,
            out_bytes,
            exclusive_cpu: cpu,
        });
        tables.push(table);
    }

    Ok(ExecOutcome {
        node_tables: tables,
        node_stats: stats,
        outputs,
    })
}

/// Executes one operator. Returns the output table and, for leaves, the
/// number of rows scanned (pre-predicate).
fn exec_node(
    op: &Operator,
    inputs: &[&Table],
    out_schema: &Schema,
    storage: &StorageManager,
    now: SimTime,
) -> Result<(Table, u64)> {
    let one = || -> Result<&Table> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| ScopeError::Execution(format!("{} executed without input", op.kind())))
    };
    match op {
        Operator::Get {
            dataset,
            kind,
            predicate,
            extractor,
            ..
        } => {
            let stored = storage.dataset(*dataset)?;
            let scanned = stored.num_rows() as u64;
            let mut partitions: Vec<Vec<Row>> = Vec::with_capacity(stored.num_partitions());
            for part in &stored.partitions {
                let mut out_part: Vec<Row> = Vec::new();
                for row in part {
                    if let Some(pred) = predicate {
                        if !pred.eval(row)?.is_true() {
                            continue;
                        }
                    }
                    match kind {
                        scope_plan::ScanKind::Extract => {
                            let udo = extractor.as_ref().ok_or_else(|| {
                                ScopeError::Execution("extract scan without extractor".into())
                            })?;
                            udo.process_row(row, &mut out_part)?;
                        }
                        _ => out_part.push(row.clone()),
                    }
                }
                partitions.push(out_part);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: stored.props.clone(),
                },
                scanned,
            ))
        }
        Operator::ViewGet { view_sig, .. } => {
            // Integrity-verified read: a lost or corrupted file surfaces as
            // ViewUnavailable, which the CloudViews runtime absorbs by
            // falling back to recomputation.
            let file = storage.open_view(*view_sig, now)?;
            let scanned = file.table.num_rows() as u64;
            Ok(((*file.table).clone(), scanned))
        }
        Operator::Filter { predicate } => {
            let input = one()?;
            let mut partitions = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                let mut out = Vec::new();
                for row in part {
                    if predicate.eval(row)?.is_true() {
                        out.push(row.clone());
                    }
                }
                partitions.push(out);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: input.props.clone(),
                },
                0,
            ))
        }
        Operator::Project { exprs } => {
            let input = one()?;
            let mut partitions = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                let mut out = Vec::with_capacity(part.len());
                for row in part {
                    let new_row: Result<Row> = exprs.iter().map(|ne| ne.expr.eval(row)).collect();
                    out.push(new_row?);
                }
                partitions.push(out);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Remap { cols, .. } => {
            let input = one()?;
            let partitions = input
                .partitions
                .iter()
                .map(|part| {
                    part.iter()
                        .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
                        .collect()
                })
                .collect();
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Sort { order } => {
            let input = one()?;
            Ok((input.sort_partitions(order), 0))
        }
        Operator::Exchange { scheme } => {
            let input = one()?;
            let out = match scheme {
                Partitioning::Hash { cols, parts } => input.hash_repartition(cols, *parts)?,
                Partitioning::Range { col, parts } => input.range_repartition(*col, *parts)?,
                Partitioning::RoundRobin { parts } => input.round_robin_repartition(*parts)?,
                Partitioning::Single => input.gather(),
                Partitioning::Any => input.clone(),
            };
            Ok((out, 0))
        }
        Operator::Aggregate {
            keys,
            aggs,
            implementation,
        } => {
            let input = one()?;
            let mut partitions: Vec<Vec<Row>> = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                let rows = match implementation {
                    AggImpl::Hash => hash_aggregate(part, keys, aggs)?,
                    AggImpl::Stream => stream_aggregate(part, keys, aggs)?,
                };
                partitions.push(rows);
            }
            // Global aggregate over an empty input emits exactly one row.
            if keys.is_empty() {
                let total: usize = partitions.iter().map(Vec::len).sum();
                if total == 0 && !partitions.is_empty() {
                    partitions[0].push(empty_global_agg_row(aggs));
                }
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Top { n, order } => {
            let input = one()?;
            let mut rows = input.all_rows();
            // Deterministic top-N: ties under the requested order are broken
            // by full-row comparison, so the result is independent of the
            // physical arrival order (and hence of view reuse).
            rows.sort_by(|a, b| compare_rows(a, b, order).then_with(|| a.cmp(b)));
            rows.truncate(*n);
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions: vec![rows],
                    props: PhysicalProps {
                        partitioning: Partitioning::Single,
                        sort: order.clone(),
                    },
                },
                0,
            ))
        }
        Operator::Window {
            func,
            partition,
            order,
        } => {
            let input = one()?;
            let mut partitions = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                partitions.push(exec_window(part, func, partition, order)?);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Process { udo } => {
            let input = one()?;
            let mut partitions = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                let mut out = Vec::new();
                for row in part {
                    udo.process_row(row, &mut out)?;
                }
                partitions.push(out);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Reduce { udo, keys } | Operator::GbApply { udo, keys } => {
            let input = one()?;
            let mut partitions = Vec::with_capacity(input.num_partitions());
            for part in &input.partitions {
                let mut out = Vec::new();
                for group in key_runs(part, keys) {
                    udo.reduce_group(group, &mut out)?;
                }
                partitions.push(out);
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Spool | Operator::Nop => Ok((one()?.clone(), 0)),
        Operator::Sequence => {
            let last = inputs.last().copied().ok_or_else(|| {
                ScopeError::Execution("Sequence executed without children".into())
            })?;
            Ok((last.clone(), 0))
        }
        Operator::Join {
            kind,
            implementation,
            left_keys,
            right_keys,
        } => {
            let left = inputs[0];
            let right = inputs[1];
            let table = exec_join(
                left,
                right,
                *kind,
                *implementation,
                left_keys,
                right_keys,
                out_schema,
            )?;
            Ok((table, 0))
        }
        Operator::UnionAll => {
            let mut partitions = Vec::new();
            for t in inputs {
                partitions.extend(t.partitions.iter().cloned());
            }
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions,
                    props: PhysicalProps::any(),
                },
                0,
            ))
        }
        Operator::Combine { udo } => {
            // Both sides gathered single (enforced); the toy combiner sorts
            // both by column 0 and concatenates.
            let mut left = inputs[0].all_rows();
            let mut right = inputs[1].all_rows();
            if !matches!(udo.kind, scope_plan::UdoKind::MergeStreams) {
                return Err(ScopeError::Execution(format!(
                    "{} is not a combiner",
                    udo.kind.name()
                )));
            }
            let order = SortOrder::asc(&[0]);
            sort_rows(&mut left, &order);
            sort_rows(&mut right, &order);
            left.extend(right);
            Ok((
                Table {
                    schema: out_schema.clone(),
                    partitions: vec![left],
                    props: PhysicalProps::single(),
                },
                0,
            ))
        }
        Operator::Output { .. } => {
            let input = one()?;
            Ok((input.gather(), 0))
        }
    }
}

/// Aggregate accumulator for one group.
///
/// Float sums are accumulated as a value list and added in a *deterministic
/// order* at finish time: IEEE addition is not associative, so summing in
/// physical arrival order would make results depend on partitioning — and a
/// view-fed plan (different partition order) could differ from the baseline
/// in the last ulp. Integer sums stay incremental.
#[derive(Clone, Debug)]
struct Acc {
    count: u64,
    int_sum: i64,
    float_values: Vec<f64>,
    sum_is_float: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: std::collections::HashSet<Value>,
    non_null: u64,
}

impl Acc {
    fn new() -> Self {
        Acc {
            count: 0,
            int_sum: 0,
            float_values: Vec::new(),
            sum_is_float: false,
            min: None,
            max: None,
            distinct: std::collections::HashSet::new(),
            non_null: 0,
        }
    }

    fn update(&mut self, func: AggFunc, v: &Value) {
        self.count += 1;
        if v.is_null() {
            return;
        }
        self.non_null += 1;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Float(f) => {
                    self.sum_is_float = true;
                    self.float_values.push(*f);
                }
                other => {
                    if let Some(x) = other.as_i64() {
                        self.int_sum = self.int_sum.wrapping_add(x);
                    }
                }
            },
            AggFunc::Min => {
                if self.min.as_ref().map(|m| v < m).unwrap_or(true) {
                    self.min = Some(v.clone());
                }
            }
            AggFunc::Max => {
                if self.max.as_ref().map(|m| v > m).unwrap_or(true) {
                    self.max = Some(v.clone());
                }
            }
            AggFunc::CountDistinct => {
                self.distinct.insert(v.clone());
            }
        }
    }

    /// Order-insensitive float total: sort by IEEE total order, then add.
    fn float_total(&self) -> f64 {
        let mut vals = self.float_values.clone();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.iter().sum::<f64>() + self.int_sum as f64
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.sum_is_float {
                    Value::Float(self.float_total())
                } else {
                    Value::Int(self.int_sum)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    Value::Float(self.float_total() / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::CountDistinct => Value::Int(self.distinct.len() as i64),
        }
    }
}

fn agg_row(key: &[Value], accs: &[Acc], aggs: &[AggExpr]) -> Row {
    let mut row: Row = key.to_vec();
    for (acc, a) in accs.iter().zip(aggs) {
        row.push(acc.finish(a.func));
    }
    row
}

fn empty_global_agg_row(aggs: &[AggExpr]) -> Row {
    let accs: Vec<Acc> = aggs.iter().map(|_| Acc::new()).collect();
    agg_row(&[], &accs, aggs)
}

fn hash_aggregate(rows: &[Row], keys: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let key: Vec<Value> = keys.iter().map(|&k| row[k].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            aggs.iter().map(|_| Acc::new()).collect()
        });
        for (acc, a) in accs.iter_mut().zip(aggs) {
            acc.update(a.func, &row[a.input.min(row.len() - 1)]);
        }
    }
    Ok(order
        .into_iter()
        .map(|key| {
            let accs = &groups[&key];
            agg_row(&key, accs, aggs)
        })
        .collect())
}

fn stream_aggregate(rows: &[Row], keys: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for group in key_runs(rows, keys) {
        let mut accs: Vec<Acc> = aggs.iter().map(|_| Acc::new()).collect();
        for row in group {
            for (acc, a) in accs.iter_mut().zip(aggs) {
                acc.update(a.func, &row[a.input.min(row.len() - 1)]);
            }
        }
        let key: Vec<Value> = keys.iter().map(|&k| group[0][k].clone()).collect();
        out.push(agg_row(&key, &accs, aggs));
    }
    Ok(out)
}

/// Splits sorted rows into maximal runs of equal keys. For unsorted input
/// this still groups *adjacent* equal keys only — callers needing full
/// grouping must sort first (the optimizer's enforcers do).
fn key_runs<'a>(rows: &'a [Row], keys: &'a [usize]) -> impl Iterator<Item = &'a [Row]> + 'a {
    let mut start = 0;
    std::iter::from_fn(move || {
        if start >= rows.len() {
            return None;
        }
        let mut end = start + 1;
        while end < rows.len() && keys.iter().all(|&k| rows[end][k] == rows[start][k]) {
            end += 1;
        }
        let run = &rows[start..end];
        start = end;
        Some(run)
    })
}

fn exec_window(
    rows: &[Row],
    func: &WindowFunc,
    partition: &[usize],
    order: &SortOrder,
) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for group in key_runs(rows, partition) {
        // Deterministic in-group order: the requested order, ties broken by
        // full-row comparison (running sums would otherwise depend on
        // physical arrival order).
        let mut group: Vec<&Row> = group.iter().collect();
        group.sort_by(|a, b| compare_rows(a, b, order).then_with(|| a.cmp(b)));
        let group: Vec<Row> = group.into_iter().cloned().collect();
        let group = &group[..];
        let mut running_sum = 0.0;
        let mut rank = 0usize;
        let mut seen = 0usize;
        let mut prev: Option<&Row> = None;
        for row in group {
            seen += 1;
            let tied = prev
                .map(|p| compare_rows(p, row, order).is_eq())
                .unwrap_or(false);
            if !tied {
                rank = seen;
            }
            let v = match func {
                WindowFunc::RowNumber => Value::Int(seen as i64),
                WindowFunc::Rank => Value::Int(rank as i64),
                WindowFunc::RunningSum(c) => {
                    running_sum += row[*c].as_f64().unwrap_or(0.0);
                    Value::Float(running_sum)
                }
            };
            let mut r = row.clone();
            r.push(v);
            out.push(r);
            prev = Some(row);
        }
    }
    Ok(out)
}

fn exec_join(
    left: &Table,
    right: &Table,
    kind: JoinKind,
    implementation: JoinImpl,
    left_keys: &[usize],
    right_keys: &[usize],
    out_schema: &Schema,
) -> Result<Table> {
    let rwidth = right.schema.len();
    let pairs: Vec<(&Vec<Row>, &Vec<Row>)> = match implementation {
        JoinImpl::Loops => {
            // Right side gathered single (enforced): pair every left
            // partition with the single right partition.
            let rp = right.partitions.first().ok_or_else(|| {
                ScopeError::Execution("loops join with no right partition".into())
            })?;
            left.partitions.iter().map(|lp| (lp, rp)).collect()
        }
        _ => {
            if left.num_partitions() != right.num_partitions() {
                return Err(ScopeError::Execution(format!(
                    "join partition mismatch: {} vs {}",
                    left.num_partitions(),
                    right.num_partitions()
                )));
            }
            left.partitions.iter().zip(&right.partitions).collect()
        }
    };

    let mut partitions = Vec::with_capacity(pairs.len());
    for (lp, rp) in pairs {
        let mut out: Vec<Row> = Vec::new();
        match implementation {
            JoinImpl::Hash | JoinImpl::Merge => {
                // Build on right, probe left (merge implemented as hash for
                // result purposes; cost model differentiates).
                let mut built: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
                for row in rp {
                    let key: Vec<Value> = right_keys.iter().map(|&k| row[k].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue; // NULL keys never join
                    }
                    built.entry(key).or_default().push(row);
                }
                for lrow in lp {
                    let key: Vec<Value> = left_keys.iter().map(|&k| lrow[k].clone()).collect();
                    let matches = if key.iter().any(Value::is_null) {
                        None
                    } else {
                        built.get(&key)
                    };
                    emit_join_rows(lrow, matches.map(|v| v.as_slice()), kind, rwidth, &mut out);
                }
            }
            JoinImpl::Loops => {
                for lrow in lp {
                    let matches: Vec<&Row> = rp
                        .iter()
                        .filter(|rrow| {
                            left_keys
                                .iter()
                                .zip(right_keys)
                                .all(|(&lk, &rk)| !lrow[lk].is_null() && lrow[lk] == rrow[rk])
                        })
                        .collect();
                    let m = if matches.is_empty() {
                        None
                    } else {
                        Some(matches.as_slice())
                    };
                    emit_join_rows(lrow, m, kind, rwidth, &mut out);
                }
            }
        }
        partitions.push(out);
    }
    Ok(Table {
        schema: out_schema.clone(),
        partitions,
        props: PhysicalProps {
            partitioning: left.props.partitioning.clone(),
            sort: SortOrder::none(),
        },
    })
}

fn emit_join_rows(
    lrow: &Row,
    matches: Option<&[&Row]>,
    kind: JoinKind,
    rwidth: usize,
    out: &mut Vec<Row>,
) {
    match (kind, matches) {
        (JoinKind::LeftSemi, Some(m)) if !m.is_empty() => out.push(lrow.clone()),
        (JoinKind::LeftSemi, _) => {}
        (_, Some(m)) if !m.is_empty() => {
            for rrow in m {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
        (JoinKind::LeftOuter, _) => {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat_n(Value::Null, rwidth));
            out.push(row);
        }
        (JoinKind::Inner, _) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::multiset_checksum;
    use scope_common::ids::DatasetId;
    use scope_plan::{DataType, Expr, PlanBuilder, SortKey, Udo, UdoKind};

    fn storage_with(rows: Vec<Row>, schema: Schema) -> StorageManager {
        let s = StorageManager::new();
        s.put_dataset(DatasetId::new(1), Table::single(schema, rows));
        s
    }

    fn kv_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn kv_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i % 5), Value::Int(i)])
            .collect()
    }

    fn run(graph: &QueryGraph, storage: &StorageManager) -> ExecOutcome {
        execute_plan(graph, storage, &CostModel::default(), SimTime::ZERO).unwrap()
    }

    #[test]
    fn scan_filter_output() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s, Expr::col(0).eq(Expr::lit(2i64)));
        let g = b.output(f, "o").build().unwrap();
        let out = run(&g, &storage);
        assert_eq!(out.outputs["o"].num_rows(), 20);
        assert_eq!(out.node_stats[0].in_rows, 100);
        assert_eq!(out.node_stats[1].out_rows, 20);
        assert!(out.total_cpu() > SimDuration::ZERO);
    }

    #[test]
    fn hash_aggregate_groups() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let a = b.aggregate(
            s,
            vec![0],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum", AggFunc::Sum, 1),
                AggExpr::new("mx", AggFunc::Max, 1),
            ],
        );
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        let result = &out.outputs["o"];
        assert_eq!(result.num_rows(), 5);
        for row in result.iter_rows() {
            assert_eq!(row[1], Value::Int(20)); // 20 rows per key
            let k = row[0].as_i64().unwrap();
            // sum of k, k+5, ..., k+95 = 20k + 5*(0+..+19)*? -> compute:
            let expect: i64 = (0..100).filter(|i| i % 5 == k).sum();
            assert_eq!(row[2], Value::Int(expect));
            assert_eq!(row[3], Value::Int(95 + k)); // max element ≡ k mod 5
        }
    }

    #[test]
    fn stream_vs_hash_aggregate_agree_on_sorted_input() {
        let rows = kv_rows(60);
        let storage = storage_with(rows, kv_schema());
        let aggs = vec![
            AggExpr::new("cnt", AggFunc::Count, 1),
            AggExpr::new("avg", AggFunc::Avg, 1),
            AggExpr::new("cd", AggFunc::CountDistinct, 1),
        ];
        let build = |implementation| {
            let mut b = PlanBuilder::new();
            let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
            let sorted = b.sort(s, SortOrder::asc(&[0]));
            let a = b.aggregate(sorted, vec![0], aggs.clone());
            let g = b.output(a, "o").build().unwrap();
            // Patch implementation.
            let mut g2 = g.clone();
            if let Operator::Aggregate {
                implementation: impl_,
                ..
            } = &mut g2.node_mut(a).unwrap().op
            {
                *impl_ = implementation;
            }
            g2
        };
        let hash_out = run(&build(AggImpl::Hash), &storage);
        let stream_out = run(&build(AggImpl::Stream), &storage);
        assert_eq!(
            multiset_checksum(&hash_out.outputs["o"]),
            multiset_checksum(&stream_out.outputs["o"])
        );
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let storage = storage_with(vec![], kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let a = b.aggregate(
            s,
            vec![],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 0),
                AggExpr::new("sum", AggFunc::Sum, 1),
            ],
        );
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        let rows = out.outputs["o"].all_rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[0][1], Value::Null);
    }

    #[test]
    fn exchange_then_aggregate_partitioned() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let a = b.aggregate(ex, vec![0], vec![AggExpr::new("cnt", AggFunc::Count, 1)]);
        let g = b.output(a, "o").build().unwrap();
        let out = run(&g, &storage);
        // Co-partitioned: aggregate per-partition is globally correct.
        assert_eq!(out.outputs["o"].num_rows(), 5);
        for row in out.outputs["o"].iter_rows() {
            assert_eq!(row[1], Value::Int(20));
        }
    }

    #[test]
    fn joins_inner_outer_semi() {
        let storage = StorageManager::new();
        storage.put_dataset(
            DatasetId::new(1),
            Table::single(
                kv_schema(),
                vec![
                    vec![Value::Int(1), Value::Int(10)],
                    vec![Value::Int(2), Value::Int(20)],
                    vec![Value::Int(3), Value::Int(30)],
                ],
            ),
        );
        storage.put_dataset(
            DatasetId::new(2),
            Table::single(
                kv_schema(),
                vec![
                    vec![Value::Int(2), Value::Int(200)],
                    vec![Value::Int(2), Value::Int(201)],
                    vec![Value::Int(3), Value::Int(300)],
                ],
            ),
        );
        let build = |kind| {
            let mut b = PlanBuilder::new();
            let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
            let r = b.table_scan(DatasetId::new(2), "r", kv_schema());
            let j = b.join(l, r, kind, vec![0], vec![0]);
            b.output(j, "o").build().unwrap()
        };
        let inner = run(&build(JoinKind::Inner), &storage);
        assert_eq!(inner.outputs["o"].num_rows(), 3); // k=2 x2, k=3 x1
        let outer = run(&build(JoinKind::LeftOuter), &storage);
        assert_eq!(outer.outputs["o"].num_rows(), 4); // + unmatched k=1
        let padded: Vec<_> = outer.outputs["o"]
            .iter_rows()
            .filter(|r| r[2].is_null())
            .collect();
        assert_eq!(padded.len(), 1);
        let semi = run(&build(JoinKind::LeftSemi), &storage);
        assert_eq!(semi.outputs["o"].num_rows(), 2); // k=2 and k=3 once
        assert_eq!(semi.outputs["o"].schema.len(), 2);
    }

    #[test]
    fn null_keys_never_join() {
        let storage = StorageManager::new();
        storage.put_dataset(
            DatasetId::new(1),
            Table::single(kv_schema(), vec![vec![Value::Null, Value::Int(1)]]),
        );
        storage.put_dataset(
            DatasetId::new(2),
            Table::single(kv_schema(), vec![vec![Value::Null, Value::Int(2)]]),
        );
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
        let r = b.table_scan(DatasetId::new(2), "r", kv_schema());
        let j = b.join(l, r, JoinKind::Inner, vec![0], vec![0]);
        let g = b.output(j, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 0);
    }

    #[test]
    fn top_is_global_and_sorted() {
        let storage = storage_with(kv_rows(50), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let gathered = b.exchange(ex, Partitioning::Single);
        let t = b.top(gathered, 3, SortOrder(vec![SortKey::desc(1)]));
        let g = b.output(t, "o").build().unwrap();
        let rows = run(&g, &storage).outputs["o"].all_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][1], Value::Int(49));
        assert_eq!(rows[1][1], Value::Int(48));
        assert_eq!(rows[2][1], Value::Int(47));
    }

    #[test]
    fn window_row_number_and_rank() {
        let schema = kv_schema();
        let rows = vec![
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(20)],
            vec![Value::Int(2), Value::Int(5)],
        ];
        let storage = storage_with(rows, schema.clone());
        let build = |func| {
            let mut b = PlanBuilder::new();
            let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
            let sorted = b.sort(s, SortOrder::asc(&[0, 1]));
            let w = b.window(sorted, func, vec![0], SortOrder::asc(&[1]));
            b.output(w, "o").build().unwrap()
        };
        let rn = run(&build(WindowFunc::RowNumber), &storage);
        let rows: Vec<_> = rn.outputs["o"].all_rows();
        assert_eq!(rows[0][2], Value::Int(1));
        assert_eq!(rows[1][2], Value::Int(2));
        assert_eq!(rows[2][2], Value::Int(3));
        assert_eq!(rows[3][2], Value::Int(1)); // new partition
        let rk = run(&build(WindowFunc::Rank), &storage);
        let rows: Vec<_> = rk.outputs["o"].all_rows();
        assert_eq!(rows[0][2], Value::Int(1));
        assert_eq!(rows[1][2], Value::Int(1)); // tie
        assert_eq!(rows[2][2], Value::Int(3)); // gap
    }

    #[test]
    fn process_and_reduce_udos() {
        let schema = Schema::from_pairs(&[("id", DataType::Int), ("text", DataType::Str)]);
        let rows = vec![
            vec![Value::Int(1), Value::Str("a b".into())],
            vec![Value::Int(2), Value::Str("c".into())],
        ];
        let storage = storage_with(rows, schema.clone());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema);
        let p = b.process(s, Udo::new(UdoKind::Tokenize { col: 1 }, "L", "1"));
        let g = b.output(p, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 3);
    }

    #[test]
    fn view_get_reads_store_and_respects_expiry() {
        use crate::storage::{ViewFile, ViewMeta};
        use scope_common::sip128;
        use std::sync::Arc;
        let storage = StorageManager::new();
        let table = Table::single(kv_schema(), kv_rows(10));
        let sig = sip128(b"view");
        storage
            .publish_view(ViewFile {
                table: Arc::new(table),
                props: PhysicalProps::single(),
                meta: ViewMeta {
                    precise: sig,
                    normalized: sip128(b"n"),
                    producer: scope_common::ids::JobId::new(1),
                    created_at: SimTime::ZERO,
                    expires_at: SimTime(100),
                    rows: 10,
                    bytes: 100,
                },
            })
            .unwrap();
        let mut g = QueryGraph::new();
        let v = g
            .add(
                Operator::ViewGet {
                    view_sig: sig,
                    schema: kv_schema(),
                    props: PhysicalProps::single(),
                },
                vec![],
            )
            .unwrap();
        let o = g
            .add(
                Operator::Output {
                    name: "o".into(),
                    stored: false,
                },
                vec![v],
            )
            .unwrap();
        g.add_root(o).unwrap();
        let out = execute_plan(&g, &storage, &CostModel::default(), SimTime(50)).unwrap();
        assert_eq!(out.outputs["o"].num_rows(), 10);
        // Past expiry it errors.
        let err = execute_plan(&g, &storage, &CostModel::default(), SimTime(100)).unwrap_err();
        assert_eq!(err.kind(), "view_unavailable");
        assert!(err.is_degradable());
    }

    #[test]
    fn union_all_concats() {
        let storage = storage_with(kv_rows(10), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let u = b.union_all(vec![s1, s2]);
        let g = b.output(u, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 20);
    }

    #[test]
    fn combine_merges_streams() {
        let storage = storage_with(kv_rows(6), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let c = b.combine(s1, s2, Udo::new(UdoKind::MergeStreams, "L", "1"));
        let g = b.output(c, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 12);
    }

    #[test]
    fn sequence_takes_last() {
        let storage = storage_with(kv_rows(4), kv_schema());
        let mut b = PlanBuilder::new();
        let s1 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let s2 = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s2, Expr::col(1).lt(Expr::lit(2i64)));
        let seq = b.sequence(vec![s1, f]);
        let g = b.output(seq, "o").build().unwrap();
        assert_eq!(run(&g, &storage).outputs["o"].num_rows(), 2);
    }

    #[test]
    fn stats_subgraph_cpu_partial() {
        let storage = storage_with(kv_rows(100), kv_schema());
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s, Expr::col(0).gt(Expr::lit(0i64)));
        let g = b.output(f, "o").build().unwrap();
        let out = run(&g, &storage);
        let sub = out.subgraph_cpu(&g, NodeId::new(1));
        assert!(sub > SimDuration::ZERO);
        assert!(sub < out.total_cpu());
    }
}
