//! The cost model and the compile-time estimator.
//!
//! Two distinct things, deliberately kept apart:
//!
//! * [`CostModel`] converts **observed** work (actual row and byte counts
//!   from execution) into simulated CPU time. It is the "ground truth" of
//!   the simulation — the runtime statistics the CloudViews feedback loop
//!   harvests are produced by it.
//! * [`CostEstimator`] is the **compile-time** estimator: it predicts
//!   cardinalities with the naive selectivity constants classical optimizers
//!   use. Its errors (compounding through deep DAGs, opaque user code) are
//!   exactly why the paper's Section 5.1 insists on a feedback loop instead
//!   of what-if estimates. The ablation bench `ablation_feedback` selects
//!   views using this estimator instead of observed statistics and measures
//!   the damage.

use scope_common::time::SimDuration;
use scope_plan::{JoinKind, Operator, QueryGraph, ScanKind};

/// Calibrated per-row/per-byte weights turning observed work into CPU time.
///
/// Units: microseconds of simulated CPU per row (or per KiB where noted).
/// The defaults are chosen so that operator *ratios* mirror the paper's
/// observations (sort and exchange dominate; scans and column remaps are
/// cheap; user code is expensive).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Per-row cost of a scan.
    pub scan_row: f64,
    /// Per-row cost of filter/project/remap/nop-style streaming work.
    pub stream_row: f64,
    /// Per-row cost of hash operations (build+probe amortized).
    pub hash_row: f64,
    /// Per-row×log(rows) cost of sorting.
    pub sort_row_log: f64,
    /// Per-row cost of exchange serialization + routing.
    pub exchange_row: f64,
    /// Per-KiB cost of exchange network transfer.
    pub exchange_kib: f64,
    /// Per-row base cost of user code (multiplied by the UDO's weight).
    pub udo_row: f64,
    /// Per-KiB cost of writing an output or a materialized view.
    pub write_kib: f64,
    /// Per-KiB cost of reading a stored stream or view.
    pub read_kib: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_row: 0.4,
            stream_row: 0.2,
            hash_row: 1.2,
            sort_row_log: 0.35,
            exchange_row: 1.0,
            exchange_kib: 6.0,
            udo_row: 1.0,
            write_kib: 8.0,
            read_kib: 2.5,
        }
    }
}

impl CostModel {
    /// CPU cost of one operator instance having consumed `in_rows` (sum over
    /// inputs), produced `out_rows`, and moved `out_bytes`.
    pub fn op_cpu(
        &self,
        op: &Operator,
        in_rows: u64,
        out_rows: u64,
        out_bytes: u64,
    ) -> SimDuration {
        let n_in = in_rows as f64;
        let n_out = out_rows as f64;
        let kib = out_bytes as f64 / 1024.0;
        let us = match op {
            Operator::Get { kind, .. } => {
                let base = n_out * self.scan_row + kib * self.read_kib;
                match kind {
                    ScanKind::Extract => base + n_out * self.udo_row * 2.0,
                    _ => base,
                }
            }
            Operator::ViewGet { .. } => n_out * self.scan_row * 0.5 + kib * self.read_kib,
            Operator::Filter { .. }
            | Operator::Project { .. }
            | Operator::Remap { .. }
            | Operator::Nop
            | Operator::Spool
            | Operator::Sequence => n_in * self.stream_row,
            Operator::Sort { .. } => n_in * self.sort_row_log * log2(n_in),
            Operator::Top { n, .. } => n_in * self.stream_row + (*n as f64) * self.stream_row,
            Operator::Exchange { .. } => n_in * self.exchange_row + kib * self.exchange_kib,
            Operator::Aggregate { implementation, .. } => match implementation {
                scope_plan::op::AggImpl::Hash => n_in * self.hash_row,
                scope_plan::op::AggImpl::Stream => n_in * self.stream_row * 1.5,
            },
            Operator::Window { .. } => n_in * self.stream_row * 2.0,
            Operator::Process { udo } | Operator::Combine { udo } => {
                n_in * self.udo_row * udo.kind.cost_weight()
            }
            Operator::Reduce { udo, keys: _ } | Operator::GbApply { udo, keys: _ } => {
                n_in * self.udo_row * udo.kind.cost_weight()
            }
            Operator::Join { implementation, .. } => match implementation {
                scope_plan::JoinImpl::Hash => n_in * self.hash_row,
                scope_plan::JoinImpl::Merge => n_in * self.stream_row * 2.0,
                scope_plan::JoinImpl::Loops => {
                    // quadratic-ish: model as n_in * sqrt(n_in)
                    n_in * self.stream_row * (1.0 + n_in.sqrt() * 0.05)
                }
            },
            Operator::UnionAll => n_in * self.stream_row * 0.5,
            Operator::Output { .. } => kib * self.write_kib + n_in * self.stream_row * 0.5,
        };
        SimDuration::from_micros(us.max(0.0).round() as u64)
    }

    /// Extra CPU cost of materializing `bytes` of view output.
    pub fn view_write_cpu(&self, rows: u64, bytes: u64) -> SimDuration {
        let us = bytes as f64 / 1024.0 * self.write_kib + rows as f64 * self.stream_row * 0.5;
        SimDuration::from_micros(us.round() as u64)
    }
}

fn log2(n: f64) -> f64 {
    if n <= 2.0 {
        1.0
    } else {
        n.log2()
    }
}

/// Naive compile-time cardinality and cost estimation.
///
/// Selectivity constants in the grand System-R tradition; user code is a
/// complete guess. Estimation error against [`CostModel`]-measured truth is
/// the gap the feedback loop closes.
#[derive(Clone, Debug)]
pub struct CostEstimator {
    /// Assumed filter selectivity.
    pub filter_selectivity: f64,
    /// Assumed aggregation output fraction exponent: out = in^exp.
    pub agg_exponent: f64,
    /// Assumed join expansion: out = max(l, r) * factor.
    pub join_factor: f64,
    /// Assumed rows emitted per input row by user code.
    pub udo_fanout: f64,
    /// Assumed average row width in bytes (for byte estimates).
    pub row_bytes: f64,
    /// The cost weights (shared with the truth model, so estimation error
    /// comes from cardinalities — the dominant real-world term).
    pub weights: CostModel,
}

impl Default for CostEstimator {
    fn default() -> Self {
        CostEstimator {
            filter_selectivity: 1.0 / 3.0,
            agg_exponent: 0.7,
            join_factor: 1.0,
            udo_fanout: 1.0,
            row_bytes: 64.0,
            weights: CostModel::default(),
        }
    }
}

/// Per-node compile-time estimates.
#[derive(Clone, Debug, Default)]
pub struct PlanEstimates {
    /// Estimated output rows per node.
    pub rows: Vec<f64>,
    /// Estimated CPU microseconds per node (exclusive).
    pub cpu_us: Vec<f64>,
}

impl PlanEstimates {
    /// Estimated total plan cost (sum of exclusive node costs).
    pub fn total_cpu_us(&self) -> f64 {
        self.cpu_us.iter().sum()
    }

    /// Estimated cumulative cost of the subgraph rooted at `root`.
    pub fn subgraph_cpu_us(&self, graph: &QueryGraph, root: scope_common::ids::NodeId) -> f64 {
        graph
            .subgraph_nodes(root)
            .map(|ids| ids.iter().map(|id| self.cpu_us[id.index()]).sum())
            .unwrap_or(0.0)
    }
}

impl CostEstimator {
    /// Estimates cardinalities and costs for every node of `graph`, given a
    /// base-table row-count oracle (`None` ⇒ guess 10⁵ rows — unstructured
    /// inputs often have no statistics at all, per the paper).
    pub fn estimate(
        &self,
        graph: &QueryGraph,
        base_rows: &dyn Fn(&Operator) -> Option<u64>,
    ) -> PlanEstimates {
        let mut rows: Vec<f64> = Vec::with_capacity(graph.len());
        let mut cpu: Vec<f64> = Vec::with_capacity(graph.len());
        for node in graph.nodes() {
            let in_rows: f64 = node.children.iter().map(|c| rows[c.index()]).sum();
            let first_in: f64 = node
                .children
                .first()
                .map(|c| rows[c.index()])
                .unwrap_or(0.0);
            let out = match &node.op {
                Operator::Get { kind, .. } => {
                    let base = base_rows(&node.op).unwrap_or(100_000) as f64;
                    match kind {
                        ScanKind::Range => base * self.filter_selectivity,
                        ScanKind::Extract => base * self.udo_fanout,
                        ScanKind::Table => base,
                    }
                }
                Operator::ViewGet { .. } => base_rows(&node.op).unwrap_or(100_000) as f64,
                Operator::Filter { .. } => first_in * self.filter_selectivity,
                Operator::Project { .. }
                | Operator::Remap { .. }
                | Operator::Sort { .. }
                | Operator::Exchange { .. }
                | Operator::Window { .. }
                | Operator::Spool
                | Operator::Nop => first_in,
                Operator::Sequence => node.children.last().map(|c| rows[c.index()]).unwrap_or(0.0),
                Operator::Aggregate { .. } => first_in.max(1.0).powf(self.agg_exponent),
                Operator::Top { n, .. } => (*n as f64).min(first_in),
                Operator::Process { .. } | Operator::Combine { .. } => in_rows * self.udo_fanout,
                Operator::Reduce { .. } | Operator::GbApply { .. } => {
                    in_rows * self.udo_fanout * 0.5
                }
                Operator::Join { kind, .. } => {
                    let l = first_in;
                    let r = node.children.get(1).map(|c| rows[c.index()]).unwrap_or(0.0);
                    match kind {
                        JoinKind::LeftSemi => l * 0.5,
                        _ => l.max(r) * self.join_factor,
                    }
                }
                Operator::UnionAll => in_rows,
                Operator::Output { .. } => first_in,
            };
            let bytes = out * self.row_bytes;
            let c = self
                .weights
                .op_cpu(
                    &node.op,
                    in_rows.round() as u64,
                    out.round() as u64,
                    bytes as u64,
                )
                .micros() as f64;
            rows.push(out);
            cpu.push(c);
        }
        PlanEstimates { rows, cpu_us: cpu }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema};

    fn schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)])
    }

    fn sample_graph() -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema());
        let f = b.filter(s, Expr::col(0).gt(Expr::lit(0i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("s", AggFunc::Sum, 1)]);
        b.output(a, "o").build().unwrap()
    }

    #[test]
    fn cost_monotone_in_rows() {
        let m = CostModel::default();
        let op = Operator::Filter {
            predicate: Expr::lit(true),
        };
        let c1 = m.op_cpu(&op, 1_000, 500, 1_000);
        let c2 = m.op_cpu(&op, 10_000, 5_000, 10_000);
        assert!(c2 > c1);
    }

    #[test]
    fn sort_superlinear() {
        let m = CostModel::default();
        let op = Operator::Sort {
            order: scope_plan::SortOrder::asc(&[0]),
        };
        let c1 = m.op_cpu(&op, 1_000, 1_000, 0).micros() as f64;
        let c2 = m.op_cpu(&op, 100_000, 100_000, 0).micros() as f64;
        assert!(c2 / c1 > 100.0, "sort should grow faster than linear");
    }

    #[test]
    fn exchange_costs_bytes() {
        let m = CostModel::default();
        let op = Operator::Exchange {
            scheme: scope_plan::Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        };
        let skinny = m.op_cpu(&op, 1_000, 1_000, 10_000);
        let wide = m.op_cpu(&op, 1_000, 1_000, 10_000_000);
        assert!(wide > skinny);
    }

    #[test]
    fn udo_weight_applies() {
        use scope_plan::{Udo, UdoKind};
        let m = CostModel::default();
        let cheap = Operator::Process {
            udo: Udo::new(
                UdoKind::ClampOutliers {
                    col: 0,
                    lo: 0,
                    hi: 1,
                },
                "L",
                "1",
            ),
        };
        let pricey = Operator::Process {
            udo: Udo::new(
                UdoKind::ScoreModel {
                    cols: vec![0],
                    seed: 1,
                },
                "L",
                "1",
            ),
        };
        assert!(m.op_cpu(&pricey, 1000, 1000, 0) > m.op_cpu(&cheap, 1000, 1000, 0));
    }

    #[test]
    fn estimator_walks_plan() {
        let g = sample_graph();
        let est = CostEstimator::default();
        let e = est.estimate(&g, &|_| Some(90_000));
        assert_eq!(e.rows.len(), g.len());
        // scan -> 90k, filter -> 30k, agg -> 30k^0.7 ≈ 1365
        assert!((e.rows[0] - 90_000.0).abs() < 1.0);
        assert!((e.rows[1] - 30_000.0).abs() < 1.0);
        assert!(e.rows[2] > 1_000.0 && e.rows[2] < 2_000.0);
        assert!(e.total_cpu_us() > 0.0);
    }

    #[test]
    fn estimator_subgraph_cost_is_partial_sum() {
        let g = sample_graph();
        let est = CostEstimator::default();
        let e = est.estimate(&g, &|_| Some(10_000));
        let agg_id = scope_common::ids::NodeId::new(2);
        let sub = e.subgraph_cpu_us(&g, agg_id);
        let total = e.total_cpu_us();
        assert!(sub < total);
        assert!(sub > 0.0);
        // Subgraph at root == total.
        let root = g.roots()[0];
        assert!((e.subgraph_cpu_us(&g, root) - total).abs() < 1e-6);
    }

    #[test]
    fn unknown_base_defaults() {
        let g = sample_graph();
        let est = CostEstimator::default();
        let e = est.estimate(&g, &|_| None);
        assert!((e.rows[0] - 100_000.0).abs() < 1.0);
    }

    #[test]
    fn view_write_cost_positive() {
        let m = CostModel::default();
        assert!(m.view_write_cpu(1000, 1 << 20) > SimDuration::ZERO);
    }
}
