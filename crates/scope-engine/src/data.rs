//! Partitioned in-memory tables.

use scope_common::hash::{sip64, SipHasher24};
use scope_common::{Result, ScopeError};
use scope_plan::{Partitioning, PhysicalProps, Schema, SortOrder, Value};

/// One row of values.
pub type Row = Vec<Value>;

/// A partitioned table: the unit flowing between operators and stored in
/// the storage manager.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Column schema.
    pub schema: Schema,
    /// Rows per partition.
    pub partitions: Vec<Vec<Row>>,
    /// Physical properties the data actually satisfies.
    pub props: PhysicalProps,
}

impl Table {
    /// An empty single-partition table.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            partitions: vec![Vec::new()],
            props: PhysicalProps::single(),
        }
    }

    /// A single-partition table from rows.
    pub fn single(schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            schema,
            partitions: vec![rows],
            props: PhysicalProps::single(),
        }
    }

    /// Total row count.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(Vec::len).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Approximate total byte size.
    pub fn num_bytes(&self) -> u64 {
        self.partitions
            .iter()
            .flatten()
            .map(|r| r.iter().map(Value::byte_size).sum::<usize>() as u64)
            .sum()
    }

    /// Iterates all rows across partitions.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        self.partitions.iter().flatten()
    }

    /// Collects all rows into a single vector (copying).
    pub fn all_rows(&self) -> Vec<Row> {
        self.iter_rows().cloned().collect()
    }

    /// Repartitions by hash on `cols` into `parts` partitions.
    pub fn hash_repartition(&self, cols: &[usize], parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "hash_repartition with 0 parts".into(),
            ));
        }
        for &c in cols {
            self.schema.column(c)?;
        }
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for row in self.iter_rows() {
            let mut h = SipHasher24::new_with_keys(0x9e3779b97f4a7c15, 0x85ebca6b);
            for &c in cols {
                row[c].stable_hash_into(&mut h);
            }
            let p = (h.finish() % parts as u64) as usize;
            out[p].push(row.clone());
        }
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::Hash {
                    cols: cols.to_vec(),
                    parts,
                },
                sort: SortOrder::none(),
            },
        })
    }

    /// Repartitions by range on one column into `parts` partitions, with
    /// boundaries chosen from the sorted distinct sample of values.
    pub fn range_repartition(&self, col: usize, parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "range_repartition with 0 parts".into(),
            ));
        }
        self.schema.column(col)?;
        let mut keys: Vec<Value> = self.iter_rows().map(|r| r[col].clone()).collect();
        keys.sort();
        let boundaries: Vec<Value> = (1..parts)
            .map(|i| {
                keys.get(i * keys.len() / parts)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for row in self.iter_rows() {
            let p = boundaries.partition_point(|b| *b <= row[col]);
            out[p].push(row.clone());
        }
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::Range { col, parts },
                sort: SortOrder::none(),
            },
        })
    }

    /// Round-robin repartition into `parts` partitions.
    pub fn round_robin_repartition(&self, parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution("round_robin with 0 parts".into()));
        }
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for (i, row) in self.iter_rows().enumerate() {
            out[i % parts].push(row.clone());
        }
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::RoundRobin { parts },
                sort: SortOrder::none(),
            },
        })
    }

    /// Gathers all partitions into one.
    pub fn gather(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            partitions: vec![self.all_rows()],
            props: PhysicalProps::single(),
        }
    }

    /// Sorts every partition by `order` (stable).
    pub fn sort_partitions(&self, order: &SortOrder) -> Table {
        let mut parts = self.partitions.clone();
        for p in &mut parts {
            sort_rows(p, order);
        }
        Table {
            schema: self.schema.clone(),
            partitions: parts,
            props: PhysicalProps {
                partitioning: self.props.partitioning.clone(),
                sort: order.clone(),
            },
        }
    }
}

/// Stable in-place sort of rows by a sort order.
pub fn sort_rows(rows: &mut [Row], order: &SortOrder) {
    rows.sort_by(|a, b| compare_rows(a, b, order));
}

/// Compares two rows under a sort order.
pub fn compare_rows(a: &Row, b: &Row, order: &SortOrder) -> std::cmp::Ordering {
    for key in &order.0 {
        let ord = a[key.col].cmp(&b[key.col]);
        let ord = match key.dir {
            scope_plan::SortDir::Asc => ord,
            scope_plan::SortDir::Desc => ord.reverse(),
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Order- and partition-insensitive checksum of a table's contents: the sum
/// (wrapping) of per-row stable hashes. Two tables hold the same multiset of
/// rows iff their checksums and row counts agree (up to hash collisions).
///
/// This is how integration tests assert that CloudViews rewriting "does not
/// introduce data corruption" (paper requirement 3).
pub fn multiset_checksum(table: &Table) -> u64 {
    let mut acc: u64 = sip64(b"multiset") ^ table.num_rows() as u64;
    for row in table.iter_rows() {
        let mut h = SipHasher24::new_with_keys(0xc0ffee, 0xdecaf);
        for v in row {
            v.stable_hash_into(&mut h);
        }
        acc = acc.wrapping_add(h.finish());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_plan::{DataType, SortKey};

    fn table(n: i64) -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Str)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| vec![Value::Int(i % 7), Value::Str(format!("r{i}"))])
            .collect();
        Table::single(schema, rows)
    }

    #[test]
    fn counts_and_bytes() {
        let t = table(10);
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_partitions(), 1);
        assert!(t.num_bytes() > 0);
        assert_eq!(Table::empty(t.schema.clone()).num_rows(), 0);
    }

    #[test]
    fn hash_repartition_preserves_multiset_and_colocates_keys() {
        let t = table(100);
        let r = t.hash_repartition(&[0], 8).unwrap();
        assert_eq!(r.num_partitions(), 8);
        assert_eq!(r.num_rows(), 100);
        assert_eq!(multiset_checksum(&t), multiset_checksum(&r));
        // Same key never in two partitions.
        for key in 0..7i64 {
            let holders: Vec<usize> = r
                .partitions
                .iter()
                .enumerate()
                .filter(|(_, p)| p.iter().any(|row| row[0] == Value::Int(key)))
                .map(|(i, _)| i)
                .collect();
            assert!(holders.len() <= 1, "key {key} in partitions {holders:?}");
        }
    }

    #[test]
    fn range_repartition_orders_partitions() {
        let t = table(100);
        let r = t.range_repartition(0, 4).unwrap();
        assert_eq!(r.num_rows(), 100);
        // Every value in partition i is <= every value in partition j>i.
        let maxes: Vec<Option<Value>> = r
            .partitions
            .iter()
            .map(|p| p.iter().map(|row| row[0].clone()).max())
            .collect();
        let mins: Vec<Option<Value>> = r
            .partitions
            .iter()
            .map(|p| p.iter().map(|row| row[0].clone()).min())
            .collect();
        for i in 0..3 {
            if let (Some(mx), Some(mn)) = (&maxes[i], &mins[i + 1]) {
                assert!(
                    mx <= mn,
                    "partition {i} max {mx} > partition {} min {mn}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn round_robin_balances() {
        let t = table(100);
        let r = t.round_robin_repartition(4).unwrap();
        for p in &r.partitions {
            assert_eq!(p.len(), 25);
        }
        assert_eq!(multiset_checksum(&t), multiset_checksum(&r));
    }

    #[test]
    fn gather_restores_single() {
        let t = table(50).hash_repartition(&[0], 8).unwrap();
        let g = t.gather();
        assert_eq!(g.num_partitions(), 1);
        assert_eq!(g.num_rows(), 50);
        assert_eq!(multiset_checksum(&g), multiset_checksum(&t));
    }

    #[test]
    fn zero_parts_rejected() {
        let t = table(5);
        assert!(t.hash_repartition(&[0], 0).is_err());
        assert!(t.range_repartition(0, 0).is_err());
        assert!(t.round_robin_repartition(0).is_err());
        assert!(t.hash_repartition(&[9], 2).is_err()); // bad column
    }

    #[test]
    fn sort_partitions_sorts_each() {
        let t = table(50).hash_repartition(&[0], 4).unwrap();
        let s = t.sort_partitions(&SortOrder::asc(&[0]));
        for p in &s.partitions {
            assert!(p.windows(2).all(|w| w[0][0] <= w[1][0]));
        }
        assert_eq!(s.props.sort, SortOrder::asc(&[0]));
        assert_eq!(multiset_checksum(&s), multiset_checksum(&t));
    }

    #[test]
    fn compare_rows_desc() {
        let order = SortOrder(vec![SortKey::desc(0)]);
        let a = vec![Value::Int(1)];
        let b = vec![Value::Int(2)];
        assert_eq!(compare_rows(&a, &b, &order), std::cmp::Ordering::Greater);
    }

    #[test]
    fn checksum_order_insensitive_but_content_sensitive() {
        let t1 = table(20);
        let mut rev = t1.clone();
        rev.partitions[0].reverse();
        assert_eq!(multiset_checksum(&t1), multiset_checksum(&rev));
        let mut changed = t1.clone();
        changed.partitions[0][0][0] = Value::Int(999);
        assert_ne!(multiset_checksum(&t1), multiset_checksum(&changed));
        // Duplicate row multiplicity matters.
        let mut dup = t1.clone();
        let row = dup.partitions[0][0].clone();
        dup.partitions[0].push(row);
        assert_ne!(multiset_checksum(&t1), multiset_checksum(&dup));
    }
}
