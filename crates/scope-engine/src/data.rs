//! Partitioned in-memory tables, stored columnar.
//!
//! A [`Table`] is a list of partitions; each partition is a list of
//! immutable, reference-counted [`RecordBatch`]es; each batch holds typed
//! [`ColumnVector`]s with optional null masks. Rows exist only at the edges:
//! [`Table::single`]/[`Table::from_rows`] build batches from rows, and
//! [`Table::iter_rows`]/[`Table::all_rows`] materialize them back for
//! callers (UDOs, tests) that still think row-at-a-time.
//!
//! Two invariants carry the whole CloudViews reproduction:
//!
//! * **Logical equivalence with the seed row layout.** A batch is exactly a
//!   run of rows; [`Cell`] mirrors [`Value`] ordering, hashing, and byte
//!   accounting bit for bit, so checksums, hash partitioning, sort orders,
//!   and `NodeRuntimeStats.out_bytes` are unchanged by the columnar move.
//! * **Immutability.** Batches are never mutated after construction, which
//!   is why the per-batch cached byte size needs no invalidation and why
//!   `gather`/clone/`UnionAll` are `Arc` pointer copies.

use std::cmp::Ordering;
use std::sync::Arc;

use scope_common::hash::{sip24_short, sip64, SipHasher24};
use scope_common::{Result, ScopeError};
use scope_plan::{DataType, Partitioning, PhysicalProps, Schema, SortOrder, Value};

/// One row of values (the bridge representation).
pub type Row = Vec<Value>;

/// Null mask: `mask[i]` is true when row `i` of the column is NULL.
pub type NullMask = Vec<bool>;

// ---------------------------------------------------------------------------
// Cell: a borrowed scalar
// ---------------------------------------------------------------------------

/// A borrowed view of one cell, mirroring [`Value`] without owning strings.
///
/// Every comparison/hash/size method here must agree exactly with the
/// corresponding [`Value`] method — the byte-identity of runtime statistics
/// and checksums across the columnar refactor rests on it.
#[derive(Clone, Copy, Debug)]
pub enum Cell<'a> {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(&'a str),
    /// Days since epoch.
    Date(i32),
}

impl<'a> Cell<'a> {
    /// Borrows a [`Value`] as a cell.
    pub fn of(v: &'a Value) -> Cell<'a> {
        match v {
            Value::Null => Cell::Null,
            Value::Bool(b) => Cell::Bool(*b),
            Value::Int(i) => Cell::Int(*i),
            Value::Float(f) => Cell::Float(*f),
            Value::Str(s) => Cell::Str(s),
            Value::Date(d) => Cell::Date(*d),
        }
    }

    /// Owned value.
    pub fn to_value(self) -> Value {
        match self {
            Cell::Null => Value::Null,
            Cell::Bool(b) => Value::Bool(b),
            Cell::Int(i) => Value::Int(i),
            Cell::Float(f) => Value::Float(f),
            Cell::Str(s) => Value::Str(s.to_string()),
            Cell::Date(d) => Value::Date(d),
        }
    }

    /// True when NULL.
    pub fn is_null(self) -> bool {
        matches!(self, Cell::Null)
    }

    /// Byte accounting identical to [`Value::byte_size`].
    pub fn byte_size(self) -> usize {
        match self {
            Cell::Null => 1,
            Cell::Bool(_) => 1,
            Cell::Int(_) | Cell::Float(_) => 8,
            Cell::Date(_) => 4,
            Cell::Str(s) => 8 + s.len(),
        }
    }

    /// Integer coercion identical to [`Value::as_i64`].
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Cell::Int(i) => Some(i),
            Cell::Date(d) => Some(d as i64),
            Cell::Bool(b) => Some(b as i64),
            _ => None,
        }
    }

    /// Numeric coercion identical to [`Value::as_f64`].
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Cell::Int(i) => Some(i as f64),
            Cell::Float(f) => Some(f),
            Cell::Date(d) => Some(d as f64),
            Cell::Bool(b) => Some(b as i64 as f64),
            _ => None,
        }
    }

    fn tag(self) -> u8 {
        match self {
            Cell::Null => 0,
            Cell::Bool(_) => 1,
            Cell::Int(_) => 2,
            Cell::Float(_) => 3,
            Cell::Str(_) => 4,
            Cell::Date(_) => 5,
        }
    }

    /// Stable hash identical to [`Value::stable_hash_into`].
    pub fn stable_hash_into(self, h: &mut SipHasher24) {
        h.write_u8(self.tag());
        match self {
            Cell::Null => {}
            Cell::Bool(b) => h.write_u8(b as u8),
            Cell::Int(i) => h.write_u64(i as u64),
            Cell::Float(f) => h.write_u64(f.to_bits()),
            Cell::Str(s) => h.write_str(s),
            Cell::Date(d) => h.write_u32(d as u32),
        }
    }

    /// Total order identical to [`Value`]'s `Ord` (`f64::total_cmp` is the
    /// same IEEE total order the value model builds by bit-twiddling).
    pub fn cmp_cell(self, other: Cell<'_>) -> Ordering {
        use Cell::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(&b),
            (Int(a), Int(b)) => a.cmp(&b),
            (Float(a), Float(b)) => a.total_cmp(&b),
            (Int(a), Float(b)) => (a as f64).total_cmp(&b),
            (Float(a), Int(b)) => a.total_cmp(&(b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(&b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

// ---------------------------------------------------------------------------
// ColumnVector
// ---------------------------------------------------------------------------

/// A typed column with an optional null mask; `Mixed` is the untyped
/// fallback for columns that hold more than one runtime type.
#[derive(Clone, Debug)]
pub enum ColumnVector {
    /// 64-bit integers.
    Int {
        /// Values (undefined where masked null).
        data: Vec<i64>,
        /// Null mask.
        nulls: Option<NullMask>,
    },
    /// 64-bit floats.
    Float {
        /// Values (undefined where masked null).
        data: Vec<f64>,
        /// Null mask.
        nulls: Option<NullMask>,
    },
    /// Booleans.
    Bool {
        /// Values (undefined where masked null).
        data: Vec<bool>,
        /// Null mask.
        nulls: Option<NullMask>,
    },
    /// Dates (days since epoch).
    Date {
        /// Values (undefined where masked null).
        data: Vec<i32>,
        /// Null mask.
        nulls: Option<NullMask>,
    },
    /// UTF-8 strings.
    Str {
        /// Values (empty where masked null).
        data: Vec<String>,
        /// Null mask.
        nulls: Option<NullMask>,
    },
    /// Untyped fallback: one [`Value`] per row.
    Mixed(Vec<Value>),
}

fn mask_get(nulls: &Option<NullMask>, i: usize) -> bool {
    nulls.as_ref().map(|m| m[i]).unwrap_or(false)
}

impl ColumnVector {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnVector::Int { data, .. } => data.len(),
            ColumnVector::Float { data, .. } => data.len(),
            ColumnVector::Bool { data, .. } => data.len(),
            ColumnVector::Date { data, .. } => data.len(),
            ColumnVector::Str { data, .. } => data.len(),
            ColumnVector::Mixed(data) => data.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrowed view of row `i` (panics when out of range, like `row[i]`).
    pub fn cell(&self, i: usize) -> Cell<'_> {
        match self {
            ColumnVector::Int { data, nulls } => {
                let v = data[i];
                if mask_get(nulls, i) {
                    Cell::Null
                } else {
                    Cell::Int(v)
                }
            }
            ColumnVector::Float { data, nulls } => {
                let v = data[i];
                if mask_get(nulls, i) {
                    Cell::Null
                } else {
                    Cell::Float(v)
                }
            }
            ColumnVector::Bool { data, nulls } => {
                let v = data[i];
                if mask_get(nulls, i) {
                    Cell::Null
                } else {
                    Cell::Bool(v)
                }
            }
            ColumnVector::Date { data, nulls } => {
                let v = data[i];
                if mask_get(nulls, i) {
                    Cell::Null
                } else {
                    Cell::Date(v)
                }
            }
            ColumnVector::Str { data, nulls } => {
                if mask_get(nulls, i) {
                    Cell::Null
                } else {
                    Cell::Str(&data[i])
                }
            }
            ColumnVector::Mixed(data) => Cell::of(&data[i]),
        }
    }

    /// Owned value of row `i`.
    pub fn value(&self, i: usize) -> Value {
        self.cell(i).to_value()
    }

    /// True when row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnVector::Mixed(data) => data[i].is_null(),
            ColumnVector::Int { nulls, .. }
            | ColumnVector::Float { nulls, .. }
            | ColumnVector::Bool { nulls, .. }
            | ColumnVector::Date { nulls, .. }
            | ColumnVector::Str { nulls, .. } => mask_get(nulls, i),
        }
    }

    /// Total byte size under the [`Value::byte_size`] accounting.
    pub fn byte_total(&self) -> u64 {
        let masked = |nulls: &Option<NullMask>, per: u64, n: usize| -> u64 {
            match nulls {
                None => per * n as u64,
                Some(m) => {
                    let nn = m.iter().filter(|&&x| x).count() as u64;
                    per * (n as u64 - nn) + nn
                }
            }
        };
        match self {
            ColumnVector::Int { data, nulls } => masked(nulls, 8, data.len()),
            ColumnVector::Float { data, nulls } => masked(nulls, 8, data.len()),
            ColumnVector::Bool { data, nulls } => masked(nulls, 1, data.len()),
            ColumnVector::Date { data, nulls } => masked(nulls, 4, data.len()),
            ColumnVector::Str { data, nulls } => {
                let mut total = 0u64;
                for (i, s) in data.iter().enumerate() {
                    total += if mask_get(nulls, i) {
                        1
                    } else {
                        8 + s.len() as u64
                    };
                }
                total
            }
            ColumnVector::Mixed(data) => data.iter().map(|v| v.byte_size() as u64).sum(),
        }
    }

    /// Builds a column from owned values: single-typed columns get a typed
    /// vector (with a null mask when needed); anything else stays `Mixed`.
    pub fn from_values(values: Vec<Value>) -> ColumnVector {
        let mut dtype: Option<DataType> = None;
        let mut has_null = false;
        for v in &values {
            match v.data_type() {
                None => has_null = true,
                Some(t) => match dtype {
                    None => dtype = Some(t),
                    Some(prev) if prev == t => {}
                    Some(_) => return ColumnVector::Mixed(values),
                },
            }
        }
        let Some(dtype) = dtype else {
            // All-NULL (or empty) column: Mixed represents it exactly.
            return ColumnVector::Mixed(values);
        };
        let n = values.len();
        let nulls = if has_null {
            Some(values.iter().map(Value::is_null).collect::<NullMask>())
        } else {
            None
        };
        macro_rules! build {
            ($variant:ident, $default:expr, $pat:pat => $val:expr) => {{
                let mut data = Vec::with_capacity(n);
                for v in values {
                    data.push(match v {
                        $pat => $val,
                        _ => $default,
                    });
                }
                ColumnVector::$variant { data, nulls }
            }};
        }
        match dtype {
            DataType::Int => build!(Int, 0, Value::Int(x) => x),
            DataType::Float => build!(Float, 0.0, Value::Float(x) => x),
            DataType::Bool => build!(Bool, false, Value::Bool(x) => x),
            DataType::Date => build!(Date, 0, Value::Date(x) => x),
            DataType::Str => build!(Str, String::new(), Value::Str(x) => x),
        }
    }

    /// Gathers rows at `idx` into a new column (panics on out-of-range).
    pub fn take(&self, idx: &[usize]) -> ColumnVector {
        fn mask_take(nulls: &Option<NullMask>, idx: &[usize]) -> Option<NullMask> {
            nulls.as_ref().map(|m| idx.iter().map(|&i| m[i]).collect())
        }
        match self {
            ColumnVector::Int { data, nulls } => ColumnVector::Int {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: mask_take(nulls, idx),
            },
            ColumnVector::Float { data, nulls } => ColumnVector::Float {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: mask_take(nulls, idx),
            },
            ColumnVector::Bool { data, nulls } => ColumnVector::Bool {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: mask_take(nulls, idx),
            },
            ColumnVector::Date { data, nulls } => ColumnVector::Date {
                data: idx.iter().map(|&i| data[i]).collect(),
                nulls: mask_take(nulls, idx),
            },
            ColumnVector::Str { data, nulls } => ColumnVector::Str {
                data: idx.iter().map(|&i| data[i].clone()).collect(),
                nulls: mask_take(nulls, idx),
            },
            ColumnVector::Mixed(data) => {
                ColumnVector::Mixed(idx.iter().map(|&i| data[i].clone()).collect())
            }
        }
    }

    /// Gathers rows at `idx`, producing NULL where the index is `None`
    /// (used for the unmatched side of left-outer joins).
    pub fn take_opt(&self, idx: &[Option<usize>]) -> ColumnVector {
        fn mask(nulls: &Option<NullMask>, idx: &[Option<usize>]) -> Option<NullMask> {
            if nulls.is_none() && idx.iter().all(Option::is_some) {
                return None;
            }
            Some(
                idx.iter()
                    .map(|i| match i {
                        None => true,
                        Some(i) => mask_get(nulls, *i),
                    })
                    .collect(),
            )
        }
        match self {
            ColumnVector::Int { data, nulls } => ColumnVector::Int {
                data: idx
                    .iter()
                    .map(|i| i.map(|i| data[i]).unwrap_or(0))
                    .collect(),
                nulls: mask(nulls, idx),
            },
            ColumnVector::Float { data, nulls } => ColumnVector::Float {
                data: idx
                    .iter()
                    .map(|i| i.map(|i| data[i]).unwrap_or(0.0))
                    .collect(),
                nulls: mask(nulls, idx),
            },
            ColumnVector::Bool { data, nulls } => ColumnVector::Bool {
                data: idx
                    .iter()
                    .map(|i| i.map(|i| data[i]).unwrap_or(false))
                    .collect(),
                nulls: mask(nulls, idx),
            },
            ColumnVector::Date { data, nulls } => ColumnVector::Date {
                data: idx
                    .iter()
                    .map(|i| i.map(|i| data[i]).unwrap_or(0))
                    .collect(),
                nulls: mask(nulls, idx),
            },
            ColumnVector::Str { data, nulls } => ColumnVector::Str {
                data: idx
                    .iter()
                    .map(|i| i.map(|i| data[i].clone()).unwrap_or_default())
                    .collect(),
                nulls: mask(nulls, idx),
            },
            ColumnVector::Mixed(data) => ColumnVector::Mixed(
                idx.iter()
                    .map(|i| i.map(|i| data[i].clone()).unwrap_or(Value::Null))
                    .collect(),
            ),
        }
    }

    /// Concatenates columns of the same position across batches.
    ///
    /// Same-variant inputs splice their typed buffers directly (the mask is
    /// kept only when some input row is actually NULL, matching what
    /// [`ColumnVector::from_values`] would build); mixed variants fall back
    /// to value materialization and re-typing.
    fn concat(cols: &[&ColumnVector]) -> ColumnVector {
        let total: usize = cols.iter().map(|c| c.len()).sum();

        macro_rules! typed_concat {
            ($variant:ident) => {{
                let mut data = Vec::with_capacity(total);
                let mut mask: NullMask = Vec::with_capacity(total);
                let mut any_null = false;
                for c in cols {
                    if let ColumnVector::$variant { data: d, nulls } = c {
                        data.extend(d.iter().cloned());
                        match nulls {
                            Some(m) => {
                                any_null |= m.iter().any(|&b| b);
                                mask.extend_from_slice(m);
                            }
                            None => mask.extend(std::iter::repeat(false).take(d.len())),
                        }
                    } else {
                        unreachable!("typed_concat on mixed variants");
                    }
                }
                ColumnVector::$variant {
                    data,
                    nulls: if any_null { Some(mask) } else { None },
                }
            }};
        }

        use ColumnVector::*;
        if cols.iter().all(|c| matches!(c, Int { .. })) {
            return typed_concat!(Int);
        }
        if cols.iter().all(|c| matches!(c, Float { .. })) {
            return typed_concat!(Float);
        }
        if cols.iter().all(|c| matches!(c, Bool { .. })) {
            return typed_concat!(Bool);
        }
        if cols.iter().all(|c| matches!(c, Date { .. })) {
            return typed_concat!(Date);
        }
        if cols.iter().all(|c| matches!(c, Str { .. })) {
            return typed_concat!(Str);
        }

        let mut values = Vec::with_capacity(total);
        for c in cols {
            for i in 0..c.len() {
                values.push(c.value(i));
            }
        }
        ColumnVector::from_values(values)
    }
}

// ---------------------------------------------------------------------------
// RecordBatch
// ---------------------------------------------------------------------------

/// An immutable batch of rows stored column-wise, with the byte size cached
/// at construction (immutability is the cache-invalidation strategy).
#[derive(Clone, Debug)]
pub struct RecordBatch {
    columns: Vec<Arc<ColumnVector>>,
    rows: usize,
    bytes: u64,
}

impl RecordBatch {
    /// Builds a batch from columns; all columns must share `rows` length.
    pub fn new(columns: Vec<Arc<ColumnVector>>, rows: usize) -> RecordBatch {
        debug_assert!(columns.iter().all(|c| c.len() == rows));
        let bytes = columns.iter().map(|c| c.byte_total()).sum();
        RecordBatch {
            columns,
            rows,
            bytes,
        }
    }

    /// Builds a batch from uniform-width rows (consuming them).
    pub fn from_rows(rows: Vec<Row>) -> RecordBatch {
        let n = rows.len();
        let width = rows.first().map(Vec::len).unwrap_or(0);
        let mut cols: Vec<Vec<Value>> = (0..width).map(|_| Vec::with_capacity(n)).collect();
        for row in rows {
            debug_assert_eq!(row.len(), width);
            for (j, v) in row.into_iter().enumerate() {
                cols[j].push(v);
            }
        }
        let columns = cols
            .into_iter()
            .map(|c| Arc::new(ColumnVector::from_values(c)))
            .collect();
        RecordBatch::new(columns, n)
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (the physical row width).
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Cached byte size (sum of [`Value::byte_size`] over all cells).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// All columns.
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// Column `i` (panics when out of range, like `row[i]`).
    pub fn column(&self, i: usize) -> &Arc<ColumnVector> {
        &self.columns[i]
    }

    /// Cell at (`row`, `col`); panics like `row[col]` on a bad column.
    pub fn cell(&self, row: usize, col: usize) -> Cell<'_> {
        self.columns[col].cell(row)
    }

    /// Materializes row `i`.
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Gathers rows at `idx` into a new batch.
    pub fn take(&self, idx: &[usize]) -> RecordBatch {
        let columns = self.columns.iter().map(|c| Arc::new(c.take(idx))).collect();
        RecordBatch::new(columns, idx.len())
    }

    /// Concatenates batches of equal width into one.
    pub fn concat(batches: &[&RecordBatch]) -> RecordBatch {
        let width = batches.first().map(|b| b.width()).unwrap_or(0);
        debug_assert!(batches.iter().all(|b| b.width() == width));
        let rows = batches.iter().map(|b| b.num_rows()).sum();
        let columns = (0..width)
            .map(|j| {
                let parts: Vec<&ColumnVector> =
                    batches.iter().map(|b| b.columns[j].as_ref()).collect();
                Arc::new(ColumnVector::concat(&parts))
            })
            .collect();
        RecordBatch::new(columns, rows)
    }
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

/// A partitioned table: the unit flowing between operators and stored in
/// the storage manager. Each partition is an ordered list of batches.
#[derive(Clone, Debug)]
pub struct Table {
    /// Column schema.
    pub schema: Schema,
    /// Batches per partition. Private to the engine: external callers go
    /// through the batch/row APIs so the physical layout can evolve.
    pub(crate) partitions: Vec<Vec<Arc<RecordBatch>>>,
    /// Physical properties the data actually satisfies.
    pub props: PhysicalProps,
}

/// Splits rows into maximal runs of uniform width, one batch per run.
/// (Almost every table is uniform — then this is a single batch.)
pub(crate) fn batches_from_rows(rows: Vec<Row>) -> Vec<Arc<RecordBatch>> {
    let mut out = Vec::new();
    let mut run: Vec<Row> = Vec::new();
    for row in rows {
        if run.last().is_some_and(|prev| prev.len() != row.len()) {
            out.push(Arc::new(RecordBatch::from_rows(std::mem::take(&mut run))));
        }
        run.push(row);
    }
    if !run.is_empty() {
        out.push(Arc::new(RecordBatch::from_rows(run)));
    }
    out
}

impl Table {
    /// An empty single-partition table.
    pub fn empty(schema: Schema) -> Self {
        Table {
            schema,
            partitions: vec![Vec::new()],
            props: PhysicalProps::single(),
        }
    }

    /// A single-partition table from rows.
    pub fn single(schema: Schema, rows: Vec<Row>) -> Self {
        Table {
            schema,
            partitions: vec![batches_from_rows(rows)],
            props: PhysicalProps::single(),
        }
    }

    /// A table from per-partition row lists (row bridge).
    pub fn from_rows(schema: Schema, partitions: Vec<Vec<Row>>, props: PhysicalProps) -> Self {
        Table {
            schema,
            partitions: partitions.into_iter().map(batches_from_rows).collect(),
            props,
        }
    }

    /// A single-partition table built directly from columns — the batch-first
    /// construction path (no row materialization at all).
    pub fn from_columns(schema: Schema, columns: Vec<ColumnVector>) -> Result<Self> {
        let rows = columns.first().map(|c| c.len()).unwrap_or(0);
        if let Some(i) = columns.iter().position(|c| c.len() != rows) {
            return Err(ScopeError::Execution(format!(
                "from_columns: column {i} has {} rows, expected {rows}",
                columns[i].len()
            )));
        }
        let batch = RecordBatch::new(columns.into_iter().map(Arc::new).collect(), rows);
        Ok(Table {
            schema,
            partitions: vec![vec![Arc::new(batch)]],
            props: PhysicalProps::single(),
        })
    }

    /// A table from per-partition batch lists (engine-internal).
    pub(crate) fn from_batches(
        schema: Schema,
        partitions: Vec<Vec<Arc<RecordBatch>>>,
        props: PhysicalProps,
    ) -> Self {
        Table {
            schema,
            partitions,
            props,
        }
    }

    /// Total row count.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().flatten().map(|b| b.num_rows()).sum()
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Approximate total byte size (cached per batch at construction).
    pub fn num_bytes(&self) -> u64 {
        self.partitions.iter().flatten().map(|b| b.bytes()).sum()
    }

    /// Row count of partition `p`.
    pub fn partition_num_rows(&self, p: usize) -> usize {
        self.partitions[p].iter().map(|b| b.num_rows()).sum()
    }

    /// Largest per-partition row count (skew input for the simulator).
    pub fn max_partition_rows(&self) -> usize {
        (0..self.num_partitions())
            .map(|p| self.partition_num_rows(p))
            .max()
            .unwrap_or(0)
    }

    /// Batches of partition `p`.
    pub fn partition_batches(&self, p: usize) -> &[Arc<RecordBatch>] {
        &self.partitions[p]
    }

    /// Partition `p` as one batch: zero-copy when it is already a single
    /// batch, concatenated otherwise. `None` when the partition is ragged
    /// (batches of differing widths) — callers fall back to rows.
    pub(crate) fn partition_as_batch(&self, p: usize) -> Option<Arc<RecordBatch>> {
        let batches = &self.partitions[p];
        match batches.len() {
            0 => Some(Arc::new(RecordBatch::new(Vec::new(), 0))),
            1 => Some(batches[0].clone()),
            _ => {
                let width = batches[0].width();
                if batches.iter().any(|b| b.width() != width) {
                    return None;
                }
                let refs: Vec<&RecordBatch> = batches.iter().map(|b| b.as_ref()).collect();
                Some(Arc::new(RecordBatch::concat(&refs)))
            }
        }
    }

    /// Materializes the rows of partition `p`.
    pub fn partition_rows(&self, p: usize) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.partition_num_rows(p));
        for batch in &self.partitions[p] {
            for i in 0..batch.num_rows() {
                out.push(batch.row(i));
            }
        }
        out
    }

    /// Iterates all rows across partitions (materializing each).
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        self.partitions
            .iter()
            .flatten()
            .flat_map(|b| (0..b.num_rows()).map(move |i| b.row(i)))
    }

    /// Collects all rows into a single vector.
    pub fn all_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    /// Repartitions by hash on `cols` into `parts` partitions.
    pub fn hash_repartition(&self, cols: &[usize], parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "hash_repartition with 0 parts".into(),
            ));
        }
        for &c in cols {
            self.schema.column(c)?;
        }
        const K0: u64 = 0x9e3779b97f4a7c15;
        const K1: u64 = 0x85ebca6b;
        let mut out: Vec<Vec<Arc<RecordBatch>>> = vec![Vec::new(); parts];
        for batch in self.partitions.iter().flatten() {
            // Typed single-key routing: fuse the tagged-cell byte stream
            // (identical to `Cell::stable_hash_into`) into a one-shot short
            // SipHash, skipping the incremental hasher's buffering.
            let fast = match cols {
                [c] => Some(batch.column(*c).as_ref()),
                _ => None,
            };
            match fast {
                Some(ColumnVector::Int { data, nulls }) => {
                    Self::scatter_one(&mut out, batch, |i| {
                        let h = match nulls {
                            Some(m) if m[i] => sip24_short(K0, K1, &[0]),
                            _ => {
                                let mut msg = [0u8; 9];
                                msg[0] = 2;
                                msg[1..].copy_from_slice(&(data[i] as u64).to_le_bytes());
                                sip24_short(K0, K1, &msg)
                            }
                        };
                        (h % parts as u64) as usize
                    });
                }
                Some(ColumnVector::Date { data, nulls }) => {
                    Self::scatter_one(&mut out, batch, |i| {
                        let h = match nulls {
                            Some(m) if m[i] => sip24_short(K0, K1, &[0]),
                            _ => {
                                let mut msg = [0u8; 5];
                                msg[0] = 5;
                                msg[1..].copy_from_slice(&(data[i] as u32).to_le_bytes());
                                sip24_short(K0, K1, &msg)
                            }
                        };
                        (h % parts as u64) as usize
                    });
                }
                _ => {
                    Self::scatter_one(&mut out, batch, |i| {
                        let mut h = SipHasher24::new_with_keys(K0, K1);
                        for &c in cols {
                            batch.cell(i, c).stable_hash_into(&mut h);
                        }
                        (h.finish() % parts as u64) as usize
                    });
                }
            }
        }
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::Hash {
                    cols: cols.to_vec(),
                    parts,
                },
                sort: SortOrder::none(),
            },
        })
    }

    /// Repartitions by range on one column into `parts` partitions, with
    /// boundaries chosen from the sorted distinct sample of values.
    pub fn range_repartition(&self, col: usize, parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "range_repartition with 0 parts".into(),
            ));
        }
        self.schema.column(col)?;
        let mut keys: Vec<Value> = self.iter_cells(col).map(Cell::to_value).collect();
        keys.sort();
        let boundaries: Vec<Value> = (1..parts)
            .map(|i| {
                keys.get(i * keys.len() / parts)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        let mut out: Vec<Vec<Arc<RecordBatch>>> = vec![Vec::new(); parts];
        self.scatter(&mut out, |batch, i| {
            let cell = batch.cell(i, col);
            boundaries.partition_point(|b| Cell::of(b).cmp_cell(cell) != Ordering::Greater)
        });
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::Range { col, parts },
                sort: SortOrder::none(),
            },
        })
    }

    /// Round-robin repartition into `parts` partitions.
    pub fn round_robin_repartition(&self, parts: usize) -> Result<Table> {
        if parts == 0 {
            return Err(ScopeError::Execution("round_robin with 0 parts".into()));
        }
        let mut out: Vec<Vec<Arc<RecordBatch>>> = vec![Vec::new(); parts];
        let mut global = 0usize;
        self.scatter(&mut out, |_, _| {
            let p = global % parts;
            global += 1;
            p
        });
        Ok(Table {
            schema: self.schema.clone(),
            partitions: out,
            props: PhysicalProps {
                partitioning: Partitioning::RoundRobin { parts },
                sort: SortOrder::none(),
            },
        })
    }

    /// Routes every row to `route(batch, row_index)`, appending one selection
    /// sub-batch per (source batch, destination) in scan order — the same row
    /// order per destination as the row-at-a-time scatter produced.
    fn scatter(
        &self,
        out: &mut [Vec<Arc<RecordBatch>>],
        mut route: impl FnMut(&RecordBatch, usize) -> usize,
    ) {
        for batch in self.partitions.iter().flatten() {
            Self::scatter_one(out, batch, |i| route(batch, i));
        }
    }

    /// Iterates the cells of column `col` across all partitions.
    fn iter_cells(&self, col: usize) -> impl Iterator<Item = Cell<'_>> {
        self.partitions
            .iter()
            .flatten()
            .flat_map(move |b| (0..b.num_rows()).map(move |i| b.cell(i, col)))
    }

    /// Routes every row of one batch to `route(row_index)`, appending one
    /// selection sub-batch per destination in scan order — the same row
    /// order per destination as the row-at-a-time scatter produced.
    fn scatter_one(
        out: &mut [Vec<Arc<RecordBatch>>],
        batch: &Arc<RecordBatch>,
        mut route: impl FnMut(usize) -> usize,
    ) {
        let parts = out.len();
        let mut sel: Vec<Vec<usize>> = vec![Vec::new(); parts];
        for i in 0..batch.num_rows() {
            sel[route(i)].push(i);
        }
        for (p, idx) in sel.iter().enumerate() {
            if idx.is_empty() {
                continue;
            }
            if idx.len() == batch.num_rows() {
                out[p].push(batch.clone());
            } else {
                out[p].push(Arc::new(batch.take(idx)));
            }
        }
    }

    /// Gathers all partitions into one. Zero-copy: the batch buffers are
    /// shared, only `Arc`s move.
    pub fn gather(&self) -> Table {
        Table {
            schema: self.schema.clone(),
            partitions: vec![self.partitions.iter().flatten().cloned().collect()],
            props: PhysicalProps::single(),
        }
    }

    /// Sorts every partition by `order` (stable).
    pub fn sort_partitions(&self, order: &SortOrder) -> Table {
        let mut parts: Vec<Vec<Arc<RecordBatch>>> = Vec::with_capacity(self.num_partitions());
        for p in 0..self.num_partitions() {
            match self.partition_as_batch(p) {
                Some(batch) if batch.num_rows() > 1 => {
                    let mut idx: Vec<usize> = (0..batch.num_rows()).collect();
                    idx.sort_by(|&a, &b| compare_batch_rows(&batch, a, b, order));
                    parts.push(vec![Arc::new(batch.take(&idx))]);
                }
                Some(_) => parts.push(self.partitions[p].clone()),
                None => {
                    // Ragged partition: sort via the row bridge.
                    let mut rows = self.partition_rows(p);
                    sort_rows(&mut rows, order);
                    parts.push(batches_from_rows(rows));
                }
            }
        }
        Table {
            schema: self.schema.clone(),
            partitions: parts,
            props: PhysicalProps {
                partitioning: self.props.partitioning.clone(),
                sort: order.clone(),
            },
        }
    }
}

impl PartialEq for Table {
    /// Logical equality: same schema, properties, and per-partition row
    /// sequences — batch boundaries are physical and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.props == other.props
            && self.num_partitions() == other.num_partitions()
            && (0..self.num_partitions()).all(|p| self.partition_rows(p) == other.partition_rows(p))
    }
}

/// Compares two batch rows under a sort order (cell-wise; identical to
/// [`compare_rows`] on the materialized rows).
pub(crate) fn compare_batch_rows(
    batch: &RecordBatch,
    a: usize,
    b: usize,
    order: &SortOrder,
) -> Ordering {
    for key in &order.0 {
        let ord = batch.cell(a, key.col).cmp_cell(batch.cell(b, key.col));
        let ord = match key.dir {
            scope_plan::SortDir::Asc => ord,
            scope_plan::SortDir::Desc => ord.reverse(),
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    Ordering::Equal
}

/// Full-row lexicographic comparison of two batch rows (`Row::cmp` on the
/// materialized rows; widths are uniform within a batch).
pub(crate) fn compare_batch_rows_full(batch: &RecordBatch, a: usize, b: usize) -> Ordering {
    for col in 0..batch.width() {
        let ord = batch.cell(a, col).cmp_cell(batch.cell(b, col));
        if !ord.is_eq() {
            return ord;
        }
    }
    Ordering::Equal
}

/// Stable in-place sort of rows by a sort order.
pub fn sort_rows(rows: &mut [Row], order: &SortOrder) {
    rows.sort_by(|a, b| compare_rows(a, b, order));
}

/// Compares two rows under a sort order.
pub fn compare_rows(a: &Row, b: &Row, order: &SortOrder) -> std::cmp::Ordering {
    for key in &order.0 {
        let ord = a[key.col].cmp(&b[key.col]);
        let ord = match key.dir {
            scope_plan::SortDir::Asc => ord,
            scope_plan::SortDir::Desc => ord.reverse(),
        };
        if !ord.is_eq() {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

/// Order- and partition-insensitive checksum of a table's contents: the sum
/// (wrapping) of per-row stable hashes. Two tables hold the same multiset of
/// rows iff their checksums and row counts agree (up to hash collisions).
///
/// This is how integration tests assert that CloudViews rewriting "does not
/// introduce data corruption" (paper requirement 3).
pub fn multiset_checksum(table: &Table) -> u64 {
    let mut acc: u64 = sip64(b"multiset") ^ table.num_rows() as u64;
    for batch in table.partitions.iter().flatten() {
        for i in 0..batch.num_rows() {
            let mut h = SipHasher24::new_with_keys(0xc0ffee, 0xdecaf);
            for col in batch.columns() {
                col.cell(i).stable_hash_into(&mut h);
            }
            acc = acc.wrapping_add(h.finish());
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_plan::{DataType, SortKey};

    fn table(n: i64) -> Table {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Str)]);
        let rows: Vec<Row> = (0..n)
            .map(|i| vec![Value::Int(i % 7), Value::Str(format!("r{i}"))])
            .collect();
        Table::single(schema, rows)
    }

    /// The old row-at-a-time byte accounting, for parity checks.
    fn row_bytes(t: &Table) -> u64 {
        t.iter_rows()
            .map(|r| r.iter().map(Value::byte_size).sum::<usize>() as u64)
            .sum()
    }

    #[test]
    fn counts_and_bytes() {
        let t = table(10);
        assert_eq!(t.num_rows(), 10);
        assert_eq!(t.num_partitions(), 1);
        assert!(t.num_bytes() > 0);
        assert_eq!(Table::empty(t.schema.clone()).num_rows(), 0);
    }

    #[test]
    fn cached_bytes_match_row_accounting() {
        let schema = Schema::from_pairs(&[
            ("i", DataType::Int),
            ("f", DataType::Float),
            ("s", DataType::Str),
            ("b", DataType::Bool),
            ("d", DataType::Date),
        ]);
        let rows: Vec<Row> = (0..40)
            .map(|i| {
                vec![
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i)
                    },
                    Value::Float(i as f64 / 3.0),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Str(format!("s{i}"))
                    },
                    Value::Bool(i % 2 == 0),
                    Value::Date(i as i32),
                ]
            })
            .collect();
        let t = Table::single(schema, rows);
        assert_eq!(t.num_bytes(), row_bytes(&t));
    }

    #[test]
    fn from_columns_matches_from_rows() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("s", DataType::Str)]);
        let rows: Vec<Row> = (0..20)
            .map(|i| vec![Value::Int(i), Value::Str(format!("x{i}"))])
            .collect();
        let by_rows = Table::single(schema.clone(), rows);
        let by_cols = Table::from_columns(
            schema,
            vec![
                ColumnVector::Int {
                    data: (0..20).collect(),
                    nulls: None,
                },
                ColumnVector::Str {
                    data: (0..20).map(|i| format!("x{i}")).collect(),
                    nulls: None,
                },
            ],
        )
        .unwrap();
        assert_eq!(by_rows, by_cols);
        assert_eq!(multiset_checksum(&by_rows), multiset_checksum(&by_cols));
        assert_eq!(by_rows.num_bytes(), by_cols.num_bytes());
    }

    #[test]
    fn from_columns_rejects_ragged_lengths() {
        let schema = Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Int)]);
        let err = Table::from_columns(
            schema,
            vec![
                ColumnVector::Int {
                    data: vec![1, 2],
                    nulls: None,
                },
                ColumnVector::Int {
                    data: vec![1],
                    nulls: None,
                },
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("length") || err.to_string().contains("rows"));
    }

    #[test]
    fn cell_mirrors_value_semantics() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int(-3),
            Value::Float(2.5),
            Value::Float(f64::NAN),
            Value::Str("abc".into()),
            Value::Date(44),
        ];
        for a in &vals {
            assert_eq!(Cell::of(a).byte_size(), a.byte_size());
            assert_eq!(Cell::of(a).to_value(), *a);
            let mut h1 = SipHasher24::new_with_keys(7, 9);
            let mut h2 = SipHasher24::new_with_keys(7, 9);
            a.stable_hash_into(&mut h1);
            Cell::of(a).stable_hash_into(&mut h2);
            assert_eq!(h1.finish(), h2.finish());
            for b in &vals {
                assert_eq!(Cell::of(a).cmp_cell(Cell::of(b)), a.cmp(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn mixed_column_round_trips() {
        let vals = vec![Value::Int(1), Value::Str("two".into()), Value::Null];
        let col = ColumnVector::from_values(vals.clone());
        assert!(matches!(col, ColumnVector::Mixed(_)));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value(i), v);
        }
    }

    #[test]
    fn typed_column_with_nulls_round_trips() {
        let vals = vec![Value::Int(5), Value::Null, Value::Int(7)];
        let col = ColumnVector::from_values(vals.clone());
        assert!(matches!(col, ColumnVector::Int { .. }));
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(&col.value(i), v);
        }
        assert_eq!(col.byte_total(), 8 + 1 + 8);
    }

    #[test]
    fn hash_repartition_preserves_multiset_and_colocates_keys() {
        let t = table(100);
        let r = t.hash_repartition(&[0], 8).unwrap();
        assert_eq!(r.num_partitions(), 8);
        assert_eq!(r.num_rows(), 100);
        assert_eq!(multiset_checksum(&t), multiset_checksum(&r));
        // Same key never in two partitions.
        for key in 0..7i64 {
            let holders: Vec<usize> = (0..r.num_partitions())
                .filter(|&p| {
                    r.partition_rows(p)
                        .iter()
                        .any(|row| row[0] == Value::Int(key))
                })
                .collect();
            assert!(holders.len() <= 1, "key {key} in partitions {holders:?}");
        }
    }

    #[test]
    fn range_repartition_orders_partitions() {
        let t = table(100);
        let r = t.range_repartition(0, 4).unwrap();
        assert_eq!(r.num_rows(), 100);
        // Every value in partition i is <= every value in partition j>i.
        let maxes: Vec<Option<Value>> = (0..4)
            .map(|p| r.partition_rows(p).iter().map(|row| row[0].clone()).max())
            .collect();
        let mins: Vec<Option<Value>> = (0..4)
            .map(|p| r.partition_rows(p).iter().map(|row| row[0].clone()).min())
            .collect();
        for i in 0..3 {
            if let (Some(mx), Some(mn)) = (&maxes[i], &mins[i + 1]) {
                assert!(
                    mx <= mn,
                    "partition {i} max {mx} > partition {} min {mn}",
                    i + 1
                );
            }
        }
    }

    #[test]
    fn round_robin_balances() {
        let t = table(100);
        let r = t.round_robin_repartition(4).unwrap();
        for p in 0..4 {
            assert_eq!(r.partition_num_rows(p), 25);
        }
        assert_eq!(multiset_checksum(&t), multiset_checksum(&r));
    }

    #[test]
    fn gather_restores_single_and_shares_batches() {
        let t = table(50).hash_repartition(&[0], 8).unwrap();
        let g = t.gather();
        assert_eq!(g.num_partitions(), 1);
        assert_eq!(g.num_rows(), 50);
        assert_eq!(multiset_checksum(&g), multiset_checksum(&t));
        // Zero-copy: gathered batches are the same allocations.
        let originals: Vec<*const RecordBatch> = (0..t.num_partitions())
            .flat_map(|p| t.partition_batches(p).iter().map(Arc::as_ptr))
            .collect();
        for b in g.partition_batches(0) {
            assert!(originals.contains(&Arc::as_ptr(b)));
        }
    }

    #[test]
    fn zero_parts_rejected() {
        let t = table(5);
        assert!(t.hash_repartition(&[0], 0).is_err());
        assert!(t.range_repartition(0, 0).is_err());
        assert!(t.round_robin_repartition(0).is_err());
        assert!(t.hash_repartition(&[9], 2).is_err()); // bad column
    }

    #[test]
    fn sort_partitions_sorts_each() {
        let t = table(50).hash_repartition(&[0], 4).unwrap();
        let s = t.sort_partitions(&SortOrder::asc(&[0]));
        for p in 0..s.num_partitions() {
            let rows = s.partition_rows(p);
            assert!(rows.windows(2).all(|w| w[0][0] <= w[1][0]));
        }
        assert_eq!(s.props.sort, SortOrder::asc(&[0]));
        assert_eq!(multiset_checksum(&s), multiset_checksum(&t));
    }

    #[test]
    fn sort_is_stable_like_row_sort() {
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("seq", DataType::Int)]);
        let rows: Vec<Row> = (0..40)
            .map(|i| vec![Value::Int(i % 3), Value::Int(i)])
            .collect();
        let mut reference = rows.clone();
        sort_rows(&mut reference, &SortOrder::asc(&[0]));
        let t = Table::single(schema, rows).sort_partitions(&SortOrder::asc(&[0]));
        assert_eq!(t.all_rows(), reference);
    }

    #[test]
    fn compare_rows_desc() {
        let order = SortOrder(vec![SortKey::desc(0)]);
        let a = vec![Value::Int(1)];
        let b = vec![Value::Int(2)];
        assert_eq!(compare_rows(&a, &b, &order), std::cmp::Ordering::Greater);
    }

    #[test]
    fn checksum_order_insensitive_but_content_sensitive() {
        let t1 = table(20);
        let mut rows = t1.all_rows();
        rows.reverse();
        let rev = Table::single(t1.schema.clone(), rows);
        assert_eq!(multiset_checksum(&t1), multiset_checksum(&rev));
        let mut rows = t1.all_rows();
        rows[0][0] = Value::Int(999);
        let changed = Table::single(t1.schema.clone(), rows);
        assert_ne!(multiset_checksum(&t1), multiset_checksum(&changed));
        // Duplicate row multiplicity matters.
        let mut rows = t1.all_rows();
        rows.push(rows[0].clone());
        let dup = Table::single(t1.schema.clone(), rows);
        assert_ne!(multiset_checksum(&t1), multiset_checksum(&dup));
    }

    #[test]
    fn ragged_rows_split_into_batches_and_round_trip() {
        let schema = Schema::from_pairs(&[("a", DataType::Int)]);
        let rows = vec![
            vec![Value::Int(1)],
            vec![Value::Int(2), Value::Int(3)],
            vec![Value::Int(4), Value::Int(5)],
            vec![Value::Int(6)],
        ];
        let t = Table::single(schema, rows.clone());
        assert_eq!(t.all_rows(), rows);
        assert_eq!(t.partition_batches(0).len(), 3);
        assert!(t.partition_as_batch(0).is_none());
        assert_eq!(t.num_bytes(), row_bytes(&t));
    }

    #[test]
    fn take_opt_pads_nulls() {
        let col = ColumnVector::from_values(vec![Value::Int(1), Value::Int(2)]);
        let taken = col.take_opt(&[Some(1), None, Some(0)]);
        assert_eq!(taken.value(0), Value::Int(2));
        assert_eq!(taken.value(1), Value::Null);
        assert_eq!(taken.value(2), Value::Int(1));
    }
}
