//! Row-at-a-time reference executor and shared row kernels.
//!
//! This module preserves the seed executor's row-by-row operator kernels
//! verbatim. They serve three purposes:
//!
//! 1. **Reference semantics** — `tests/properties.rs` runs every operator
//!    through both the columnar path and [`execute_plan_rows`] and asserts
//!    identical rows, checksums, and [`NodeRuntimeStats`].
//! 2. **Benchmark baseline** — `benches/executor.rs` measures the columnar
//!    executor's speedup against this path.
//! 3. **Fallback kernels** — the columnar executor calls these helpers for
//!    the cases it deliberately does not vectorize (UDOs, window functions,
//!    loops joins, ragged partitions), so the two paths cannot drift.

use std::collections::HashMap;

use scope_common::time::SimTime;
use scope_common::{Result, ScopeError};
use scope_plan::op::{AggImpl, WindowFunc};
use scope_plan::{
    AggExpr, AggFunc, JoinImpl, JoinKind, Operator, Partitioning, PhysicalProps, QueryGraph,
    Schema, SortOrder, Value,
};

use crate::cost::CostModel;
use crate::data::{compare_rows, sort_rows, Cell, Row, Table};
use crate::exec::NodeRuntimeStats;
use crate::storage::StorageManager;

// ---------------------------------------------------------------------------
// Aggregate accumulator (shared by both executors)
// ---------------------------------------------------------------------------

/// Aggregate accumulator for one group.
///
/// Float sums are accumulated as a value list and added in a *deterministic
/// order* at finish time: IEEE addition is not associative, so summing in
/// physical arrival order would make results depend on partitioning — and a
/// view-fed plan (different partition order) could differ from the baseline
/// in the last ulp. Integer sums stay incremental.
#[derive(Clone, Debug)]
pub(crate) struct Acc {
    count: u64,
    int_sum: i64,
    float_values: Vec<f64>,
    sum_is_float: bool,
    min: Option<Value>,
    max: Option<Value>,
    distinct: std::collections::HashSet<Value>,
    non_null: u64,
}

impl Acc {
    pub(crate) fn new() -> Self {
        Acc {
            count: 0,
            int_sum: 0,
            float_values: Vec::new(),
            sum_is_float: false,
            min: None,
            max: None,
            distinct: std::collections::HashSet::new(),
            non_null: 0,
        }
    }

    pub(crate) fn update(&mut self, func: AggFunc, v: &Value) {
        self.update_cell(func, Cell::of(v));
    }

    /// Cell-based update: the columnar aggregate feeds borrowed cells so
    /// only MIN/MAX/COUNT DISTINCT ever materialize a [`Value`].
    pub(crate) fn update_cell(&mut self, func: AggFunc, c: Cell<'_>) {
        self.count += 1;
        if c.is_null() {
            return;
        }
        self.non_null += 1;
        match func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match c {
                Cell::Float(f) => {
                    self.sum_is_float = true;
                    self.float_values.push(f);
                }
                other => {
                    if let Some(x) = other.as_i64() {
                        self.int_sum = self.int_sum.wrapping_add(x);
                    }
                }
            },
            AggFunc::Min => {
                let smaller = self
                    .min
                    .as_ref()
                    .map(|m| c.cmp_cell(Cell::of(m)).is_lt())
                    .unwrap_or(true);
                if smaller {
                    self.min = Some(c.to_value());
                }
            }
            AggFunc::Max => {
                let larger = self
                    .max
                    .as_ref()
                    .map(|m| c.cmp_cell(Cell::of(m)).is_gt())
                    .unwrap_or(true);
                if larger {
                    self.max = Some(c.to_value());
                }
            }
            AggFunc::CountDistinct => {
                self.distinct.insert(c.to_value());
            }
        }
    }

    // Typed bulk helpers for the columnar aggregate's monomorphized loops.
    // Each mirrors a slice of `update_cell`'s effect on the fields that the
    // corresponding `finish` arm reads; callers must feed every group row
    // through `bump_rows` exactly once and only non-null values into the
    // value-carrying updates.

    /// COUNT/SUM/AVG bookkeeping: `rows` cells seen, `non_null` of them non-NULL.
    pub(crate) fn bump_rows(&mut self, rows: u64, non_null: u64) {
        self.count += rows;
        self.non_null += non_null;
    }

    /// One non-null integer into a SUM/AVG (wrapping, like `update_cell`).
    pub(crate) fn add_int(&mut self, x: i64) {
        self.int_sum = self.int_sum.wrapping_add(x);
    }

    /// One non-null float into a SUM/AVG. Push order is irrelevant:
    /// `float_total` sorts by IEEE total order before adding.
    pub(crate) fn push_float(&mut self, f: f64) {
        self.sum_is_float = true;
        self.float_values.push(f);
    }

    /// Order-insensitive float total: sort by IEEE total order, then add.
    fn float_total(&self) -> f64 {
        let mut vals = self.float_values.clone();
        vals.sort_by(|a, b| a.total_cmp(b));
        vals.iter().sum::<f64>() + self.int_sum as f64
    }

    pub(crate) fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.non_null == 0 {
                    Value::Null
                } else if self.sum_is_float {
                    Value::Float(self.float_total())
                } else {
                    Value::Int(self.int_sum)
                }
            }
            AggFunc::Avg => {
                if self.non_null == 0 {
                    Value::Null
                } else {
                    Value::Float(self.float_total() / self.non_null as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
            AggFunc::CountDistinct => Value::Int(self.distinct.len() as i64),
        }
    }
}

pub(crate) fn agg_row(key: &[Value], accs: &[Acc], aggs: &[AggExpr]) -> Row {
    let mut row: Row = key.to_vec();
    for (acc, a) in accs.iter().zip(aggs) {
        row.push(acc.finish(a.func));
    }
    row
}

pub(crate) fn empty_global_agg_row(aggs: &[AggExpr]) -> Row {
    let accs: Vec<Acc> = aggs.iter().map(|_| Acc::new()).collect();
    agg_row(&[], &accs, aggs)
}

// ---------------------------------------------------------------------------
// Row kernels
// ---------------------------------------------------------------------------

pub(crate) fn hash_aggregate(rows: &[Row], keys: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let mut groups: HashMap<Vec<Value>, Vec<Acc>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for row in rows {
        let key: Vec<Value> = keys.iter().map(|&k| row[k].clone()).collect();
        let accs = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            aggs.iter().map(|_| Acc::new()).collect()
        });
        for (acc, a) in accs.iter_mut().zip(aggs) {
            acc.update(a.func, &row[a.input.min(row.len() - 1)]);
        }
    }
    Ok(order
        .into_iter()
        .map(|key| {
            let accs = &groups[&key];
            agg_row(&key, accs, aggs)
        })
        .collect())
}

pub(crate) fn stream_aggregate(rows: &[Row], keys: &[usize], aggs: &[AggExpr]) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for group in key_runs(rows, keys) {
        let mut accs: Vec<Acc> = aggs.iter().map(|_| Acc::new()).collect();
        for row in group {
            for (acc, a) in accs.iter_mut().zip(aggs) {
                acc.update(a.func, &row[a.input.min(row.len() - 1)]);
            }
        }
        let key: Vec<Value> = keys.iter().map(|&k| group[0][k].clone()).collect();
        out.push(agg_row(&key, &accs, aggs));
    }
    Ok(out)
}

/// Splits sorted rows into maximal runs of equal keys. For unsorted input
/// this still groups *adjacent* equal keys only — callers needing full
/// grouping must sort first (the optimizer's enforcers do).
pub(crate) fn key_runs<'a>(
    rows: &'a [Row],
    keys: &'a [usize],
) -> impl Iterator<Item = &'a [Row]> + 'a {
    let mut start = 0;
    std::iter::from_fn(move || {
        if start >= rows.len() {
            return None;
        }
        let mut end = start + 1;
        while end < rows.len() && keys.iter().all(|&k| rows[end][k] == rows[start][k]) {
            end += 1;
        }
        let run = &rows[start..end];
        start = end;
        Some(run)
    })
}

pub(crate) fn exec_window(
    rows: &[Row],
    func: &WindowFunc,
    partition: &[usize],
    order: &SortOrder,
) -> Result<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for group in key_runs(rows, partition) {
        // Deterministic in-group order: the requested order, ties broken by
        // full-row comparison (running sums would otherwise depend on
        // physical arrival order).
        let mut group: Vec<&Row> = group.iter().collect();
        group.sort_by(|a, b| compare_rows(a, b, order).then_with(|| a.cmp(b)));
        let group: Vec<Row> = group.into_iter().cloned().collect();
        let group = &group[..];
        let mut running_sum = 0.0;
        let mut rank = 0usize;
        let mut seen = 0usize;
        let mut prev: Option<&Row> = None;
        for row in group {
            seen += 1;
            let tied = prev
                .map(|p| compare_rows(p, row, order).is_eq())
                .unwrap_or(false);
            if !tied {
                rank = seen;
            }
            let v = match func {
                WindowFunc::RowNumber => Value::Int(seen as i64),
                WindowFunc::Rank => Value::Int(rank as i64),
                WindowFunc::RunningSum(c) => {
                    running_sum += row[*c].as_f64().unwrap_or(0.0);
                    Value::Float(running_sum)
                }
            };
            let mut r = row.clone();
            r.push(v);
            out.push(r);
            prev = Some(row);
        }
    }
    Ok(out)
}

/// Hash/merge join of one co-partition pair, row at a time: build on right
/// (skipping NULL keys), probe left in arrival order.
pub(crate) fn hash_join_rows(
    lp: &[Row],
    rp: &[Row],
    kind: JoinKind,
    left_keys: &[usize],
    right_keys: &[usize],
    rwidth: usize,
) -> Vec<Row> {
    let mut out = Vec::new();
    let mut built: HashMap<Vec<Value>, Vec<&Row>> = HashMap::new();
    for row in rp {
        let key: Vec<Value> = right_keys.iter().map(|&k| row[k].clone()).collect();
        if key.iter().any(Value::is_null) {
            continue; // NULL keys never join
        }
        built.entry(key).or_default().push(row);
    }
    for lrow in lp {
        let key: Vec<Value> = left_keys.iter().map(|&k| lrow[k].clone()).collect();
        let matches = if key.iter().any(Value::is_null) {
            None
        } else {
            built.get(&key)
        };
        emit_join_rows(lrow, matches.map(|v| v.as_slice()), kind, rwidth, &mut out);
    }
    out
}

/// Nested-loops join of one left partition against the gathered right side.
pub(crate) fn loops_join_rows(
    lp: &[Row],
    rp: &[Row],
    kind: JoinKind,
    left_keys: &[usize],
    right_keys: &[usize],
    rwidth: usize,
) -> Vec<Row> {
    let mut out = Vec::new();
    for lrow in lp {
        let matches: Vec<&Row> = rp
            .iter()
            .filter(|rrow| {
                left_keys
                    .iter()
                    .zip(right_keys)
                    .all(|(&lk, &rk)| !lrow[lk].is_null() && lrow[lk] == rrow[rk])
            })
            .collect();
        let m = if matches.is_empty() {
            None
        } else {
            Some(matches.as_slice())
        };
        emit_join_rows(lrow, m, kind, rwidth, &mut out);
    }
    out
}

pub(crate) fn emit_join_rows(
    lrow: &Row,
    matches: Option<&[&Row]>,
    kind: JoinKind,
    rwidth: usize,
    out: &mut Vec<Row>,
) {
    match (kind, matches) {
        (JoinKind::LeftSemi, Some(m)) if !m.is_empty() => out.push(lrow.clone()),
        (JoinKind::LeftSemi, _) => {}
        (_, Some(m)) if !m.is_empty() => {
            for rrow in m {
                let mut row = lrow.clone();
                row.extend(rrow.iter().cloned());
                out.push(row);
            }
        }
        (JoinKind::LeftOuter, _) => {
            let mut row = lrow.clone();
            row.extend(std::iter::repeat_n(Value::Null, rwidth));
            out.push(row);
        }
        (JoinKind::Inner, _) => {}
    }
}

// ---------------------------------------------------------------------------
// Row-at-a-time reference executor
// ---------------------------------------------------------------------------

/// A partitioned table stored as plain row vectors — the seed executor's
/// physical layout, kept as the reference/baseline representation.
#[derive(Clone, Debug, PartialEq)]
pub struct RowTable {
    /// Column schema.
    pub schema: Schema,
    /// Rows per partition.
    pub parts: Vec<Vec<Row>>,
    /// Physical properties the data satisfies.
    pub props: PhysicalProps,
}

impl RowTable {
    /// Converts a columnar table by materializing every row.
    pub fn from_table(t: &Table) -> RowTable {
        RowTable {
            schema: t.schema.clone(),
            parts: (0..t.num_partitions())
                .map(|p| t.partition_rows(p))
                .collect(),
            props: t.props.clone(),
        }
    }

    /// Converts back to the columnar representation (same partitioning).
    pub fn to_table(&self) -> Table {
        Table::from_rows(self.schema.clone(), self.parts.clone(), self.props.clone())
    }

    /// Total row count.
    pub fn num_rows(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }

    /// Total byte size, recomputed per call exactly like the seed
    /// `Table::num_bytes` (this is what the satellite fix caches in the
    /// columnar layout).
    pub fn num_bytes(&self) -> u64 {
        self.parts
            .iter()
            .flatten()
            .map(|r| r.iter().map(Value::byte_size).sum::<usize>() as u64)
            .sum()
    }

    /// All rows across partitions.
    pub fn all_rows(&self) -> Vec<Row> {
        self.parts.iter().flatten().cloned().collect()
    }

    fn gather(&self) -> RowTable {
        RowTable {
            schema: self.schema.clone(),
            parts: vec![self.all_rows()],
            props: PhysicalProps::single(),
        }
    }

    fn sort_partitions(&self, order: &SortOrder) -> RowTable {
        let mut parts = self.parts.clone();
        for p in &mut parts {
            sort_rows(p, order);
        }
        RowTable {
            schema: self.schema.clone(),
            parts,
            props: PhysicalProps {
                partitioning: self.props.partitioning.clone(),
                sort: order.clone(),
            },
        }
    }

    fn hash_repartition(&self, cols: &[usize], parts: usize) -> Result<RowTable> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "hash_repartition with 0 parts".into(),
            ));
        }
        for &c in cols {
            self.schema.column(c)?;
        }
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for row in self.parts.iter().flatten() {
            let mut h =
                scope_common::hash::SipHasher24::new_with_keys(0x9e3779b97f4a7c15, 0x85ebca6b);
            for &c in cols {
                row[c].stable_hash_into(&mut h);
            }
            out[(h.finish() % parts as u64) as usize].push(row.clone());
        }
        Ok(RowTable {
            schema: self.schema.clone(),
            parts: out,
            props: PhysicalProps {
                partitioning: Partitioning::Hash {
                    cols: cols.to_vec(),
                    parts,
                },
                sort: SortOrder::none(),
            },
        })
    }

    fn range_repartition(&self, col: usize, parts: usize) -> Result<RowTable> {
        if parts == 0 {
            return Err(ScopeError::Execution(
                "range_repartition with 0 parts".into(),
            ));
        }
        self.schema.column(col)?;
        let mut keys: Vec<Value> = self
            .parts
            .iter()
            .flatten()
            .map(|r| r[col].clone())
            .collect();
        keys.sort();
        let boundaries: Vec<Value> = (1..parts)
            .map(|i| {
                keys.get(i * keys.len() / parts)
                    .cloned()
                    .unwrap_or(Value::Null)
            })
            .collect();
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for row in self.parts.iter().flatten() {
            let p = boundaries.partition_point(|b| *b <= row[col]);
            out[p].push(row.clone());
        }
        Ok(RowTable {
            schema: self.schema.clone(),
            parts: out,
            props: PhysicalProps {
                partitioning: Partitioning::Range { col, parts },
                sort: SortOrder::none(),
            },
        })
    }

    fn round_robin_repartition(&self, parts: usize) -> Result<RowTable> {
        if parts == 0 {
            return Err(ScopeError::Execution("round_robin with 0 parts".into()));
        }
        let mut out: Vec<Vec<Row>> = vec![Vec::new(); parts];
        for (i, row) in self.parts.iter().flatten().enumerate() {
            out[i % parts].push(row.clone());
        }
        Ok(RowTable {
            schema: self.schema.clone(),
            parts: out,
            props: PhysicalProps {
                partitioning: Partitioning::RoundRobin { parts },
                sort: SortOrder::none(),
            },
        })
    }
}

/// Result of a reference (row-at-a-time) plan execution.
#[derive(Debug)]
pub struct RowExecOutcome {
    /// Output table per node.
    pub node_tables: Vec<RowTable>,
    /// Runtime statistics per node — must match the columnar executor's
    /// byte for byte.
    pub node_stats: Vec<NodeRuntimeStats>,
    /// Terminal outputs by name (gathered).
    pub outputs: HashMap<String, RowTable>,
}

/// Executes `graph` row at a time — the seed executor, preserved as the
/// reference implementation and benchmark baseline.
pub fn execute_plan_rows(
    graph: &QueryGraph,
    storage: &StorageManager,
    model: &CostModel,
    now: SimTime,
) -> Result<RowExecOutcome> {
    let mut tables: Vec<RowTable> = Vec::with_capacity(graph.len());
    let mut stats: Vec<NodeRuntimeStats> = Vec::with_capacity(graph.len());
    let mut outputs = HashMap::new();
    let schemas = graph.validate()?;

    for node in graph.nodes() {
        let child_tables: Vec<&RowTable> =
            node.children.iter().map(|c| &tables[c.index()]).collect();
        let in_rows: u64 = child_tables.iter().map(|t| t.num_rows() as u64).sum();
        let out_schema = &schemas[node.id.index()];
        let (table, scanned) = exec_node_rows(&node.op, &child_tables, out_schema, storage, now)?;
        let out_rows = table.num_rows() as u64;
        let out_bytes = table.num_bytes();
        let effective_in = if node.children.is_empty() {
            scanned
        } else {
            in_rows
        };
        let cpu = model.op_cpu(&node.op, effective_in, out_rows, out_bytes);
        if let Operator::Output { name, .. } = &node.op {
            outputs.insert(name.as_str().to_string(), table.gather());
        }
        stats.push(NodeRuntimeStats {
            in_rows: effective_in,
            out_rows,
            out_bytes,
            exclusive_cpu: cpu,
        });
        tables.push(table);
    }

    Ok(RowExecOutcome {
        node_tables: tables,
        node_stats: stats,
        outputs,
    })
}

fn exec_node_rows(
    op: &Operator,
    inputs: &[&RowTable],
    out_schema: &Schema,
    storage: &StorageManager,
    now: SimTime,
) -> Result<(RowTable, u64)> {
    let one = || -> Result<&RowTable> {
        inputs
            .first()
            .copied()
            .ok_or_else(|| ScopeError::Execution(format!("{} executed without input", op.kind())))
    };
    match op {
        Operator::Get {
            dataset,
            kind,
            predicate,
            extractor,
            ..
        } => {
            let stored = storage.dataset(*dataset)?;
            let scanned = stored.num_rows() as u64;
            let mut parts: Vec<Vec<Row>> = Vec::with_capacity(stored.num_partitions());
            for p in 0..stored.num_partitions() {
                let mut out_part: Vec<Row> = Vec::new();
                for row in stored.partition_rows(p) {
                    if let Some(pred) = predicate {
                        if !pred.eval(&row)?.is_true() {
                            continue;
                        }
                    }
                    match kind {
                        scope_plan::ScanKind::Extract => {
                            let udo = extractor.as_ref().ok_or_else(|| {
                                ScopeError::Execution("extract scan without extractor".into())
                            })?;
                            udo.process_row(&row, &mut out_part)?;
                        }
                        _ => out_part.push(row),
                    }
                }
                parts.push(out_part);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: stored.props.clone(),
                },
                scanned,
            ))
        }
        Operator::ViewGet { view_sig, .. } => {
            let file = storage.open_view(*view_sig, now)?;
            let scanned = file.table.num_rows() as u64;
            Ok((RowTable::from_table(&file.table), scanned))
        }
        Operator::Filter { predicate } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                let mut out = Vec::new();
                for row in part {
                    if predicate.eval(row)?.is_true() {
                        out.push(row.clone());
                    }
                }
                parts.push(out);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: input.props.clone(),
                },
                0,
            ))
        }
        Operator::Project { exprs } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                let mut out = Vec::with_capacity(part.len());
                for row in part {
                    let new_row: Result<Row> = exprs.iter().map(|ne| ne.expr.eval(row)).collect();
                    out.push(new_row?);
                }
                parts.push(out);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Remap { cols, .. } => {
            let input = one()?;
            let parts = input
                .parts
                .iter()
                .map(|part| {
                    part.iter()
                        .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
                        .collect()
                })
                .collect();
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Sort { order } => Ok((one()?.sort_partitions(order), 0)),
        Operator::Exchange { scheme } => {
            let input = one()?;
            let out = match scheme {
                Partitioning::Hash { cols, parts } => input.hash_repartition(cols, *parts)?,
                Partitioning::Range { col, parts } => input.range_repartition(*col, *parts)?,
                Partitioning::RoundRobin { parts } => input.round_robin_repartition(*parts)?,
                Partitioning::Single => input.gather(),
                Partitioning::Any => input.clone(),
            };
            Ok((out, 0))
        }
        Operator::Aggregate {
            keys,
            aggs,
            implementation,
        } => {
            let input = one()?;
            let mut parts: Vec<Vec<Row>> = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                let rows = match implementation {
                    AggImpl::Hash => hash_aggregate(part, keys, aggs)?,
                    AggImpl::Stream => stream_aggregate(part, keys, aggs)?,
                };
                parts.push(rows);
            }
            if keys.is_empty() {
                let total: usize = parts.iter().map(Vec::len).sum();
                if total == 0 && !parts.is_empty() {
                    parts[0].push(empty_global_agg_row(aggs));
                }
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Top { n, order } => {
            let input = one()?;
            let mut rows = input.all_rows();
            rows.sort_by(|a, b| compare_rows(a, b, order).then_with(|| a.cmp(b)));
            rows.truncate(*n);
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts: vec![rows],
                    props: PhysicalProps {
                        partitioning: Partitioning::Single,
                        sort: order.clone(),
                    },
                },
                0,
            ))
        }
        Operator::Window {
            func,
            partition,
            order,
        } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                parts.push(exec_window(part, func, partition, order)?);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Process { udo } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                let mut out = Vec::new();
                for row in part {
                    udo.process_row(row, &mut out)?;
                }
                parts.push(out);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Reduce { udo, keys } | Operator::GbApply { udo, keys } => {
            let input = one()?;
            let mut parts = Vec::with_capacity(input.parts.len());
            for part in &input.parts {
                let mut out = Vec::new();
                for group in key_runs(part, keys) {
                    udo.reduce_group(group, &mut out)?;
                }
                parts.push(out);
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: op.delivered_props(std::slice::from_ref(&input.props)),
                },
                0,
            ))
        }
        Operator::Spool | Operator::Nop => Ok((one()?.clone(), 0)),
        Operator::Sequence => {
            let last = inputs.last().copied().ok_or_else(|| {
                ScopeError::Execution("Sequence executed without children".into())
            })?;
            Ok((last.clone(), 0))
        }
        Operator::Join {
            kind,
            implementation,
            left_keys,
            right_keys,
        } => {
            let left = inputs[0];
            let right = inputs[1];
            let rwidth = right.schema.len();
            let pairs: Vec<(&Vec<Row>, &Vec<Row>)> = match implementation {
                JoinImpl::Loops => {
                    let rp = right.parts.first().ok_or_else(|| {
                        ScopeError::Execution("loops join with no right partition".into())
                    })?;
                    left.parts.iter().map(|lp| (lp, rp)).collect()
                }
                _ => {
                    if left.parts.len() != right.parts.len() {
                        return Err(ScopeError::Execution(format!(
                            "join partition mismatch: {} vs {}",
                            left.parts.len(),
                            right.parts.len()
                        )));
                    }
                    left.parts.iter().zip(&right.parts).collect()
                }
            };
            let mut parts = Vec::with_capacity(pairs.len());
            for (lp, rp) in pairs {
                parts.push(match implementation {
                    JoinImpl::Hash | JoinImpl::Merge => {
                        hash_join_rows(lp, rp, *kind, left_keys, right_keys, rwidth)
                    }
                    JoinImpl::Loops => {
                        loops_join_rows(lp, rp, *kind, left_keys, right_keys, rwidth)
                    }
                });
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: PhysicalProps {
                        partitioning: left.props.partitioning.clone(),
                        sort: SortOrder::none(),
                    },
                },
                0,
            ))
        }
        Operator::UnionAll => {
            let mut parts = Vec::new();
            for t in inputs {
                parts.extend(t.parts.iter().cloned());
            }
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts,
                    props: PhysicalProps::any(),
                },
                0,
            ))
        }
        Operator::Combine { udo } => {
            let mut left = inputs[0].all_rows();
            let mut right = inputs[1].all_rows();
            if !matches!(udo.kind, scope_plan::UdoKind::MergeStreams) {
                return Err(ScopeError::Execution(format!(
                    "{} is not a combiner",
                    udo.kind.name()
                )));
            }
            let order = SortOrder::asc(&[0]);
            sort_rows(&mut left, &order);
            sort_rows(&mut right, &order);
            left.extend(right);
            Ok((
                RowTable {
                    schema: out_schema.clone(),
                    parts: vec![left],
                    props: PhysicalProps::single(),
                },
                0,
            ))
        }
        Operator::Output { .. } => Ok((one()?.gather(), 0)),
    }
}
