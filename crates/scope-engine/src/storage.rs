//! The storage manager: base datasets and the materialized-view store.
//!
//! Views are stored keyed by their **precise** signature — the paper encodes
//! the precise signature (and producing job id) into the physical file path
//! of the materialized view, and so do we ([`ViewFile::physical_path`]).
//! Each view carries an expiry; the storage manager "takes care of purging
//! the file once it expires" (Section 5.4).
//!
//! Thread-safe: concurrent jobs read datasets and publish views in parallel
//! in the synchronization experiments.
//!
//! Every published view records a content checksum at publish time;
//! [`StorageManager::open_view`] re-verifies it on read, so a file that was
//! lost ([`StorageManager::lose_view`]) or corrupted in place
//! ([`StorageManager::corrupt_view`]) surfaces as
//! [`ScopeError::ViewUnavailable`] and the runtime falls back to
//! recomputation instead of returning wrong rows.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use scope_common::hash::Sig128;
use scope_common::ids::{DatasetId, JobId};
use scope_common::telemetry::{Counter, Gauge, Telemetry};
use scope_common::time::SimTime;
use scope_common::{Result, ScopeError};
use scope_plan::PhysicalProps;

use crate::data::{multiset_checksum, Table};

/// Metadata of one materialized view file.
#[derive(Clone, Debug, PartialEq)]
pub struct ViewMeta {
    /// Precise signature of the computation this file materializes.
    pub precise: Sig128,
    /// Normalized signature of the same computation (provenance/debugging).
    pub normalized: Sig128,
    /// Job that produced the file (view provenance, paper requirement 6).
    pub producer: JobId,
    /// Simulated creation time.
    pub created_at: SimTime,
    /// Simulated expiry; the file is purged and never served past this.
    pub expires_at: SimTime,
    /// Stored rows.
    pub rows: u64,
    /// Stored bytes.
    pub bytes: u64,
}

/// A stored materialized view: data plus metadata.
#[derive(Clone, Debug)]
pub struct ViewFile {
    /// The stored rows, in the stored physical design.
    pub table: Arc<Table>,
    /// Physical design the data satisfies.
    pub props: PhysicalProps,
    /// File metadata.
    pub meta: ViewMeta,
}

impl ViewFile {
    /// The simulated physical path; mirrors the paper's
    /// `D:\viewPath.ss`-style annotation with the precise signature and the
    /// producing job id embedded for provenance.
    pub fn physical_path(&self) -> String {
        format!("/views/{}/{}.ss", self.meta.precise, self.meta.producer)
    }
}

/// Why a view read was refused (pre-formatting, so telemetry can classify
/// checksum failures without string matching).
enum OpenFailure {
    Missing,
    Expired(SimTime),
    Corrupt,
}

/// A stored view plus the content checksum recorded when it was published.
struct StoredView {
    file: ViewFile,
    /// `multiset_checksum` of the rows at publish time; verified on read.
    integrity: u64,
}

/// Observer of durable view-store mutations. The durability layer installs
/// one to mirror every publish/delete into its on-disk segment store.
///
/// Implementations must not call back into the [`StorageManager`]: sinks
/// are invoked while the manager's internal lock is held, so the sink's own
/// state must be a lock-ordering leaf. Deliberately *not* notified:
/// [`StorageManager::corrupt_view`] (an injected in-memory fault — the
/// durable copy staying intact is exactly what restores the view after a
/// restart).
pub trait StorageEventSink: Send + Sync {
    /// A view file became durable (first writer won the publish race).
    fn view_published(&self, view: &ViewFile);
    /// A view file was removed (expiry purge, admin delete, or loss).
    fn view_deleted(&self, precise: Sig128);
}

#[derive(Default)]
struct Inner {
    datasets: HashMap<DatasetId, Arc<Table>>,
    views: HashMap<Sig128, StoredView>,
}

/// Cached telemetry handles for the view-store hot paths, resolved once at
/// [`StorageManager::set_telemetry`].
struct StorageMetrics {
    views_published: Counter,
    bytes_written: Counter,
    view_opens: Counter,
    bytes_read: Counter,
    checksum_failures: Counter,
    open_failures: Counter,
    views_purged: Counter,
    bytes_purged: Counter,
    live_views: Gauge,
    live_bytes: Gauge,
}

impl StorageMetrics {
    fn new(sink: &Telemetry) -> StorageMetrics {
        let m = &sink.metrics;
        StorageMetrics {
            views_published: m.counter("cv_storage_views_published_total"),
            bytes_written: m.counter("cv_storage_bytes_written_total"),
            view_opens: m.counter("cv_storage_view_opens_total"),
            bytes_read: m.counter("cv_storage_bytes_read_total"),
            checksum_failures: m.counter("cv_storage_checksum_failures_total"),
            open_failures: m.counter("cv_storage_open_failures_total"),
            views_purged: m.counter("cv_storage_views_purged_total"),
            bytes_purged: m.counter("cv_storage_bytes_purged_total"),
            live_views: m.gauge("cv_storage_views"),
            live_bytes: m.gauge("cv_storage_view_bytes"),
        }
    }
}

/// Thread-safe catalog of base datasets and materialized views.
#[derive(Default)]
pub struct StorageManager {
    inner: RwLock<Inner>,
    telemetry: RwLock<Option<StorageMetrics>>,
    /// Optional durability mirror for view publishes/deletes.
    sink: RwLock<Option<Arc<dyn StorageEventSink>>>,
}

impl StorageManager {
    /// An empty storage manager.
    pub fn new() -> Self {
        StorageManager::default()
    }

    /// Installs (or clears) the telemetry sink. Handles are resolved once
    /// here so per-call recording is a handful of atomic operations.
    pub fn set_telemetry(&self, sink: Option<Arc<Telemetry>>) {
        *self.telemetry.write() = sink.map(|s| StorageMetrics::new(&s));
    }

    /// Installs (or clears) the durability sink notified on every view
    /// publish and delete. Attach it *after* rehydrating recovered views,
    /// or recovery would re-append every view it just read.
    pub fn set_event_sink(&self, sink: Option<Arc<dyn StorageEventSink>>) {
        *self.sink.write() = sink;
    }

    /// Refreshes the live-view gauges from the current catalog state.
    fn update_view_gauges(&self, inner: &Inner) {
        if let Some(t) = self.telemetry.read().as_ref() {
            t.live_views.set(inner.views.len() as i64);
            t.live_bytes
                .set(inner.views.values().map(|v| v.file.meta.bytes).sum::<u64>() as i64);
        }
    }

    /// Registers (or replaces) a base dataset.
    pub fn put_dataset(&self, id: DatasetId, table: Table) {
        self.inner.write().datasets.insert(id, Arc::new(table));
    }

    /// Fetches a base dataset.
    pub fn dataset(&self, id: DatasetId) -> Result<Arc<Table>> {
        self.inner
            .read()
            .datasets
            .get(&id)
            .cloned()
            .ok_or_else(|| ScopeError::Storage(format!("unknown dataset {id}")))
    }

    /// Row count of a dataset, if registered (the optimizer's statistics
    /// oracle for base tables).
    pub fn dataset_rows(&self, id: DatasetId) -> Option<u64> {
        self.inner
            .read()
            .datasets
            .get(&id)
            .map(|t| t.num_rows() as u64)
    }

    /// Number of registered datasets.
    pub fn num_datasets(&self) -> usize {
        self.inner.read().datasets.len()
    }

    /// Publishes a materialized view. Publishing an already-present precise
    /// signature is idempotent (the second writer lost the build race and
    /// its file is discarded — first-writer-wins keeps provenance stable).
    pub fn publish_view(&self, file: ViewFile) -> Result<()> {
        let integrity = multiset_checksum(&file.table);
        let bytes = file.meta.bytes;
        let precise = file.meta.precise;
        let mut inner = self.inner.write();
        let before = inner.views.len();
        inner
            .views
            .entry(precise)
            .or_insert(StoredView { file, integrity });
        let written = inner.views.len() > before;
        if written {
            if let Some(sink) = self.sink.read().as_ref() {
                sink.view_published(&inner.views[&precise].file);
            }
        }
        if let Some(t) = self.telemetry.read().as_ref() {
            if written {
                t.views_published.inc();
                t.bytes_written.add(bytes);
            }
        }
        self.update_view_gauges(&inner);
        Ok(())
    }

    /// Looks up a view by precise signature, refusing expired files.
    ///
    /// This is the cheap metadata-level probe: it does *not* verify content
    /// integrity. Execution reads go through [`StorageManager::open_view`].
    pub fn view(&self, precise: Sig128, now: SimTime) -> Option<ViewFile> {
        let inner = self.inner.read();
        inner
            .views
            .get(&precise)
            .filter(|v| v.file.meta.expires_at > now)
            .map(|v| v.file.clone())
    }

    /// Opens a view for reading, verifying the content checksum recorded at
    /// publish time. A missing, expired, or corrupted file is reported as
    /// [`ScopeError::ViewUnavailable`] so the caller can fall back to
    /// recomputation.
    pub fn open_view(&self, precise: Sig128, now: SimTime) -> Result<ViewFile> {
        let result = self.open_view_inner(precise, now);
        if let Some(t) = self.telemetry.read().as_ref() {
            t.view_opens.inc();
            match &result {
                Ok(file) => t.bytes_read.add(file.meta.bytes),
                Err(OpenFailure::Corrupt) => {
                    t.checksum_failures.inc();
                    t.open_failures.inc();
                }
                Err(_) => t.open_failures.inc(),
            }
        }
        result.map_err(|e| match e {
            OpenFailure::Missing => {
                ScopeError::ViewUnavailable(format!("view {precise}: file not found"))
            }
            OpenFailure::Expired(at) => {
                ScopeError::ViewUnavailable(format!("view {precise}: expired at {at:?}"))
            }
            OpenFailure::Corrupt => ScopeError::ViewUnavailable(format!(
                "view {precise}: content checksum mismatch (corrupt file)"
            )),
        })
    }

    fn open_view_inner(
        &self,
        precise: Sig128,
        now: SimTime,
    ) -> std::result::Result<ViewFile, OpenFailure> {
        let inner = self.inner.read();
        let stored = inner.views.get(&precise).ok_or(OpenFailure::Missing)?;
        if stored.file.meta.expires_at <= now {
            return Err(OpenFailure::Expired(stored.file.meta.expires_at));
        }
        if multiset_checksum(&stored.file.table) != stored.integrity {
            return Err(OpenFailure::Corrupt);
        }
        Ok(stored.file.clone())
    }

    /// Simulates losing a view file (disk failure, premature deletion): the
    /// file disappears while any metadata annotations pointing at it remain.
    /// Returns true when a file was present to lose.
    pub fn lose_view(&self, precise: Sig128) -> bool {
        let lost = self.inner.write().views.remove(&precise).is_some();
        if lost {
            if let Some(sink) = self.sink.read().as_ref() {
                sink.view_deleted(precise);
            }
        }
        lost
    }

    /// Simulates in-place corruption of a view file: the stored rows no
    /// longer match the checksum recorded at publish time, so a subsequent
    /// [`StorageManager::open_view`] fails. Returns true when a file was
    /// present to corrupt.
    pub fn corrupt_view(&self, precise: Sig128) -> bool {
        let mut inner = self.inner.write();
        match inner.views.get_mut(&precise) {
            Some(stored) => {
                let rows = stored.file.table.num_rows();
                if rows > 0 {
                    // Bit rot: silently drop the last row of the file.
                    let mut remaining = stored.file.table.all_rows();
                    remaining.pop();
                    stored.file.table =
                        Arc::new(Table::single(stored.file.table.schema.clone(), remaining));
                } else {
                    // Nothing to truncate; damage the recorded checksum so
                    // verification still fails.
                    stored.integrity ^= 0xDEAD_BEEF;
                }
                true
            }
            None => false,
        }
    }

    /// True when a non-expired view exists for `precise`.
    pub fn view_exists(&self, precise: Sig128, now: SimTime) -> bool {
        self.view(precise, now).is_some()
    }

    /// Removes expired view files; returns the reclaimed bytes.
    pub fn purge_expired(&self, now: SimTime) -> u64 {
        let mut inner = self.inner.write();
        let before = inner.views.len();
        let mut reclaimed = 0;
        let mut purged: Vec<Sig128> = Vec::new();
        inner.views.retain(|p, v| {
            if v.file.meta.expires_at <= now {
                reclaimed += v.file.meta.bytes;
                purged.push(*p);
                false
            } else {
                true
            }
        });
        if !purged.is_empty() {
            if let Some(sink) = self.sink.read().as_ref() {
                for p in &purged {
                    sink.view_deleted(*p);
                }
            }
        }
        if let Some(t) = self.telemetry.read().as_ref() {
            t.views_purged.add((before - inner.views.len()) as u64);
            t.bytes_purged.add(reclaimed);
        }
        self.update_view_gauges(&inner);
        reclaimed
    }

    /// Deletes a specific view (admin space reclamation, Section 5.4);
    /// returns the reclaimed bytes.
    pub fn delete_view(&self, precise: Sig128) -> Option<u64> {
        let mut inner = self.inner.write();
        let bytes = inner.views.remove(&precise).map(|v| v.file.meta.bytes);
        if bytes.is_some() {
            if let Some(sink) = self.sink.read().as_ref() {
                sink.view_deleted(precise);
            }
            self.update_view_gauges(&inner);
        }
        bytes
    }

    /// Total bytes currently held by materialized views.
    pub fn total_view_bytes(&self) -> u64 {
        self.inner
            .read()
            .views
            .values()
            .map(|v| v.file.meta.bytes)
            .sum()
    }

    /// Number of stored views.
    pub fn num_views(&self) -> usize {
        self.inner.read().views.len()
    }

    /// Metadata of all stored views (reporting).
    pub fn view_metas(&self) -> Vec<ViewMeta> {
        self.inner
            .read()
            .views
            .values()
            .map(|v| v.file.meta.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::sip128;
    use scope_common::time::SimDuration;
    use scope_plan::{DataType, Schema, Value};

    fn tiny_table() -> Table {
        Table::single(
            Schema::from_pairs(&[("a", DataType::Int)]),
            vec![vec![Value::Int(1)], vec![Value::Int(2)]],
        )
    }

    fn view(sig: &[u8], expires: SimTime) -> ViewFile {
        ViewFile {
            table: Arc::new(tiny_table()),
            props: PhysicalProps::single(),
            meta: ViewMeta {
                precise: sip128(sig),
                normalized: sip128(b"norm"),
                producer: JobId::new(1),
                created_at: SimTime::ZERO,
                expires_at: expires,
                rows: 2,
                bytes: 100,
            },
        }
    }

    #[test]
    fn dataset_round_trip() {
        let s = StorageManager::new();
        s.put_dataset(DatasetId::new(1), tiny_table());
        assert_eq!(s.dataset(DatasetId::new(1)).unwrap().num_rows(), 2);
        assert_eq!(s.dataset_rows(DatasetId::new(1)), Some(2));
        assert!(s.dataset(DatasetId::new(9)).is_err());
        assert_eq!(s.num_datasets(), 1);
    }

    #[test]
    fn view_publish_and_lookup() {
        let s = StorageManager::new();
        let v = view(b"v1", SimTime(1_000_000));
        let sig = v.meta.precise;
        s.publish_view(v).unwrap();
        assert!(s.view_exists(sig, SimTime::ZERO));
        assert_eq!(s.view(sig, SimTime::ZERO).unwrap().meta.rows, 2);
        // Expired view is not served.
        assert!(!s.view_exists(sig, SimTime(1_000_000)));
    }

    #[test]
    fn publish_is_first_writer_wins() {
        let s = StorageManager::new();
        let mut v1 = view(b"v", SimTime::MAX);
        v1.meta.producer = JobId::new(1);
        let mut v2 = view(b"v", SimTime::MAX);
        v2.meta.producer = JobId::new(2);
        s.publish_view(v1).unwrap();
        s.publish_view(v2).unwrap();
        assert_eq!(s.num_views(), 1);
        assert_eq!(
            s.view(sip128(b"v"), SimTime::ZERO).unwrap().meta.producer,
            JobId::new(1)
        );
    }

    #[test]
    fn purge_reclaims_only_expired() {
        let s = StorageManager::new();
        s.publish_view(view(b"old", SimTime(10))).unwrap();
        s.publish_view(view(b"new", SimTime(1_000))).unwrap();
        assert_eq!(s.total_view_bytes(), 200);
        let reclaimed = s.purge_expired(SimTime(10) + SimDuration::from_micros(1));
        assert_eq!(reclaimed, 100);
        assert_eq!(s.num_views(), 1);
        assert_eq!(s.total_view_bytes(), 100);
    }

    #[test]
    fn delete_view_reclaims() {
        let s = StorageManager::new();
        s.publish_view(view(b"x", SimTime::MAX)).unwrap();
        assert_eq!(s.delete_view(sip128(b"x")), Some(100));
        assert_eq!(s.delete_view(sip128(b"x")), None);
        assert_eq!(s.num_views(), 0);
    }

    #[test]
    fn open_view_verifies_integrity() {
        let s = StorageManager::new();
        let v = view(b"ok", SimTime(1_000_000));
        let sig = v.meta.precise;
        s.publish_view(v).unwrap();
        // Healthy file opens fine.
        assert_eq!(s.open_view(sig, SimTime::ZERO).unwrap().meta.rows, 2);
        // Expired file is refused.
        let err = s.open_view(sig, SimTime(1_000_000)).unwrap_err();
        assert_eq!(err.kind(), "view_unavailable");
        // Unknown signature is refused.
        let err = s.open_view(sip128(b"nope"), SimTime::ZERO).unwrap_err();
        assert_eq!(err.kind(), "view_unavailable");
    }

    #[test]
    fn lost_view_fails_open_but_not_silently() {
        let s = StorageManager::new();
        let v = view(b"gone", SimTime::MAX);
        let sig = v.meta.precise;
        s.publish_view(v).unwrap();
        assert!(s.lose_view(sig));
        assert!(!s.lose_view(sig), "second loss finds nothing");
        let err = s.open_view(sig, SimTime::ZERO).unwrap_err();
        assert!(err.message().contains("not found"), "{err}");
    }

    #[test]
    fn corrupt_view_fails_checksum_verification() {
        let s = StorageManager::new();
        let v = view(b"rot", SimTime::MAX);
        let sig = v.meta.precise;
        s.publish_view(v).unwrap();
        assert!(s.corrupt_view(sig));
        // The cheap metadata probe still sees the file...
        assert!(s.view_exists(sig, SimTime::ZERO));
        // ...but an execution read detects the damage.
        let err = s.open_view(sig, SimTime::ZERO).unwrap_err();
        assert!(err.message().contains("checksum mismatch"), "{err}");
        assert!(!s.corrupt_view(sip128(b"missing")));
    }

    #[test]
    fn corrupting_empty_view_still_detected() {
        let s = StorageManager::new();
        let mut v = view(b"empty", SimTime::MAX);
        v.table = Arc::new(Table::empty(Schema::from_pairs(&[("a", DataType::Int)])));
        v.meta.rows = 0;
        let sig = v.meta.precise;
        s.publish_view(v).unwrap();
        assert!(s.corrupt_view(sig));
        assert!(s.open_view(sig, SimTime::ZERO).is_err());
    }

    #[test]
    fn physical_path_embeds_provenance() {
        let v = view(b"p", SimTime::MAX);
        let path = v.physical_path();
        assert!(path.contains(&v.meta.precise.to_string()));
        assert!(path.contains("job1"));
        assert!(path.ends_with(".ss"));
    }

    #[test]
    fn concurrent_publish_and_read() {
        use std::sync::Arc as StdArc;
        let s = StdArc::new(StorageManager::new());
        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                let s = StdArc::clone(&s);
                std::thread::spawn(move || {
                    let v = view(format!("v{i}").as_bytes(), SimTime::MAX);
                    s.publish_view(v).unwrap();
                    s.total_view_bytes()
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.num_views(), 8);
    }
}
