//! Vectorized expression evaluation over [`RecordBatch`]es.
//!
//! The expression tree is walked **once per batch**; each node produces a
//! whole column (or a constant). Hot patterns — typed column vs. literal
//! comparisons, integer arithmetic, boolean three-valued logic — run as
//! tight loops over the typed vectors; everything else falls through to a
//! generic per-element loop that calls the scalar kernels
//! ([`scope_plan::eval_binary`] / [`scope_plan::eval_func`]) so the scalar
//! semantics are shared with [`Expr::eval`], not reimplemented.
//!
//! # Equivalence contract
//!
//! The row executor evaluated expressions lazily: `AND`/`OR` short-circuit
//! per row, so the right operand was never evaluated for rows where the left
//! decided the result. The batch evaluator computes whole columns eagerly —
//! a *superset* of the elements the row path touched. That superset can hit
//! errors the row path never would. The entry points therefore fall back to
//! exact row-at-a-time evaluation whenever the vectorized pass errors:
//!
//! * if the row path would have errored, the vectorized pass errors too
//!   (it evaluates a superset with identical per-element semantics), and the
//!   fallback then reproduces the row path's exact first error;
//! * if the vectorized error was spurious (a row the row path skipped), the
//!   fallback succeeds with the row path's exact values.
//!
//! Either way, callers observe byte-identical results to the seed executor.

use std::sync::Arc;

use scope_common::{Result, ScopeError};
use scope_plan::{eval_binary, eval_func, BinOp, Expr, NamedExpr, UnaryOp, Value};

use crate::data::{Cell, ColumnVector, NullMask, RecordBatch};

/// An evaluated expression over one batch: a column, or one constant that
/// stands for every row (literals and recurring parameters stay scalar).
enum Ev {
    Col(Arc<ColumnVector>),
    Const(Value),
}

impl Ev {
    fn value_at(&self, i: usize) -> Value {
        match self {
            Ev::Col(c) => c.value(i),
            Ev::Const(v) => v.clone(),
        }
    }

    fn into_column(self, rows: usize) -> Arc<ColumnVector> {
        match self {
            Ev::Col(c) => c,
            Ev::Const(v) => Arc::new(ColumnVector::from_values(vec![v; rows])),
        }
    }
}

/// Evaluates `pred` over the batch and returns the selection vector: the
/// indices (in order) of rows where the predicate is `Bool(true)`.
///
/// Exactly equivalent to `pred.eval(row)?.is_true()` per row (see the module
/// docs for the fallback argument).
pub(crate) fn eval_predicate_selection(pred: &Expr, batch: &RecordBatch) -> Result<Vec<usize>> {
    let rows = batch.num_rows();
    if rows == 0 {
        return Ok(Vec::new());
    }
    match eval_ev(pred, batch) {
        Ok(Ev::Const(v)) => Ok(if v.is_true() {
            (0..rows).collect()
        } else {
            Vec::new()
        }),
        Ok(Ev::Col(col)) => Ok((0..rows)
            .filter(|&i| matches!(col.cell(i), Cell::Bool(true)))
            .collect()),
        Err(_) => {
            // Rowwise fallback: reproduces the row executor bit for bit.
            let mut sel = Vec::new();
            for i in 0..rows {
                if pred.eval(&batch.row(i))?.is_true() {
                    sel.push(i);
                }
            }
            Ok(sel)
        }
    }
}

/// Evaluates a projection list over the batch, one output column per
/// expression. Equivalent to evaluating each expression per row in
/// row-major order (the row executor's error order is preserved via the
/// fallback).
pub(crate) fn eval_exprs(
    exprs: &[NamedExpr],
    batch: &RecordBatch,
) -> Result<Vec<Arc<ColumnVector>>> {
    let rows = batch.num_rows();
    if rows == 0 {
        return Ok(exprs
            .iter()
            .map(|_| Arc::new(ColumnVector::Mixed(Vec::new())))
            .collect());
    }
    let mut out = Vec::with_capacity(exprs.len());
    let mut failed = false;
    for e in exprs {
        match eval_ev(&e.expr, batch) {
            Ok(ev) => out.push(ev.into_column(rows)),
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    if !failed {
        return Ok(out);
    }
    // Rowwise fallback, row-major like the seed Project kernel.
    let mut cols: Vec<Vec<Value>> = exprs.iter().map(|_| Vec::with_capacity(rows)).collect();
    for i in 0..rows {
        let row = batch.row(i);
        for (j, e) in exprs.iter().enumerate() {
            cols[j].push(e.expr.eval(&row)?);
        }
    }
    Ok(cols
        .into_iter()
        .map(|c| Arc::new(ColumnVector::from_values(c)))
        .collect())
}

fn col_oob(i: usize, width: usize) -> ScopeError {
    ScopeError::Expression(format!("column {i} out of range (row width {width})"))
}

fn eval_ev(expr: &Expr, batch: &RecordBatch) -> Result<Ev> {
    let rows = batch.num_rows();
    match expr {
        Expr::Col(i) => {
            if *i >= batch.width() {
                return Err(col_oob(*i, batch.width()));
            }
            Ok(Ev::Col(batch.column(*i).clone()))
        }
        Expr::Lit(v) => Ok(Ev::Const(v.clone())),
        Expr::RecurringParam { value, .. } => Ok(Ev::Const(value.clone())),
        Expr::Unary { op, child } => {
            let c = eval_ev(child, batch)?;
            eval_unary_ev(*op, c, rows)
        }
        Expr::Binary { op, left, right } => {
            let l = eval_ev(left, batch)?;
            // Constant short-circuit: when the left operand is the same
            // decisive constant for every row, the row path never evaluated
            // the right subtree — neither do we.
            match (&l, op) {
                (Ev::Const(v), BinOp::And) if *v == Value::Bool(false) => {
                    return Ok(Ev::Const(Value::Bool(false)));
                }
                (Ev::Const(v), BinOp::Or) if *v == Value::Bool(true) => {
                    return Ok(Ev::Const(Value::Bool(true)));
                }
                _ => {}
            }
            let r = eval_ev(right, batch)?;
            eval_binary_ev(*op, l, r, rows)
        }
        Expr::Func { func, args } => {
            let evs: Vec<Ev> = args
                .iter()
                .map(|a| eval_ev(a, batch))
                .collect::<Result<_>>()?;
            if evs.iter().all(|e| matches!(e, Ev::Const(_))) {
                let vals: Vec<Value> = evs.iter().map(|e| e.value_at(0)).collect();
                return Ok(Ev::Const(eval_func(*func, &vals)?));
            }
            let mut out = Vec::with_capacity(rows);
            let mut scratch: Vec<Value> = Vec::with_capacity(evs.len());
            for i in 0..rows {
                scratch.clear();
                scratch.extend(evs.iter().map(|e| e.value_at(i)));
                out.push(eval_func(*func, &scratch)?);
            }
            Ok(Ev::Col(Arc::new(ColumnVector::from_values(out))))
        }
    }
}

fn eval_unary_ev(op: UnaryOp, child: Ev, rows: usize) -> Result<Ev> {
    match child {
        Ev::Const(v) => Ok(Ev::Const(unary_scalar(op, v)?)),
        Ev::Col(col) => {
            // Typed fast paths.
            match (op, col.as_ref()) {
                (UnaryOp::IsNull, c) => {
                    let data: Vec<bool> = (0..rows).map(|i| c.is_null(i)).collect();
                    return Ok(Ev::Col(Arc::new(ColumnVector::Bool { data, nulls: None })));
                }
                (UnaryOp::Not, ColumnVector::Bool { data, nulls }) => {
                    return Ok(Ev::Col(Arc::new(ColumnVector::Bool {
                        data: data.iter().map(|b| !b).collect(),
                        nulls: nulls.clone(),
                    })));
                }
                (UnaryOp::Neg, ColumnVector::Int { data, nulls }) => {
                    return Ok(Ev::Col(Arc::new(ColumnVector::Int {
                        data: data.iter().map(|i| i.wrapping_neg()).collect(),
                        nulls: nulls.clone(),
                    })));
                }
                (UnaryOp::Neg, ColumnVector::Float { data, nulls }) => {
                    return Ok(Ev::Col(Arc::new(ColumnVector::Float {
                        data: data.iter().map(|f| -f).collect(),
                        nulls: nulls.clone(),
                    })));
                }
                _ => {}
            }
            let mut out = Vec::with_capacity(rows);
            for i in 0..rows {
                out.push(unary_scalar(op, col.value(i))?);
            }
            Ok(Ev::Col(Arc::new(ColumnVector::from_values(out))))
        }
    }
}

/// One-value unary semantics, identical to the `Expr::Unary` arm of
/// [`Expr::eval`].
fn unary_scalar(op: UnaryOp, v: Value) -> Result<Value> {
    Ok(match op {
        UnaryOp::Not => match v {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => return Err(ScopeError::Expression(format!("NOT on {other}"))),
        },
        UnaryOp::Neg => match v {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            other => return Err(ScopeError::Expression(format!("NEG on {other}"))),
        },
        UnaryOp::IsNull => Value::Bool(v.is_null()),
    })
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    )
}

fn cmp_holds(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("cmp_holds on non-comparison"),
    }
}

/// Mirrors a comparison so `const OP col` can reuse the `col OP const`
/// kernels: `a < b  ⟺  b > a`, etc.
fn flip_cmp(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other, // Eq / Ne are symmetric
    }
}

fn eval_binary_ev(op: BinOp, l: Ev, r: Ev, rows: usize) -> Result<Ev> {
    // Const ⊗ Const: one scalar evaluation covers every row.
    if let (Ev::Const(a), Ev::Const(b)) = (&l, &r) {
        return Ok(Ev::Const(eval_binary(op, a.clone(), b.clone())?));
    }

    // Typed fast paths.
    if is_cmp(op) {
        match (&l, &r) {
            (Ev::Col(c), Ev::Const(k)) => {
                if let Some(out) = cmp_col_const(op, c, k, rows) {
                    return Ok(Ev::Col(Arc::new(out)));
                }
            }
            (Ev::Const(k), Ev::Col(c)) => {
                if let Some(out) = cmp_col_const(flip_cmp(op), c, k, rows) {
                    return Ok(Ev::Col(Arc::new(out)));
                }
            }
            _ => {}
        }
    }
    if matches!(
        op,
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
    ) {
        if let Some(out) = int_arith(op, &l, &r, rows) {
            return Ok(Ev::Col(Arc::new(out)));
        }
    }
    if matches!(op, BinOp::And | BinOp::Or) {
        if let Some(out) = bool_logic(op, &l, &r, rows) {
            return Ok(Ev::Col(Arc::new(out)));
        }
    }

    // Generic per-element path: same scalar kernel as the row executor,
    // including its per-row AND/OR short-circuit.
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let lv = l.value_at(i);
        match op {
            BinOp::And if lv == Value::Bool(false) => {
                out.push(Value::Bool(false));
                continue;
            }
            BinOp::Or if lv == Value::Bool(true) => {
                out.push(Value::Bool(true));
                continue;
            }
            _ => {}
        }
        out.push(eval_binary(op, lv, r.value_at(i))?);
    }
    Ok(Ev::Col(Arc::new(ColumnVector::from_values(out))))
}

/// `col OP const` comparisons on matching concrete types. Returns `None`
/// when no fast kernel applies (the generic path takes over).
fn cmp_col_const(op: BinOp, col: &ColumnVector, k: &Value, rows: usize) -> Option<ColumnVector> {
    // NULL literal: every comparison is NULL.
    if k.is_null() {
        return Some(ColumnVector::Bool {
            data: vec![false; rows],
            nulls: Some(vec![true; rows]),
        });
    }
    macro_rules! kernel {
        ($data:expr, $nulls:expr, $k:expr, $cmp:expr) => {{
            let data: Vec<bool> = $data.iter().map(|v| cmp_holds(op, $cmp(v, $k))).collect();
            Some(ColumnVector::Bool {
                data,
                nulls: $nulls.clone(),
            })
        }};
    }
    match (col, k) {
        (ColumnVector::Int { data, nulls }, Value::Int(k)) => {
            kernel!(data, nulls, k, |v: &i64, k: &i64| v.cmp(k))
        }
        (ColumnVector::Date { data, nulls }, Value::Date(k)) => {
            kernel!(data, nulls, k, |v: &i32, k: &i32| v.cmp(k))
        }
        (ColumnVector::Str { data, nulls }, Value::Str(k)) => {
            kernel!(data, nulls, k, |v: &String, k: &String| v.as_str().cmp(k))
        }
        (ColumnVector::Float { data, nulls }, Value::Float(k)) => {
            kernel!(data, nulls, k, |v: &f64, k: &f64| v.total_cmp(k))
        }
        // Cross-numeric (Int col vs Float literal and vice versa) follows the
        // Value total order numerically.
        (ColumnVector::Int { data, nulls }, Value::Float(k)) => {
            kernel!(data, nulls, k, |v: &i64, k: &f64| (*v as f64).total_cmp(k))
        }
        (ColumnVector::Float { data, nulls }, Value::Int(k)) => {
            kernel!(data, nulls, k, |v: &f64, k: &i64| v.total_cmp(&(*k as f64)))
        }
        _ => None,
    }
}

/// Integer arithmetic kernels for `Int col ⊗ Int {col,const}` (and the
/// mirrored const-col forms). Div yields Float (x/0 → NULL), Mod stays Int
/// (x%0 → NULL) — exactly the scalar `arith` integer fast path.
fn int_arith(op: BinOp, l: &Ev, r: &Ev, rows: usize) -> Option<ColumnVector> {
    enum Side<'a> {
        Col(&'a [i64], &'a Option<NullMask>),
        Const(i64),
    }
    impl Side<'_> {
        fn get(&self, i: usize) -> Option<i64> {
            match self {
                Side::Const(k) => Some(*k),
                Side::Col(data, nulls) => match nulls {
                    Some(m) if m[i] => None,
                    _ => Some(data[i]),
                },
            }
        }
    }
    fn side(e: &Ev) -> Option<Side<'_>> {
        match e {
            Ev::Const(Value::Int(k)) => Some(Side::Const(*k)),
            Ev::Col(c) => match c.as_ref() {
                ColumnVector::Int { data, nulls } => Some(Side::Col(data, nulls)),
                _ => None,
            },
            _ => None,
        }
    }
    let (a, b) = (side(l)?, side(r)?);

    if op == BinOp::Div {
        // Int/Int division produces floats (or NULL on /0).
        let mut data = Vec::with_capacity(rows);
        let mut nulls: NullMask = Vec::with_capacity(rows);
        let mut any_null = false;
        for i in 0..rows {
            match (a.get(i), b.get(i)) {
                (Some(x), Some(y)) if y != 0 => {
                    data.push(x as f64 / y as f64);
                    nulls.push(false);
                }
                _ => {
                    data.push(0.0);
                    nulls.push(true);
                    any_null = true;
                }
            }
        }
        return Some(ColumnVector::Float {
            data,
            nulls: if any_null { Some(nulls) } else { None },
        });
    }

    let mut data = Vec::with_capacity(rows);
    let mut nulls: NullMask = Vec::with_capacity(rows);
    let mut any_null = false;
    for i in 0..rows {
        let out = match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) => match op {
                BinOp::Add => Some(x.wrapping_add(y)),
                BinOp::Sub => Some(x.wrapping_sub(y)),
                BinOp::Mul => Some(x.wrapping_mul(y)),
                BinOp::Mod => (y != 0).then(|| x.rem_euclid(y)),
                _ => unreachable!("int_arith on non-arith op"),
            },
            _ => None,
        };
        data.push(out.unwrap_or(0));
        nulls.push(out.is_none());
        any_null |= out.is_none();
    }
    Some(ColumnVector::Int {
        data,
        nulls: if any_null { Some(nulls) } else { None },
    })
}

/// Three-valued AND/OR over boolean columns/constants. Returns `None` when
/// either side is not boolean-typed (the generic path handles errors).
fn bool_logic(op: BinOp, l: &Ev, r: &Ev, rows: usize) -> Option<ColumnVector> {
    fn tri(e: &Ev, i: usize) -> Option<Option<bool>> {
        match e {
            Ev::Const(Value::Bool(b)) => Some(Some(*b)),
            Ev::Const(Value::Null) => Some(None),
            Ev::Const(_) => None,
            Ev::Col(c) => match c.as_ref() {
                ColumnVector::Bool { data, nulls } => Some(match nulls {
                    Some(m) if m[i] => None,
                    _ => Some(data[i]),
                }),
                _ => None,
            },
        }
    }
    // Reject non-boolean shapes up front (probe row 0 is not enough for
    // Mixed columns, so only typed Bool columns and Bool/Null consts pass).
    let ok = |e: &Ev| {
        matches!(e, Ev::Const(Value::Bool(_)) | Ev::Const(Value::Null))
            || matches!(e, Ev::Col(c) if matches!(c.as_ref(), ColumnVector::Bool { .. }))
    };
    if !ok(l) || !ok(r) {
        return None;
    }
    let mut data = Vec::with_capacity(rows);
    let mut nulls: NullMask = Vec::with_capacity(rows);
    let mut any_null = false;
    for i in 0..rows {
        let (a, b) = (tri(l, i)?, tri(r, i)?);
        let out: Option<bool> = match (op, a, b) {
            (BinOp::And, Some(false), _) | (BinOp::And, _, Some(false)) => Some(false),
            (BinOp::And, Some(true), Some(true)) => Some(true),
            (BinOp::Or, Some(true), _) | (BinOp::Or, _, Some(true)) => Some(true),
            (BinOp::Or, Some(false), Some(false)) => Some(false),
            _ => None,
        };
        data.push(out.unwrap_or(false));
        nulls.push(out.is_none());
        any_null |= out.is_none();
    }
    Some(ColumnVector::Bool {
        data,
        nulls: if any_null { Some(nulls) } else { None },
    })
}
