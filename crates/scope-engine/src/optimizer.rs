//! Cascades-lite optimization with the CloudViews hooks of Figure 10.
//!
//! [`optimize`] runs four phases over a *logical* plan:
//!
//! 1. **Signing** — precise + normalized signatures for every subgraph
//!    (Section 3). Signatures are always computed on the logical plan, the
//!    same representation the analyzer enumerates, so runtime matching and
//!    offline analysis agree byte-for-byte.
//! 2. **Plan search: view reuse** (upper half of Figure 10) — top-down,
//!    largest subgraphs first, match each subgraph's normalized signature
//!    against the annotations fetched from the metadata service; on a match,
//!    check the precise signature against the actually-materialized views;
//!    if available and cheaper to read than to recompute (judged with the
//!    *mined* runtime statistics, not estimates), replace the subgraph with
//!    a [`Operator::ViewGet`].
//! 3. **Follow-up optimization: view materialization** (lower half of
//!    Figure 10) — bottom-up (smaller views first, "as they typically have
//!    more overlaps"), for surviving subgraphs whose normalized signature is
//!    annotated but whose precise view does not exist yet, propose the build
//!    to the metadata service (exclusive lock, Step 3/4 of Figure 9); on
//!    success, mark the node for online materialization, up to the per-job
//!    cap.
//! 4. **Lowering** — implementation selection (stream vs hash aggregation,
//!    merge vs hash join, based on delivered sort orders) and enforcer
//!    insertion (Exchange/Sort) so every operator's required physical
//!    properties are satisfied. A reused view whose stored design already
//!    matches the consumer's requirement needs no enforcer — this is where
//!    the paper's physical-design lesson (Section 5.3) becomes measurable.

use std::collections::HashMap;

use scope_common::hash::Sig128;
use scope_common::ids::{JobId, NodeId};
use scope_common::time::SimDuration;
use scope_common::{Result, ScopeError};
use scope_plan::op::AggImpl;
use scope_plan::{JoinImpl, Operator, Partitioning, PhysicalProps, QueryGraph, SortOrder};
use scope_signature::{
    enumerate_subgraphs, rollup_safe_for_rows, Compensation, SubgraphInfo, SubsumeDescriptor,
};

/// A materialized view the metadata service reports as available.
#[derive(Clone, Debug, PartialEq)]
pub struct AvailableView {
    /// Precise signature (the storage key).
    pub precise: Sig128,
    /// Stored rows.
    pub rows: u64,
    /// Stored bytes.
    pub bytes: u64,
    /// Stored physical design.
    pub props: PhysicalProps,
}

/// A tier-2 candidate delivered by the metadata service's cascade lookup: a
/// live materialized view plus the subsumption descriptor of the subgraph it
/// materialized. The optimizer decides per query root whether the candidate
/// subsumes it and what compensation (residual filter, re-projection, or
/// rollup aggregate) bridges the gap.
#[derive(Clone, Debug, PartialEq)]
pub struct SubsumedView {
    /// The view itself (signature, stored size, physical design).
    pub view: AvailableView,
    /// Normalized signature of the view's template (provenance).
    pub normalized: Sig128,
    /// Descriptor of the materialized root (kind, child signature, feature
    /// bitsets, output schema, and the detail needed for full checks).
    pub descriptor: SubsumeDescriptor,
    /// Mined average CPU of recomputing the view's subgraph — the tier-2
    /// recompute proxy when the query's own template is unannotated.
    pub avg_cpu: SimDuration,
}

/// One annotation delivered by the CloudViews analyzer via the metadata
/// service: "this normalized computation must be materialized and reused".
#[derive(Clone, Debug, PartialEq)]
pub struct Annotation {
    /// Normalized signature of the overlapping computation.
    pub normalized: Sig128,
    /// Physical design the analyzer mined for the view (Section 5.3).
    pub props: PhysicalProps,
    /// Time-to-live mined from input lineage (Section 5.4).
    pub ttl: SimDuration,
    /// Mined average cumulative CPU of computing this subgraph (the
    /// runtime-statistics side of the feedback loop).
    pub avg_cpu: SimDuration,
    /// Mined average output rows.
    pub avg_rows: u64,
    /// Mined average output bytes.
    pub avg_bytes: u64,
}

/// The optimizer's window into the CloudViews runtime (metadata service).
///
/// `scope-engine` ships [`NoViewServices`] (plain SCOPE, no reuse); the
/// `cloudviews` crate implements this against its metadata service.
pub trait ViewServices {
    /// Figure 6 runtime check 2: is this precise computation already
    /// materialized (and not expired)?
    fn view_available(&self, precise: Sig128) -> Option<AvailableView>;

    /// Figure 9 steps 3/4: propose to materialize; `true` means the
    /// exclusive build lock was acquired and this job should build the view.
    fn propose_materialize(
        &self,
        precise: Sig128,
        normalized: Sig128,
        job: JobId,
        lock_ttl: SimDuration,
    ) -> bool;
}

/// Plain SCOPE: no metadata service, no reuse, no materialization.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoViewServices;

impl ViewServices for NoViewServices {
    fn view_available(&self, _precise: Sig128) -> Option<AvailableView> {
        None
    }
    fn propose_materialize(
        &self,
        _precise: Sig128,
        _normalized: Sig128,
        _job: JobId,
        _lock_ttl: SimDuration,
    ) -> bool {
        false
    }
}

/// Optimizer configuration.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Degree of parallelism planned for enforcer exchanges.
    pub default_dop: usize,
    /// Per-job cap on views materialized (paper: defaults low, user-tunable
    /// via a job submission parameter).
    pub max_materialize_per_job: usize,
    /// Enable the plan-search reuse hook.
    pub enable_reuse: bool,
    /// Enable the follow-up materialization hook.
    pub enable_materialize: bool,
    /// Offline mode (Section 6.2): emit a plan that computes *only* the
    /// marked materializations, for upfront view building.
    pub offline_mode: bool,
    /// When false, skip the read-vs-recompute cost check and always accept a
    /// matching view (ablation knob).
    pub cost_based_reuse: bool,
    /// Enable tier-2 subsumption matching (the cascade's semantic tier).
    /// Tier-1 exact matching is unaffected by this knob.
    pub enable_subsumption: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            default_dop: 8,
            max_materialize_per_job: 1,
            enable_reuse: true,
            enable_materialize: true,
            offline_mode: false,
            cost_based_reuse: true,
            enable_subsumption: true,
        }
    }
}

/// A follow-up-optimization decision to materialize one subgraph.
#[derive(Clone, Debug)]
pub struct MaterializeDecision {
    /// Root of the subgraph in the *physical* plan.
    pub physical_node: NodeId,
    /// Precise signature (the storage key; also embedded in the file path).
    pub precise: Sig128,
    /// Normalized signature (provenance).
    pub normalized: Sig128,
    /// Physical design to store the view in.
    pub props: PhysicalProps,
    /// Time-to-live for the file.
    pub ttl: SimDuration,
}

/// A plan-search decision that reused one materialized view.
#[derive(Clone, Debug)]
pub struct ReuseDecision {
    /// The `ViewGet` node in the physical plan.
    pub physical_node: NodeId,
    /// Precise signature read.
    pub precise: Sig128,
    /// Normalized signature matched.
    pub normalized: Sig128,
    /// CPU the feedback loop predicts this reuse saves.
    pub predicted_savings: SimDuration,
}

/// Optimization statistics (Section 7.3 overheads).
#[derive(Clone, Debug, Default)]
pub struct OptimizerReport {
    /// Wall-clock time spent in `optimize` (real time, not simulated).
    pub wall_time: std::time::Duration,
    /// Annotations supplied by the metadata service.
    pub annotations: usize,
    /// Subgraphs whose normalized signature matched an annotation.
    pub normalized_matches: usize,
    /// Views reused (tier-1 exact plus tier-2 subsumption).
    pub views_reused: usize,
    /// Of `views_reused`, how many came from tier-2 subsumption matches
    /// (a compensated rewrite rather than an exact signature hit).
    pub tier2_reused: usize,
    /// Views this job will materialize.
    pub views_materialized: usize,
    /// Nodes in the logical plan before rewriting.
    pub logical_nodes: usize,
    /// Nodes in the physical plan (after rewriting + enforcers).
    pub physical_nodes: usize,
}

/// The optimizer's output.
#[derive(Clone, Debug)]
pub struct OptimizedPlan {
    /// The executable physical plan.
    pub physical: QueryGraph,
    /// The (possibly view-rewritten) logical plan the physical one lowers.
    pub logical: QueryGraph,
    /// Original logical node → physical node, for nodes that survived
    /// rewriting (feedback-loop stat attribution).
    pub orig_to_phys: HashMap<NodeId, NodeId>,
    /// Materialization marks for the job runner.
    pub materialize: Vec<MaterializeDecision>,
    /// Views reused.
    pub reused: Vec<ReuseDecision>,
    /// Overhead statistics.
    pub report: OptimizerReport,
}

/// Optimizes `logical` with the given annotations and metadata service.
///
/// `annotations` is the per-job list fetched by the compiler in one metadata
/// lookup (Figure 9 steps 1/2); it may contain irrelevant entries (the
/// inverted index over-approximates) — unmatched annotations are ignored,
/// exactly as the paper describes.
pub fn optimize(
    logical: &QueryGraph,
    annotations: &[Annotation],
    services: &dyn ViewServices,
    config: &OptimizerConfig,
    job: JobId,
) -> Result<OptimizedPlan> {
    let infos = enumerate_subgraphs(logical)?;
    optimize_with_infos(logical, &infos, annotations, services, config, job)
}

/// [`optimize`] with the subgraph enumeration already in hand.
///
/// The runtime compiles each job exactly once through the template cache
/// and threads the resulting [`SubgraphInfo`]s here, so a recurring
/// instance never re-enumerates inside the optimizer. `infos` must be the
/// enumeration of `logical` (one record per node, bottom-up) — anything
/// else yields nonsense rewrites.
pub fn optimize_with_infos(
    logical: &QueryGraph,
    infos: &[SubgraphInfo],
    annotations: &[Annotation],
    services: &dyn ViewServices,
    config: &OptimizerConfig,
    job: JobId,
) -> Result<OptimizedPlan> {
    optimize_with_cascade(logical, infos, annotations, &[], services, config, job)
}

/// [`optimize_with_infos`] plus the tier-2 half of the matching cascade.
///
/// `tier2` carries the subsumption candidates the metadata service's cascade
/// lookup returned: live views whose feature vectors survived the cheap
/// compatibility gate against this job's probes. For every subgraph root the
/// exact tier leaves uncovered, the optimizer runs the full subsumption check
/// and — when a candidate serves the root at lower cost than recomputing —
/// replaces the root's *child* with a [`Operator::ViewGet`] of the candidate
/// and rewrites the root into the compensation operator (residual filter,
/// re-projection, or rollup aggregate).
#[allow(clippy::too_many_arguments)]
pub fn optimize_with_cascade(
    logical: &QueryGraph,
    infos: &[SubgraphInfo],
    annotations: &[Annotation],
    tier2: &[SubsumedView],
    services: &dyn ViewServices,
    config: &OptimizerConfig,
    job: JobId,
) -> Result<OptimizedPlan> {
    let start = std::time::Instant::now();
    logical.validate()?;
    let by_normalized: HashMap<Sig128, &Annotation> =
        annotations.iter().map(|a| (a.normalized, a)).collect();

    let mut report = OptimizerReport {
        annotations: annotations.len(),
        logical_nodes: logical.len(),
        ..Default::default()
    };

    // ---- Phase 2: plan search / view reuse (top-down, largest first) ----
    let mut working = logical.clone();
    let mut replaced: Vec<bool> = vec![false; logical.len()];
    let mut reuse_sigs: Vec<(NodeId, Sig128, Sig128, SimDuration)> = Vec::new();
    if config.enable_reuse {
        let use_tier2 = config.enable_subsumption && !tier2.is_empty();
        let parent_map = if use_tier2 {
            logical.parents()
        } else {
            HashMap::new()
        };
        let precise_of: HashMap<NodeId, Sig128> = if use_tier2 {
            infos.iter().map(|i| (i.root, i.precise)).collect()
        } else {
            HashMap::new()
        };
        // Cheapest-to-read candidates first, so the first acceptable
        // candidate is also the one the cost model likes best.
        let mut tier2_sorted: Vec<&SubsumedView> = tier2.iter().collect();
        tier2_sorted.sort_by_key(|c| c.view.rows);

        let mut order: Vec<&SubgraphInfo> = infos.iter().collect();
        order.sort_by_key(|info| std::cmp::Reverse(info.num_nodes));
        for info in order {
            if replaced[info.root.index()] {
                continue;
            }
            // Never rewrite terminal Output/Write nodes themselves.
            if matches!(working.node(info.root)?.op, Operator::Output { .. }) {
                continue;
            }
            // Tier 1: exact precise-signature match.
            let mut exact_hit = false;
            if let Some(annotation) = by_normalized.get(&info.normalized) {
                report.normalized_matches += 1;
                if let Some(view) = services.view_available(info.precise) {
                    // Cost-based acceptance using mined statistics: reading
                    // must be cheaper than recomputing (plus a repartition
                    // penalty when the stored design does not line up with
                    // what the consumer needs).
                    if !config.cost_based_reuse || view_read_cost(&view) < annotation.avg_cpu {
                        let schema = working.schema_of(info.root)?;
                        let savings = annotation.avg_cpu;
                        working.replace_with_leaf(
                            info.root,
                            Operator::ViewGet {
                                view_sig: view.precise,
                                schema,
                                props: view.props.clone(),
                            },
                        )?;
                        // Mark the whole old subtree as gone.
                        for id in logical.subgraph_nodes(info.root)? {
                            if id != info.root {
                                replaced[id.index()] = true;
                            }
                        }
                        reuse_sigs.push((info.root, view.precise, info.normalized, savings));
                        report.views_reused += 1;
                        exact_hit = true;
                    }
                }
            }
            if exact_hit || !use_tier2 {
                continue;
            }
            // Tier 2: subsumption. The root must be a unary Filter/Project/
            // Aggregate whose child subgraph is still intact and feeds no
            // other consumer (a shared child still has to produce its full
            // output for the other parents).
            let children = working.node(info.root)?.children.clone();
            if children.len() != 1 {
                continue;
            }
            let child = children[0];
            if replaced[child.index()]
                || matches!(working.node(child)?.op, Operator::ViewGet { .. })
                || parent_map.get(&child).map(Vec::len) != Some(1)
            {
                continue;
            }
            let Some(&child_precise) = precise_of.get(&child) else {
                continue;
            };
            let Some(qdesc) = SubsumeDescriptor::of(&working, info.root, child_precise) else {
                continue;
            };
            let recompute = by_normalized.get(&info.normalized).map(|a| a.avg_cpu);
            for &cand in &tier2_sorted {
                if cand.view.precise == info.precise {
                    // The exact view of this very root: tier-1 territory
                    // (reuse of unannotated templates stays annotation-driven).
                    continue;
                }
                let Some(comp) = SubsumeDescriptor::subsumes(&qdesc, &cand.descriptor) else {
                    continue;
                };
                if !rollup_safe_for_rows(&comp, cand.view.rows) {
                    continue;
                }
                // Recompute proxy: prefer the query template's own mined
                // cost; fall back to the candidate view's mined cost.
                let recompute = recompute.unwrap_or(cand.avg_cpu);
                if config.cost_based_reuse
                    && view_read_cost(&cand.view) + compensation_cost(&comp, cand.view.rows)
                        >= recompute
                {
                    continue;
                }
                working.replace_with_leaf(
                    child,
                    Operator::ViewGet {
                        view_sig: cand.view.precise,
                        schema: cand.descriptor.schema.clone(),
                        props: cand.view.props.clone(),
                    },
                )?;
                match comp {
                    // View rows ⊇ query rows; the query's own filter
                    // re-applies verbatim over the view's (identical) schema.
                    Compensation::Residual => {}
                    Compensation::Reproject { exprs } => {
                        working.node_mut(info.root)?.op = Operator::Project { exprs };
                    }
                    Compensation::Rollup { keys, aggs } => {
                        let implementation = match &working.node(info.root)?.op {
                            Operator::Aggregate { implementation, .. } => *implementation,
                            _ => AggImpl::Hash,
                        };
                        working.node_mut(info.root)?.op = Operator::Aggregate {
                            keys,
                            aggs,
                            implementation,
                        };
                    }
                }
                // The child subtree is gone; the (rewritten) root survives,
                // so phase 3 may still materialize its exact view from the
                // compensated — and result-identical — plan.
                for id in logical.subgraph_nodes(child)? {
                    replaced[id.index()] = true;
                }
                reuse_sigs.push((child, cand.view.precise, cand.normalized, recompute));
                report.views_reused += 1;
                report.tier2_reused += 1;
                break;
            }
        }
    }

    // ---- Phase 3: follow-up optimization / materialization (bottom-up) ----
    let mut mat_sigs: Vec<(NodeId, Sig128, Sig128, &Annotation)> = Vec::new();
    if config.enable_materialize {
        let mut order: Vec<&SubgraphInfo> = infos.iter().collect();
        order.sort_by_key(|i| i.num_nodes);
        for info in order {
            if mat_sigs.len() >= config.max_materialize_per_job {
                break;
            }
            if replaced[info.root.index()] {
                continue;
            }
            // A node we just rewrote into a ViewGet must not be rebuilt.
            if matches!(working.node(info.root)?.op, Operator::ViewGet { .. }) {
                continue;
            }
            if matches!(working.node(info.root)?.op, Operator::Output { .. }) {
                continue;
            }
            let Some(annotation) = by_normalized.get(&info.normalized) else {
                continue;
            };
            if services.view_available(info.precise).is_some() {
                continue; // already built; the reuse pass decided about it
            }
            // Lock TTL: the mined average runtime of the view subgraph
            // (Section 6.1 — "we mine the average runtime ... and use that
            // to set the expiry of the exclusive lock").
            let lock_ttl = annotation.avg_cpu + SimDuration::from_secs(5);
            if !services.propose_materialize(info.precise, info.normalized, job, lock_ttl) {
                continue; // someone else holds the build lock
            }
            mat_sigs.push((info.root, info.precise, info.normalized, annotation));
        }
        report.views_materialized = mat_sigs.len();
    }

    let mat_sigs_is_empty = mat_sigs.is_empty();

    // ---- Offline mode: keep only the subgraphs being materialized. ----
    let mut orig_remap: HashMap<NodeId, NodeId>;
    if config.offline_mode {
        if mat_sigs.is_empty() {
            return Err(ScopeError::Optimizer(
                "offline mode selected but no views to materialize".into(),
            ));
        }
        let mut pruned = QueryGraph::new();
        orig_remap = HashMap::new();
        // Copy only nodes reachable from materialization roots.
        let mut keep: Vec<bool> = vec![false; working.len()];
        for (root, ..) in &mat_sigs {
            for id in working.subgraph_nodes(*root)? {
                keep[id.index()] = true;
            }
        }
        for node in working.nodes() {
            if !keep[node.id.index()] {
                continue;
            }
            let children: Vec<NodeId> = node.children.iter().map(|c| orig_remap[c]).collect();
            let new_id = pruned.add(node.op.clone(), children)?;
            orig_remap.insert(node.id, new_id);
        }
        for (root, ..) in &mat_sigs {
            pruned.add_root(orig_remap[root])?;
        }
        working = pruned;
    } else {
        // Rewriting left unreachable nodes behind; compact for execution.
        orig_remap = working.compact();
    }

    // ---- Phase 4: lowering (implementation selection + enforcers). ----
    let (physical, lowered_map) = lower(&working, config)?;
    // Figure 10's follow-up optimization: when a materialization was added,
    // the plan (now carrying the extra view output) is re-optimized. The
    // re-lowering produces the same physical plan here, but it is exactly
    // the extra compile-time work the paper measures (+28% when creating a
    // view).
    let (physical, lowered_map) = if mat_sigs_is_empty {
        (physical, lowered_map)
    } else {
        lower(&working, config)?
    };
    report.physical_nodes = physical.len();

    let to_phys = |orig: NodeId| -> Option<NodeId> {
        orig_remap
            .get(&orig)
            .and_then(|mid| lowered_map.get(mid))
            .copied()
    };

    let mut orig_to_phys = HashMap::new();
    for node in logical.nodes() {
        if let Some(p) = to_phys(node.id) {
            orig_to_phys.insert(node.id, p);
        }
    }

    let materialize: Vec<MaterializeDecision> = mat_sigs
        .into_iter()
        .filter_map(|(root, precise, normalized, annotation)| {
            to_phys(root).map(|physical_node| MaterializeDecision {
                physical_node,
                precise,
                normalized,
                props: annotation.props.clone(),
                ttl: annotation.ttl,
            })
        })
        .collect();
    let reused: Vec<ReuseDecision> = reuse_sigs
        .into_iter()
        .filter_map(|(root, precise, normalized, predicted_savings)| {
            to_phys(root).map(|physical_node| ReuseDecision {
                physical_node,
                precise,
                normalized,
                predicted_savings,
            })
        })
        .collect();

    report.wall_time = start.elapsed();
    Ok(OptimizedPlan {
        physical,
        logical: working,
        orig_to_phys,
        materialize,
        reused,
        report,
    })
}

/// Estimated CPU cost of reading a materialized view (used against the mined
/// recompute cost in the reuse decision).
fn view_read_cost(view: &AvailableView) -> SimDuration {
    let us = view.rows as f64 * 0.2 + view.bytes as f64 / 1024.0 * 2.5;
    SimDuration::from_micros(us.round() as u64)
}

/// Estimated CPU of running a compensation operator over the view's stored
/// rows: stream weight for residual filters and re-projections, hash-agg
/// weight for rollups (mirrors `CostModel::op_cpu`).
fn compensation_cost(comp: &Compensation, view_rows: u64) -> SimDuration {
    let per_row = match comp {
        Compensation::Residual | Compensation::Reproject { .. } => 0.2,
        Compensation::Rollup { .. } => 1.2,
    };
    SimDuration::from_micros((view_rows as f64 * per_row).round() as u64)
}

/// Lowers a logical plan: selects implementations and inserts enforcers.
/// Returns the physical graph and the logical→physical node map.
fn lower(
    logical: &QueryGraph,
    config: &OptimizerConfig,
) -> Result<(QueryGraph, HashMap<NodeId, NodeId>)> {
    let mut phys = QueryGraph::new();
    let mut map: HashMap<NodeId, NodeId> = HashMap::new();
    let mut delivered: Vec<PhysicalProps> = Vec::new();

    for node in logical.nodes() {
        let child_ids: Vec<NodeId> = node.children.iter().map(|c| map[c]).collect();
        let child_props: Vec<PhysicalProps> = child_ids
            .iter()
            .map(|c| delivered[c.index()].clone())
            .collect();
        let op = select_implementation(&node.op, &child_props);
        let reqs = op.required_props(child_ids.len(), config.default_dop);

        let mut final_children: Vec<NodeId> = Vec::with_capacity(child_ids.len());
        for (i, &cid) in child_ids.iter().enumerate() {
            let req = reqs.get(i).cloned().unwrap_or_else(PhysicalProps::any);
            let mut cur = cid;
            // Partitioning enforcer.
            if !matches!(req.partitioning, Partitioning::Any)
                && !req
                    .partitioning
                    .satisfied_by(&delivered[cur.index()].partitioning)
            {
                let ex = Operator::Exchange {
                    scheme: req.partitioning.clone(),
                };
                let props = ex.delivered_props(&[delivered[cur.index()].clone()]);
                cur = phys.add(ex, vec![cur])?;
                delivered.push(props);
            }
            // Sort enforcer (partition-local).
            if !req.sort.is_none() && !req.sort.satisfied_by(&delivered[cur.index()].sort) {
                let sort = Operator::Sort {
                    order: req.sort.clone(),
                };
                let props = sort.delivered_props(&[delivered[cur.index()].clone()]);
                cur = phys.add(sort, vec![cur])?;
                delivered.push(props);
            }
            final_children.push(cur);
        }

        let final_props: Vec<PhysicalProps> = final_children
            .iter()
            .map(|c| delivered[c.index()].clone())
            .collect();
        let out_props = op.delivered_props(&final_props);
        let id = phys.add(op, final_children)?;
        delivered.push(out_props);
        map.insert(node.id, id);
    }

    for &r in logical.roots() {
        phys.add_root(map[&r])?;
    }
    phys.validate()?;
    Ok((phys, map))
}

/// Picks cheaper implementations when delivered properties allow them.
fn select_implementation(op: &Operator, child_props: &[PhysicalProps]) -> Operator {
    match op {
        Operator::Aggregate { keys, aggs, .. } if !keys.is_empty() => {
            let sorted = child_props
                .first()
                .map(|p| SortOrder::asc(keys).satisfied_by(&p.sort))
                .unwrap_or(false);
            Operator::Aggregate {
                keys: keys.clone(),
                aggs: aggs.clone(),
                implementation: if sorted {
                    AggImpl::Stream
                } else {
                    AggImpl::Hash
                },
            }
        }
        Operator::Join {
            kind,
            left_keys,
            right_keys,
            implementation,
        } => {
            if *implementation == JoinImpl::Loops {
                return op.clone(); // explicitly authored
            }
            let l_sorted = child_props
                .first()
                .map(|p| SortOrder::asc(left_keys).satisfied_by(&p.sort))
                .unwrap_or(false);
            let r_sorted = child_props
                .get(1)
                .map(|p| SortOrder::asc(right_keys).satisfied_by(&p.sort))
                .unwrap_or(false);
            Operator::Join {
                kind: *kind,
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
                implementation: if l_sorted && r_sorted {
                    JoinImpl::Merge
                } else {
                    JoinImpl::Hash
                },
            }
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema};
    use scope_signature::sign_graph;

    fn kv_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn agg_plan() -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t/<date>/x.ss", kv_schema());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(0i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("c", AggFunc::Count, 1)]);
        b.output(a, "o").build().unwrap()
    }

    fn no_views() -> NoViewServices {
        NoViewServices
    }

    #[test]
    fn baseline_lowering_inserts_enforcers() {
        let g = agg_plan();
        let plan = optimize(
            &g,
            &[],
            &no_views(),
            &OptimizerConfig::default(),
            JobId::new(1),
        )
        .unwrap();
        // Aggregate requires hash partitioning; Output requires Single:
        // expect at least two Exchange enforcers.
        let exchanges = plan
            .physical
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::Exchange { .. }))
            .count();
        assert!(
            exchanges >= 2,
            "expected enforcer exchanges, got {exchanges}"
        );
        assert!(plan.physical.len() > g.len());
        assert!(plan.report.views_reused == 0 && plan.report.views_materialized == 0);
        // Every original logical node survives baseline optimization.
        assert_eq!(plan.orig_to_phys.len(), g.len());
    }

    #[test]
    fn stream_agg_selected_when_input_sorted() {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let ex = b.exchange(
            s,
            Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        );
        let sorted = b.sort(ex, SortOrder::asc(&[0]));
        let a = b.aggregate(sorted, vec![0], vec![AggExpr::new("c", AggFunc::Count, 1)]);
        let g = b.output(a, "o").build().unwrap();
        let plan = optimize(
            &g,
            &[],
            &no_views(),
            &OptimizerConfig::default(),
            JobId::new(1),
        )
        .unwrap();
        let stream_aggs = plan
            .physical
            .nodes()
            .iter()
            .filter(|n| {
                matches!(
                    n.op,
                    Operator::Aggregate {
                        implementation: AggImpl::Stream,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(stream_aggs, 1);
    }

    struct OneView {
        view: AvailableView,
        normalized: Sig128,
        grant_locks: bool,
    }

    impl ViewServices for OneView {
        fn view_available(&self, precise: Sig128) -> Option<AvailableView> {
            (precise == self.view.precise).then(|| self.view.clone())
        }
        fn propose_materialize(&self, _p: Sig128, _n: Sig128, _j: JobId, _t: SimDuration) -> bool {
            self.grant_locks
        }
    }

    fn annotation_for(g: &QueryGraph, node: NodeId) -> (Annotation, Sig128) {
        let signed = sign_graph(g).unwrap();
        (
            Annotation {
                normalized: signed.of(node).normalized,
                props: PhysicalProps::hashed(vec![0], 8),
                ttl: SimDuration::from_secs(86_400),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 1_000,
                avg_bytes: 64_000,
            },
            signed.of(node).precise,
        )
    }

    #[test]
    fn reuse_replaces_subgraph_with_viewget() {
        let g = agg_plan();
        let agg_node = NodeId::new(2);
        let (annotation, precise) = annotation_for(&g, agg_node);
        let services = OneView {
            view: AvailableView {
                precise,
                rows: 100,
                bytes: 6_400,
                props: PhysicalProps::hashed(vec![0], 8),
            },
            normalized: annotation.normalized,
            grant_locks: false,
        };
        let plan = optimize(
            &g,
            &[annotation],
            &services,
            &OptimizerConfig::default(),
            JobId::new(2),
        )
        .unwrap();
        assert_eq!(plan.report.views_reused, 1);
        assert_eq!(plan.reused.len(), 1);
        let viewgets = plan
            .physical
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, Operator::ViewGet { .. }))
            .count();
        assert_eq!(viewgets, 1);
        // Scan and filter disappeared from the physical plan.
        assert!(plan
            .physical
            .nodes()
            .iter()
            .all(|n| !matches!(n.op, Operator::Get { .. })));
        // The replaced nodes have no physical image.
        assert!(!plan.orig_to_phys.contains_key(&NodeId::new(0)));
        let _ = services.normalized;
    }

    #[test]
    fn reuse_declined_when_read_costs_too_much() {
        let g = agg_plan();
        let agg_node = NodeId::new(2);
        let (mut annotation, precise) = annotation_for(&g, agg_node);
        annotation.avg_cpu = SimDuration::from_micros(10); // recompute is free
        let services = OneView {
            view: AvailableView {
                precise,
                rows: 10_000_000, // reading is huge
                bytes: 1 << 32,
                props: PhysicalProps::any(),
            },
            normalized: annotation.normalized,
            grant_locks: false,
        };
        let plan = optimize(
            &g,
            &[annotation],
            &services,
            &OptimizerConfig::default(),
            JobId::new(2),
        )
        .unwrap();
        assert_eq!(plan.report.views_reused, 0);
    }

    #[test]
    fn materialize_marks_respect_cap_and_locks() {
        let g = agg_plan();
        let signed = sign_graph(&g).unwrap();
        // Annotate both the filter and the aggregate.
        let mk = |node: NodeId| Annotation {
            normalized: signed.of(node).normalized,
            props: PhysicalProps::any(),
            ttl: SimDuration::from_secs(3600),
            avg_cpu: SimDuration::from_secs(5),
            avg_rows: 10,
            avg_bytes: 100,
        };
        let annotations = vec![mk(NodeId::new(1)), mk(NodeId::new(2))];
        let services = OneView {
            view: AvailableView {
                precise: Sig128::ZERO,
                rows: 0,
                bytes: 0,
                props: PhysicalProps::any(),
            },
            normalized: Sig128::ZERO,
            grant_locks: true,
        };
        // Cap 1: bottom-up order materializes the smaller (filter) subgraph.
        let plan = optimize(
            &g,
            &annotations,
            &services,
            &OptimizerConfig {
                max_materialize_per_job: 1,
                ..Default::default()
            },
            JobId::new(3),
        )
        .unwrap();
        assert_eq!(plan.materialize.len(), 1);
        // Cap 2 with locks granted: both.
        let plan = optimize(
            &g,
            &annotations,
            &services,
            &OptimizerConfig {
                max_materialize_per_job: 4,
                ..Default::default()
            },
            JobId::new(3),
        )
        .unwrap();
        assert_eq!(plan.materialize.len(), 2);
        // Locks denied: none.
        let services = OneView {
            grant_locks: false,
            ..services
        };
        let plan = optimize(
            &g,
            &annotations,
            &services,
            &OptimizerConfig::default(),
            JobId::new(3),
        )
        .unwrap();
        assert_eq!(plan.materialize.len(), 0);
    }

    #[test]
    fn offline_mode_keeps_only_view_subgraph() {
        let g = agg_plan();
        let signed = sign_graph(&g).unwrap();
        let annotations = vec![Annotation {
            normalized: signed.of(NodeId::new(1)).normalized, // the filter
            props: PhysicalProps::any(),
            ttl: SimDuration::from_secs(3600),
            avg_cpu: SimDuration::from_secs(5),
            avg_rows: 10,
            avg_bytes: 100,
        }];
        let services = OneView {
            view: AvailableView {
                precise: Sig128::ZERO,
                rows: 0,
                bytes: 0,
                props: PhysicalProps::any(),
            },
            normalized: Sig128::ZERO,
            grant_locks: true,
        };
        let plan = optimize(
            &g,
            &annotations,
            &services,
            &OptimizerConfig {
                offline_mode: true,
                ..Default::default()
            },
            JobId::new(4),
        )
        .unwrap();
        // Plan contains scan + filter only (plus enforcers, none needed).
        assert_eq!(plan.materialize.len(), 1);
        assert!(plan
            .physical
            .nodes()
            .iter()
            .all(|n| !matches!(n.op, Operator::Aggregate { .. } | Operator::Output { .. })));
        // Offline with nothing to build is an error.
        let err = optimize(
            &g,
            &[],
            &services,
            &OptimizerConfig {
                offline_mode: true,
                ..Default::default()
            },
            JobId::new(4),
        )
        .unwrap_err();
        assert_eq!(err.kind(), "optimizer");
    }

    #[test]
    fn matching_view_design_avoids_enforcer() {
        // View stored hash[0]x8 feeding an aggregate on key 0 with dop 8:
        // no exchange needed between ViewGet and Aggregate.
        let g = agg_plan();
        let agg_node = NodeId::new(2);
        // Build a plan where the *filter* subgraph is replaced, so the
        // aggregate consumes the ViewGet directly.
        let signed = sign_graph(&g).unwrap();
        let filter_sig = signed.of(NodeId::new(1));
        let annotation = Annotation {
            normalized: filter_sig.normalized,
            props: PhysicalProps::hashed(vec![0], 8),
            ttl: SimDuration::from_secs(3600),
            avg_cpu: SimDuration::from_secs(100),
            avg_rows: 10,
            avg_bytes: 100,
        };
        let good = OneView {
            view: AvailableView {
                precise: filter_sig.precise,
                rows: 10,
                bytes: 100,
                props: PhysicalProps::hashed(vec![0], 8),
            },
            normalized: annotation.normalized,
            grant_locks: false,
        };
        let plan_good = optimize(
            &g,
            std::slice::from_ref(&annotation),
            &good,
            &OptimizerConfig::default(),
            JobId::new(5),
        )
        .unwrap();
        let bad = OneView {
            view: AvailableView {
                precise: filter_sig.precise,
                rows: 10,
                bytes: 100,
                props: PhysicalProps::any(), // poor physical design
            },
            normalized: annotation.normalized,
            grant_locks: false,
        };
        let plan_bad = optimize(
            &g,
            std::slice::from_ref(&annotation),
            &bad,
            &OptimizerConfig::default(),
            JobId::new(5),
        )
        .unwrap();
        let count_ex = |p: &OptimizedPlan| {
            p.physical
                .nodes()
                .iter()
                .filter(|n| matches!(n.op, Operator::Exchange { .. }))
                .count()
        };
        assert!(
            count_ex(&plan_bad) > count_ex(&plan_good),
            "mismatched view design must force extra repartitioning"
        );
        let _ = agg_node;
    }

    fn filter_graph(bound: i64, out: &str) -> QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t/<date>/x.ss", kv_schema());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(bound)));
        b.output(f, out).build().unwrap()
    }

    /// Builds a tier-2 candidate for the unary root `root` of `view_g`, as
    /// the metadata service's cascade lookup would deliver it.
    fn tier2_candidate(view_g: &QueryGraph, root: NodeId) -> SubsumedView {
        let signed = sign_graph(view_g).unwrap();
        let child = view_g.node(root).unwrap().children[0];
        let descriptor = SubsumeDescriptor::of(view_g, root, signed.of(child).precise).unwrap();
        SubsumedView {
            view: AvailableView {
                precise: signed.of(root).precise,
                rows: 10,
                bytes: 100,
                props: PhysicalProps::any(),
            },
            normalized: signed.of(root).normalized,
            descriptor,
            avg_cpu: SimDuration::from_secs(10),
        }
    }

    fn cascade(
        g: &QueryGraph,
        annotations: &[Annotation],
        tier2: &[SubsumedView],
        config: &OptimizerConfig,
    ) -> OptimizedPlan {
        let infos = enumerate_subgraphs(g).unwrap();
        optimize_with_cascade(
            g,
            &infos,
            annotations,
            tier2,
            &no_views(),
            config,
            JobId::new(7),
        )
        .unwrap()
    }

    #[test]
    fn tier2_filter_subsumption_rewrites_child() {
        // View filtered wider (v >= 0) serves a query filtered tighter
        // (v >= 10): the scan child becomes a ViewGet, the query's own
        // filter survives as the residual compensation.
        let q = filter_graph(10, "o");
        let v = filter_graph(0, "v");
        let cand = tier2_candidate(&v, NodeId::new(1));
        let plan = cascade(
            &q,
            &[],
            std::slice::from_ref(&cand),
            &OptimizerConfig::default(),
        );
        assert_eq!(plan.report.tier2_reused, 1);
        assert_eq!(plan.report.views_reused, 1);
        assert_eq!(plan.reused.len(), 1);
        assert_eq!(plan.reused[0].precise, cand.view.precise);
        let has = |pred: fn(&Operator) -> bool| plan.physical.nodes().iter().any(|n| pred(&n.op));
        assert!(has(|op| matches!(op, Operator::Filter { .. })));
        assert!(has(|op| matches!(op, Operator::ViewGet { .. })));
        assert!(!has(|op| matches!(op, Operator::Get { .. })));

        // The wrong direction must not match: a tighter view cannot serve a
        // wider query.
        let plan = cascade(
            &filter_graph(0, "o"),
            &[],
            &[tier2_candidate(&filter_graph(10, "v"), NodeId::new(1))],
            &OptimizerConfig::default(),
        );
        assert_eq!(plan.report.tier2_reused, 0);
    }

    #[test]
    fn tier2_rollup_rewrites_aggregate() {
        // View grouped by (k, v) rolls up to the query's group-by (k); the
        // query's Count over raw rows becomes a Sum over the view's counts.
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t/<date>/x.ss", kv_schema());
        let a = b.aggregate(s, vec![0, 1], vec![AggExpr::new("n", AggFunc::Count, 1)]);
        let v = b.output(a, "v").build().unwrap();
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t/<date>/x.ss", kv_schema());
        let a = b.aggregate(s, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
        let q = b.output(a, "o").build().unwrap();
        let cand = tier2_candidate(&v, NodeId::new(1));
        let plan = cascade(&q, &[], &[cand], &OptimizerConfig::default());
        assert_eq!(plan.report.tier2_reused, 1);
        let rollup = plan
            .physical
            .nodes()
            .iter()
            .find_map(|n| match &n.op {
                Operator::Aggregate { keys, aggs, .. } => Some((keys.clone(), aggs.clone())),
                _ => None,
            })
            .expect("compensation aggregate survives lowering");
        assert_eq!(rollup.0, vec![0]);
        assert_eq!(rollup.1.len(), 1);
        assert_eq!(rollup.1[0].func, AggFunc::Sum);
        assert_eq!(rollup.1[0].name, "n");
        assert_eq!(rollup.1[0].input, 2, "sums the view's count column");
    }

    #[test]
    fn tier2_respects_cost_gate_and_knob() {
        let q = filter_graph(10, "o");
        let v = filter_graph(0, "v");
        // Huge view, cheap recompute: the cost gate declines.
        let mut cand = tier2_candidate(&v, NodeId::new(1));
        cand.view.rows = 10_000_000;
        cand.view.bytes = 1 << 32;
        cand.avg_cpu = SimDuration::from_micros(1);
        let plan = cascade(&q, &[], &[cand], &OptimizerConfig::default());
        assert_eq!(plan.report.tier2_reused, 0);
        // Knob off: no tier-2 even for a perfectly good candidate.
        let cand = tier2_candidate(&v, NodeId::new(1));
        let plan = cascade(
            &q,
            &[],
            &[cand],
            &OptimizerConfig {
                enable_subsumption: false,
                ..Default::default()
            },
        );
        assert_eq!(plan.report.tier2_reused, 0);
        assert_eq!(plan.report.views_reused, 0);
    }

    #[test]
    fn reuse_disabled_by_config() {
        let g = agg_plan();
        let agg_node = NodeId::new(2);
        let (annotation, precise) = annotation_for(&g, agg_node);
        let services = OneView {
            view: AvailableView {
                precise,
                rows: 1,
                bytes: 10,
                props: PhysicalProps::any(),
            },
            normalized: annotation.normalized,
            grant_locks: true,
        };
        let plan = optimize(
            &g,
            &[annotation],
            &services,
            &OptimizerConfig {
                enable_reuse: false,
                enable_materialize: false,
                ..Default::default()
            },
            JobId::new(6),
        )
        .unwrap();
        assert_eq!(plan.report.views_reused, 0);
        assert_eq!(plan.report.views_materialized, 0);
    }
}
