//! The discrete-event cluster model.
//!
//! SCOPE executes a job as a DAG of *stages*: pipelines of operators between
//! shuffle boundaries, each run by many parallel *vertices* (one per data
//! partition) under the virtual cluster's token budget. This module rebuilds
//! that structure from an executed plan and derives the two metrics the
//! paper's production evaluation reports:
//!
//! * **end-to-end latency** (Figure 11): the critical path over the stage
//!   DAG, with per-stage wave scheduling (`ceil(dop / tokens)` waves when
//!   the job has fewer tokens than vertices) and data skew (the slowest
//!   vertex is the one holding the largest partition);
//! * **total CPU time** (Figure 12): all vertex work plus per-vertex
//!   scheduling overhead — the "PN hours" a job service bills for.
//!
//! Per-node completion times are also exposed: the CloudViews runtime uses
//! them to publish materialized views *early*, as soon as the producing
//! stage finishes rather than when the whole job does (paper Section 6.4).

use scope_common::ids::NodeId;
use scope_common::time::SimDuration;
use scope_plan::{Operator, QueryGraph};

use crate::exec::ExecOutcome;

/// Cluster/VC execution parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterConfig {
    /// Concurrent vertices the VC may run (its token allocation).
    pub tokens: usize,
    /// Default degree of parallelism the optimizer plans exchanges for.
    pub default_dop: usize,
    /// Fixed per-vertex scheduling overhead.
    pub vertex_overhead: SimDuration,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            tokens: 16,
            default_dop: 8,
            vertex_overhead: SimDuration::from_millis(5),
        }
    }
}

/// One simulated stage.
#[derive(Clone, Debug)]
pub struct Stage {
    /// Stage id (index).
    pub id: usize,
    /// Plan nodes executed by this stage's vertices.
    pub nodes: Vec<NodeId>,
    /// Degree of parallelism (number of vertices).
    pub dop: usize,
    /// Stages that must finish first.
    pub deps: Vec<usize>,
    /// Total CPU across all vertices of this stage.
    pub cpu: SimDuration,
    /// Fraction of the stage's rows held by its largest partition (skew).
    pub max_partition_share: f64,
}

/// Simulation result for one job.
#[derive(Clone, Debug)]
pub struct SimOutcome {
    /// End-to-end job latency.
    pub latency: SimDuration,
    /// Total CPU time billed (vertex work + scheduling overhead).
    pub cpu_time: SimDuration,
    /// The stage DAG (for debugging/reporting).
    pub stages: Vec<Stage>,
    /// Completion time (relative to job start) of each plan node.
    pub node_finish: Vec<SimDuration>,
    /// Total vertices scheduled.
    pub vertices: usize,
}

/// Splits the executed plan into stages and simulates the stage DAG.
pub fn simulate(graph: &QueryGraph, exec: &ExecOutcome, config: &ClusterConfig) -> SimOutcome {
    let stages = build_stages(graph, exec);
    schedule(graph, exec, &stages, config)
}

/// Builds the stage DAG: leaves and exchanges start stages, unary operators
/// extend their child's stage, and multi-input operators whose children live
/// in different stages start a new (consumer) stage.
fn build_stages(graph: &QueryGraph, exec: &ExecOutcome) -> Vec<Stage> {
    let mut stage_of: Vec<usize> = vec![usize::MAX; graph.len()];
    let mut stages: Vec<Stage> = Vec::new();

    for node in graph.nodes() {
        let idx = node.id.index();
        let dop = exec.node_tables[idx].num_partitions().max(1);
        let sid = if node.children.is_empty() {
            new_stage(&mut stages, dop, vec![])
        } else if matches!(node.op, Operator::Exchange { .. }) {
            let dep = stage_of[node.children[0].index()];
            new_stage(&mut stages, dop, vec![dep])
        } else if node.children.len() == 1 {
            stage_of[node.children[0].index()]
        } else {
            let mut deps: Vec<usize> = node.children.iter().map(|c| stage_of[c.index()]).collect();
            deps.sort_unstable();
            deps.dedup();
            if deps.len() == 1 {
                deps[0]
            } else {
                new_stage(&mut stages, dop, deps)
            }
        };
        stage_of[idx] = sid;
        let stage = &mut stages[sid];
        stage.nodes.push(node.id);
        stage.cpu += exec.node_stats[idx].exclusive_cpu;
    }

    // Skew: the largest output-partition share among the stage's nodes.
    for stage in &mut stages {
        let mut share: f64 = 1.0 / stage.dop as f64;
        for &nid in &stage.nodes {
            let t = &exec.node_tables[nid.index()];
            let total = t.num_rows();
            if total > 0 && t.num_partitions() > 1 {
                let max_part = t.max_partition_rows() as f64;
                share = share.max(max_part / total as f64);
            }
        }
        stage.max_partition_share = share.min(1.0);
    }
    stages
}

fn new_stage(stages: &mut Vec<Stage>, dop: usize, deps: Vec<usize>) -> usize {
    let id = stages.len();
    stages.push(Stage {
        id,
        nodes: Vec::new(),
        dop,
        deps,
        cpu: SimDuration::ZERO,
        max_partition_share: 1.0,
    });
    id
}

/// Schedules the stage DAG: each stage starts when its dependencies finish;
/// its duration reflects wave scheduling under the token budget and skew.
fn schedule(
    graph: &QueryGraph,
    exec: &ExecOutcome,
    stages: &[Stage],
    config: &ClusterConfig,
) -> SimOutcome {
    let tokens = config.tokens.max(1);
    let mut finish: Vec<SimDuration> = vec![SimDuration::ZERO; stages.len()];
    let mut total_vertices = 0usize;
    let mut cpu_time = SimDuration::ZERO;

    for stage in stages {
        let start = stage
            .deps
            .iter()
            .map(|&d| finish[d])
            .max()
            .unwrap_or(SimDuration::ZERO);
        let dop = stage.dop.max(1);
        let waves = dop.div_ceil(tokens);
        let avg_vertex = stage.cpu.mul_f64(1.0 / dop as f64);
        let max_vertex = stage.cpu.mul_f64(stage.max_partition_share);
        // First (waves-1) waves take ~average vertex time each; the final
        // wave is bounded by the slowest vertex.
        let duration = config.vertex_overhead.mul_f64(waves as f64)
            + avg_vertex.mul_f64((waves - 1) as f64)
            + max_vertex;
        finish[stage.id] = start + duration;
        total_vertices += dop;
        cpu_time += stage.cpu + config.vertex_overhead.mul_f64(dop as f64);
    }

    let latency = finish.iter().copied().max().unwrap_or(SimDuration::ZERO);

    // Node completion = its stage's completion.
    let mut node_finish = vec![SimDuration::ZERO; graph.len()];
    for stage in stages {
        for &nid in &stage.nodes {
            node_finish[nid.index()] = finish[stage.id];
        }
    }
    let _ = exec;

    SimOutcome {
        latency,
        cpu_time,
        stages: stages.to_vec(),
        node_finish,
        vertices: total_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::data::Table;
    use crate::exec::execute_plan;
    use crate::storage::StorageManager;
    use scope_common::ids::DatasetId;
    use scope_common::time::SimTime;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, Partitioning, PlanBuilder, Schema, Value};

    fn kv_schema() -> Schema {
        Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    fn storage(n: i64) -> StorageManager {
        let s = StorageManager::new();
        let rows = (0..n)
            .map(|i| vec![Value::Int(i % 11), Value::Int(i)])
            .collect();
        s.put_dataset(DatasetId::new(1), Table::single(kv_schema(), rows));
        s
    }

    fn pipeline(parts: usize) -> scope_plan::QueryGraph {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", kv_schema());
        let f = b.filter(s, Expr::col(1).ge(Expr::lit(0i64)));
        let ex = b.exchange(
            f,
            Partitioning::Hash {
                cols: vec![0],
                parts,
            },
        );
        let a = b.aggregate(ex, vec![0], vec![AggExpr::new("c", AggFunc::Count, 1)]);
        let gather = b.exchange(a, Partitioning::Single);
        b.output(gather, "o").build().unwrap()
    }

    fn run_sim(parts: usize, cfg: &ClusterConfig) -> (SimOutcome, scope_plan::QueryGraph) {
        let st = storage(10_000);
        let g = pipeline(parts);
        let exec = execute_plan(&g, &st, &CostModel::default(), SimTime::ZERO).unwrap();
        (simulate(&g, &exec, cfg), g)
    }

    #[test]
    fn stages_break_at_exchanges() {
        let (out, g) = run_sim(8, &ClusterConfig::default());
        // scan+filter | exchange+agg | gather+output = 3 stages
        assert_eq!(out.stages.len(), 3);
        assert_eq!(out.node_finish.len(), g.len());
        // Stage deps form a chain.
        assert!(out.stages[1].deps.contains(&0));
        assert!(out.stages[2].deps.contains(&1));
    }

    #[test]
    fn latency_positive_and_under_cpu_when_parallel() {
        let cfg = ClusterConfig {
            tokens: 64,
            default_dop: 32,
            ..Default::default()
        };
        let (out, _) = run_sim(32, &cfg);
        assert!(out.latency > SimDuration::ZERO);
        assert!(out.cpu_time > out.latency, "parallel work: cpu > latency");
    }

    #[test]
    fn more_parallelism_cuts_latency() {
        let cfg = ClusterConfig {
            tokens: 64,
            ..Default::default()
        };
        let (narrow, _) = run_sim(2, &cfg);
        let (wide, _) = run_sim(32, &cfg);
        assert!(
            wide.latency < narrow.latency,
            "wide {} vs narrow {}",
            wide.latency,
            narrow.latency
        );
    }

    #[test]
    fn token_starvation_adds_waves() {
        let generous = ClusterConfig {
            tokens: 64,
            ..Default::default()
        };
        let starved = ClusterConfig {
            tokens: 2,
            ..Default::default()
        };
        let (fast, _) = run_sim(32, &generous);
        let (slow, _) = run_sim(32, &starved);
        assert!(slow.latency > fast.latency);
        // CPU time identical: same work, just scheduled differently...
        // except vertex overhead is the same too (same vertex count).
        assert_eq!(slow.cpu_time, fast.cpu_time);
    }

    #[test]
    fn node_finish_monotone_along_edges() {
        let (out, g) = run_sim(8, &ClusterConfig::default());
        for n in g.nodes() {
            for c in &n.children {
                assert!(
                    out.node_finish[c.index()] <= out.node_finish[n.id.index()],
                    "child finishes after parent"
                );
            }
        }
    }

    #[test]
    fn join_over_two_exchanges_makes_consumer_stage() {
        let st = storage(1_000);
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", kv_schema());
        let r = b.table_scan(DatasetId::new(1), "r", kv_schema());
        let exl = b.exchange(
            l,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let exr = b.exchange(
            r,
            Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
        );
        let j = b.join(exl, exr, scope_plan::JoinKind::Inner, vec![0], vec![0]);
        let g = b.output(j, "o").build().unwrap();
        let exec = execute_plan(&g, &st, &CostModel::default(), SimTime::ZERO).unwrap();
        let out = simulate(&g, &exec, &ClusterConfig::default());
        // 2 scan stages + 2 exchange stages + 1 join/output stage.
        assert_eq!(out.stages.len(), 5);
        let last = out.stages.last().unwrap();
        assert_eq!(last.deps.len(), 2);
    }

    #[test]
    fn skewed_data_stretches_latency() {
        // All rows in one key -> hash exchange puts everything in one
        // partition -> max share ~1 -> latency close to serial.
        let st = StorageManager::new();
        let rows: Vec<_> = (0..10_000)
            .map(|i| vec![Value::Int(7), Value::Int(i)])
            .collect();
        st.put_dataset(DatasetId::new(1), Table::single(kv_schema(), rows));
        let g = pipeline(8);
        let exec = execute_plan(&g, &st, &CostModel::default(), SimTime::ZERO).unwrap();
        let skewed = simulate(&g, &exec, &ClusterConfig::default());
        let (uniform, _) = run_sim(8, &ClusterConfig::default());
        let skew_stage = &skewed.stages[1];
        let uni_stage = &uniform.stages[1];
        assert!(skew_stage.max_partition_share > uni_stage.max_partition_share);
    }
}
