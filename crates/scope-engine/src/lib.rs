//! A miniature SCOPE: the substrate the CloudViews reproduction runs on.
//!
//! The paper's system sits inside Microsoft's SCOPE job service. CloudViews
//! touches SCOPE at four seams — optimizer plan trees, physical properties,
//! runtime statistics, and a store for materialized view files — so this
//! crate implements a small but *real* engine exposing exactly those seams:
//!
//! * [`data`] — partitioned in-memory tables stored as columnar record
//!   batches ([`data::RecordBatch`], [`data::ColumnVector`]), with a row
//!   bridge for tests and UDOs, and multiset checksums used by the
//!   correctness tests (baseline output must equal CloudViews output
//!   bit-for-bit).
//! * [`cost`] — the calibrated cost model translating actual row counts into
//!   simulated CPU time, plus the deliberately naive *compile-time*
//!   cardinality estimator whose errors motivate the paper's feedback loop.
//! * [`storage`] — the storage manager: base datasets plus the materialized
//!   view store with expiry-based purging (paper Section 5.4).
//! * [`exec`] — the columnar batch-at-a-time physical executor for every
//!   operator kind in the paper's Figure 4(a), with per-node runtime
//!   statistics byte-identical to the row reference executor in [`rowref`].
//! * [`sim`] — the discrete-event cluster model: plans split into stages at
//!   exchange boundaries, stages run as waves of parallel vertices under a
//!   token budget; produces end-to-end latency and total CPU-time, the two
//!   metrics of the paper's Figures 11 and 12.
//! * [`optimizer`] — Cascades-lite: implementation selection, physical
//!   property enforcement, and the two CloudViews hooks of Figure 10
//!   (top-down view matching in plan search; bottom-up materialization in
//!   follow-up optimization) behind the [`optimizer::ViewServices`] trait.
//! * [`repo`] — the workload repository joining compile-time plans with
//!   run-time statistics: the input to the CloudViews analyzer.
//! * [`job`] — job descriptors and the baseline job runner.

pub mod cost;
pub mod data;
pub mod exec;
pub mod job;
pub mod optimizer;
pub mod repo;
pub mod rowref;
pub mod sim;
pub mod storage;
mod vexpr;

pub use cost::{CostEstimator, CostModel};
pub use data::{multiset_checksum, Cell, ColumnVector, RecordBatch, Row, Table};
pub use exec::{execute_plan, ExecOutcome, NodeRuntimeStats};
pub use job::{run_job_baseline, JobOutcome, JobSpec};
pub use optimizer::{
    optimize, optimize_with_infos, Annotation, MaterializeDecision, OptimizedPlan, OptimizerConfig,
    OptimizerReport, ViewServices,
};
pub use repo::{JobRecord, SubgraphRun, WorkloadRepository};
pub use sim::{simulate, ClusterConfig, SimOutcome};
pub use storage::{StorageManager, ViewFile, ViewMeta};
