//! The SCOPE workload repository.
//!
//! The paper's feedback loop (Section 5.1, Figure 8) "reconciles the logical
//! query trees with the actual runtime statistics": for every executed job
//! it connects the data flow that ran on the cluster back to the compiled
//! query graph, and extracts per-subgraph latency, cardinality, data size,
//! and resource consumption. [`WorkloadRepository::record`] performs exactly
//! that reconciliation using the optimizer's logical→physical node map, and
//! stores one [`SubgraphRun`] per logical subgraph.
//!
//! The CloudViews analyzer consumes [`JobRecord`]s; nothing in the analyzer
//! ever touches optimizer *estimates* — that is the point.

use parking_lot::Mutex;
use scope_common::hash::Sig128;
use scope_common::ids::{ClusterId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::intern::Symbol;
use scope_common::time::{SimDuration, SimTime};
use scope_common::Result;
use scope_plan::{OpKind, PhysicalProps, QueryGraph};
use scope_signature::{enumerate_subgraphs, job_tags, SubgraphInfo};

use std::sync::Arc;

use crate::exec::ExecOutcome;
use crate::optimizer::OptimizedPlan;
use crate::sim::SimOutcome;

/// Observed execution of one subgraph of one job: the unit the analyzer
/// mines.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SubgraphRun {
    /// Root node in the job's *logical* plan.
    pub root: NodeId,
    /// Precise signature.
    pub precise: Sig128,
    /// Normalized signature.
    pub normalized: Sig128,
    /// Root operator kind (Figure 4a).
    pub root_kind: OpKind,
    /// Subgraph size in nodes.
    pub num_nodes: usize,
    /// Normalized input stream names feeding the subgraph (interned).
    pub input_tags: Vec<Symbol>,
    /// Output physical properties observed at the root (Section 5.3),
    /// shared with the enumeration's property pool.
    pub props: Arc<PhysicalProps>,
    /// Whether user code runs anywhere inside.
    pub has_user_code: bool,
    /// Output rows observed.
    pub out_rows: u64,
    /// Output bytes observed.
    pub out_bytes: u64,
    /// Exclusive CPU of the root operator.
    pub exclusive_cpu: SimDuration,
    /// Cumulative CPU of the whole subgraph (the view's *utility* unit).
    pub cumulative_cpu: SimDuration,
    /// Completion time of the subgraph relative to job start (critical-path
    /// position: reuse of off-critical-path subgraphs saves CPU but little
    /// latency — one of the paper's observed effects).
    pub finish_offset: SimDuration,
}

/// One executed job with reconciled statistics.
#[derive(Clone, Debug)]
pub struct JobRecord {
    /// Job instance id.
    pub job: JobId,
    /// Physical cluster.
    pub cluster: ClusterId,
    /// Virtual cluster (tenant).
    pub vc: VcId,
    /// Submitting user entity.
    pub user: UserId,
    /// Recurring template this job instantiates.
    pub template: TemplateId,
    /// Recurring instance index (0 = first occurrence).
    pub instance: u64,
    /// Simulated submission time.
    pub submitted_at: SimTime,
    /// End-to-end latency.
    pub latency: SimDuration,
    /// Total CPU time.
    pub cpu_time: SimDuration,
    /// Inverted-index tags (normalized inputs + outputs, interned).
    pub tags: Vec<Symbol>,
    /// Per-subgraph reconciled statistics.
    pub subgraphs: Vec<SubgraphRun>,
}

/// Identity of a job used when recording (everything but the measurements).
#[derive(Clone, Copy, Debug)]
pub struct JobIdentity {
    /// Job instance id.
    pub job: JobId,
    /// Physical cluster.
    pub cluster: ClusterId,
    /// Virtual cluster.
    pub vc: VcId,
    /// Submitting user.
    pub user: UserId,
    /// Recurring template.
    pub template: TemplateId,
    /// Recurrence index.
    pub instance: u64,
    /// Submission time.
    pub submitted_at: SimTime,
}

/// Observer of repository appends, keyed by the record's sequence number
/// (its index in the append order). The durability layer installs one to
/// mirror every record into its on-disk segment store; the sequence number
/// doubles as the analyzer's replay cursor after a restart.
pub type RecordSink = Arc<dyn Fn(u64, &JobRecord) + Send + Sync>;

/// Thread-safe append-only store of job records.
#[derive(Default)]
pub struct WorkloadRepository {
    records: Mutex<Vec<JobRecord>>,
    /// Optional durability mirror for appends. Called *outside* the records
    /// lock (sequence numbers are captured under it, so out-of-order sink
    /// calls carry distinct, correct sequence numbers).
    sink: Mutex<Option<RecordSink>>,
}

impl WorkloadRepository {
    /// An empty repository.
    pub fn new() -> Self {
        WorkloadRepository::default()
    }

    /// A repository pre-populated with recovered records, in their original
    /// append order (cold-start rehydration).
    pub fn from_records(records: Vec<JobRecord>) -> Self {
        WorkloadRepository {
            records: Mutex::new(records),
            sink: Mutex::new(None),
        }
    }

    /// Installs (or clears) the durability sink notified on every append.
    /// Attach it *after* rehydrating recovered records, or recovery would
    /// re-append every record it just read.
    pub fn set_record_sink(&self, sink: Option<RecordSink>) {
        *self.sink.lock() = sink;
    }

    /// Reconciles one executed job into the repository: joins the original
    /// logical plan's subgraphs with the physical runtime statistics through
    /// the optimizer's node map, exactly the feedback loop of Figure 8.
    pub fn record(
        &self,
        identity: JobIdentity,
        logical: &QueryGraph,
        plan: &OptimizedPlan,
        exec: &ExecOutcome,
        sim: &SimOutcome,
    ) -> Result<()> {
        let infos = enumerate_subgraphs(logical)?;
        let tags = job_tags(logical);
        self.record_compiled(identity, &infos, &tags, plan, exec, sim)
    }

    /// [`WorkloadRepository::record`] when the subgraph records and job tags
    /// are already compiled (the runtime's template cache computes them once
    /// per job; re-enumerating here would throw that work away).
    pub fn record_compiled(
        &self,
        identity: JobIdentity,
        infos: &[SubgraphInfo],
        tags: &[Symbol],
        plan: &OptimizedPlan,
        exec: &ExecOutcome,
        sim: &SimOutcome,
    ) -> Result<()> {
        let mut subgraphs = Vec::with_capacity(infos.len());
        for info in infos {
            // Subgraphs replaced by a view this run did not execute; the
            // repository only records what actually ran.
            let Some(&phys) = plan.orig_to_phys.get(&info.root) else {
                continue;
            };
            let stats = exec.node_stats[phys.index()];
            subgraphs.push(SubgraphRun {
                root: info.root,
                precise: info.precise,
                normalized: info.normalized,
                root_kind: info.root_kind,
                num_nodes: info.num_nodes,
                input_tags: info.input_tags.clone(),
                props: Arc::clone(&info.props),
                has_user_code: info.has_user_code,
                out_rows: stats.out_rows,
                out_bytes: stats.out_bytes,
                exclusive_cpu: stats.exclusive_cpu,
                cumulative_cpu: exec.subgraph_cpu(&plan.physical, phys),
                finish_offset: sim.node_finish[phys.index()],
            });
        }
        let record = JobRecord {
            job: identity.job,
            cluster: identity.cluster,
            vc: identity.vc,
            user: identity.user,
            template: identity.template,
            instance: identity.instance,
            submitted_at: identity.submitted_at,
            latency: sim.latency,
            cpu_time: sim.cpu_time,
            tags: tags.to_vec(),
            subgraphs,
        };
        let seq = {
            let mut records = self.records.lock();
            records.push(record.clone());
            (records.len() - 1) as u64
        };
        // Notify outside the records lock: the sink may do IO, and the
        // sequence number captured above keeps concurrent appends distinct
        // even if notifications land out of order.
        if let Some(sink) = self.sink.lock().clone() {
            sink(seq, &record);
        }
        Ok(())
    }

    /// Snapshot of all records.
    pub fn records(&self) -> Vec<JobRecord> {
        self.records.lock().clone()
    }

    /// Runs `f` over the records in place, without cloning them. The
    /// repository lock is held for the duration of `f`; don't call back
    /// into the repository from inside.
    pub fn with_records<R>(&self, f: impl FnOnce(&[JobRecord]) -> R) -> R {
        f(&self.records.lock())
    }

    /// Records submitted within `[from, to)`.
    pub fn records_in_window(&self, from: SimTime, to: SimTime) -> Vec<JobRecord> {
        self.records
            .lock()
            .iter()
            .filter(|r| r.submitted_at >= from && r.submitted_at < to)
            .cloned()
            .collect()
    }

    /// Number of recorded jobs.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }

    /// Drops all records (used between experiment phases).
    pub fn clear(&self) {
        self.records.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::data::Table;
    use crate::exec::execute_plan;
    use crate::optimizer::{optimize, NoViewServices, OptimizerConfig};
    use crate::sim::{simulate, ClusterConfig};
    use crate::storage::StorageManager;
    use scope_common::ids::DatasetId;
    use scope_plan::expr::AggFunc;
    use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, Schema, Value};

    fn setup() -> (StorageManager, QueryGraph) {
        let s = StorageManager::new();
        let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)]);
        let rows = (0..1000)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        s.put_dataset(DatasetId::new(1), Table::single(schema.clone(), rows));
        let mut b = PlanBuilder::new();
        let scan = b.table_scan(DatasetId::new(1), "in/<date>/t.ss", schema);
        let f = b.filter(scan, Expr::col(1).ge(Expr::lit(0i64)));
        let a = b.aggregate(f, vec![0], vec![AggExpr::new("c", AggFunc::Count, 1)]);
        let g = b.output(a, "out/<date>/r.ss").build().unwrap();
        (s, g)
    }

    fn identity(job: u64) -> JobIdentity {
        JobIdentity {
            job: JobId::new(job),
            cluster: ClusterId::new(0),
            vc: VcId::new(0),
            user: UserId::new(0),
            template: TemplateId::new(0),
            instance: 0,
            submitted_at: SimTime::ZERO,
        }
    }

    #[test]
    fn record_reconciles_stats() {
        let (storage, g) = setup();
        let plan = optimize(
            &g,
            &[],
            &NoViewServices,
            &OptimizerConfig::default(),
            JobId::new(1),
        )
        .unwrap();
        let exec = execute_plan(
            &plan.physical,
            &storage,
            &CostModel::default(),
            SimTime::ZERO,
        )
        .unwrap();
        let sim = simulate(&plan.physical, &exec, &ClusterConfig::default());
        let repo = WorkloadRepository::new();
        repo.record(identity(1), &g, &plan, &exec, &sim).unwrap();
        assert_eq!(repo.len(), 1);
        let rec = &repo.records()[0];
        // One SubgraphRun per logical node.
        assert_eq!(rec.subgraphs.len(), g.len());
        // Cumulative >= exclusive everywhere; root cumulative spans the job.
        for s in &rec.subgraphs {
            assert!(s.cumulative_cpu >= s.exclusive_cpu);
        }
        let root_run = rec
            .subgraphs
            .iter()
            .find(|s| s.root == g.roots()[0])
            .unwrap();
        // Root cumulative equals total physical CPU (all nodes reachable).
        assert_eq!(root_run.cumulative_cpu, exec.total_cpu());
        // The aggregate's observed output cardinality is the true 10 groups,
        // not an estimate.
        let agg_run = rec
            .subgraphs
            .iter()
            .find(|s| s.root == NodeId::new(2))
            .unwrap();
        assert_eq!(agg_run.out_rows, 10);
        assert!(rec.tags.contains(&Symbol::intern("in/<date>/t.ss")));
        assert!(rec.latency > SimDuration::ZERO);
    }

    #[test]
    fn window_query_filters() {
        let (storage, g) = setup();
        let plan = optimize(
            &g,
            &[],
            &NoViewServices,
            &OptimizerConfig::default(),
            JobId::new(1),
        )
        .unwrap();
        let exec = execute_plan(
            &plan.physical,
            &storage,
            &CostModel::default(),
            SimTime::ZERO,
        )
        .unwrap();
        let sim = simulate(&plan.physical, &exec, &ClusterConfig::default());
        let repo = WorkloadRepository::new();
        let mut early = identity(1);
        early.submitted_at = SimTime(100);
        let mut late = identity(2);
        late.submitted_at = SimTime(10_000);
        repo.record(early, &g, &plan, &exec, &sim).unwrap();
        repo.record(late, &g, &plan, &exec, &sim).unwrap();
        assert_eq!(repo.records_in_window(SimTime(0), SimTime(1_000)).len(), 1);
        assert_eq!(repo.records_in_window(SimTime(0), SimTime::MAX).len(), 2);
        repo.clear();
        assert!(repo.is_empty());
    }
}
