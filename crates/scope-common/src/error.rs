//! Workspace-wide error type.
//!
//! Every fallible public API in the workspace returns [`Result`]. The variants
//! mirror the failure domains of the system: planning, optimization,
//! execution, storage, and the CloudViews metadata protocol.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, ScopeError>;

/// The error type shared by every crate in the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScopeError {
    /// A query plan was structurally invalid (dangling edge, arity mismatch,
    /// unknown column, cycle in what must be a DAG, ...).
    InvalidPlan(String),
    /// A scalar expression referenced a column that does not exist or was
    /// applied to values of the wrong type.
    Expression(String),
    /// The optimizer could not produce a physical plan (e.g. no
    /// implementation rule applied, or required properties are unsatisfiable).
    Optimizer(String),
    /// A runtime execution failure (operator contract violation, missing
    /// input partition, ...).
    Execution(String),
    /// Storage-layer failure: unknown table, unknown view, view expired, or
    /// a catalog conflict.
    Storage(String),
    /// CloudViews metadata-service protocol failure (lock conflicts are *not*
    /// errors — they are ordinary `LockOutcome`s — this covers malformed
    /// requests such as releasing a lock that was never held).
    Metadata(String),
    /// Workload generation was asked for something inconsistent (e.g. a
    /// business unit with zero virtual clusters).
    Workload(String),
    /// A service call failed transiently (timeout, injected fault). Callers
    /// are expected to retry with backoff and then degrade gracefully —
    /// e.g. a failed metadata lookup falls back to the baseline plan.
    ServiceUnavailable(String),
    /// A matched materialized view could not be read back (file lost or
    /// integrity checksum mismatch). Recoverable: the runtime falls back to
    /// recomputing the subexpression from base data.
    ViewUnavailable(String),
}

impl ScopeError {
    /// A short machine-readable tag naming the failure domain.
    pub fn kind(&self) -> &'static str {
        match self {
            ScopeError::InvalidPlan(_) => "invalid_plan",
            ScopeError::Expression(_) => "expression",
            ScopeError::Optimizer(_) => "optimizer",
            ScopeError::Execution(_) => "execution",
            ScopeError::Storage(_) => "storage",
            ScopeError::Metadata(_) => "metadata",
            ScopeError::Workload(_) => "workload",
            ScopeError::ServiceUnavailable(_) => "service_unavailable",
            ScopeError::ViewUnavailable(_) => "view_unavailable",
        }
    }

    /// True for failures the runtime is expected to absorb by degrading
    /// (retry, fall back to baseline, or recompute) rather than failing the
    /// job.
    pub fn is_degradable(&self) -> bool {
        matches!(
            self,
            ScopeError::ServiceUnavailable(_) | ScopeError::ViewUnavailable(_)
        )
    }

    /// The human-readable message carried by the error.
    pub fn message(&self) -> &str {
        match self {
            ScopeError::InvalidPlan(m)
            | ScopeError::Expression(m)
            | ScopeError::Optimizer(m)
            | ScopeError::Execution(m)
            | ScopeError::Storage(m)
            | ScopeError::Metadata(m)
            | ScopeError::Workload(m)
            | ScopeError::ServiceUnavailable(m)
            | ScopeError::ViewUnavailable(m) => m,
        }
    }
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for ScopeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = ScopeError::Storage("unknown table `logs`".into());
        assert_eq!(e.to_string(), "storage: unknown table `logs`");
        assert_eq!(e.kind(), "storage");
        assert_eq!(e.message(), "unknown table `logs`");
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            ScopeError::InvalidPlan(String::new()),
            ScopeError::Expression(String::new()),
            ScopeError::Optimizer(String::new()),
            ScopeError::Execution(String::new()),
            ScopeError::Storage(String::new()),
            ScopeError::Metadata(String::new()),
            ScopeError::Workload(String::new()),
            ScopeError::ServiceUnavailable(String::new()),
            ScopeError::ViewUnavailable(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn degradable_errors_are_flagged() {
        assert!(ScopeError::ServiceUnavailable(String::new()).is_degradable());
        assert!(ScopeError::ViewUnavailable(String::new()).is_degradable());
        assert!(!ScopeError::Execution(String::new()).is_degradable());
        assert!(!ScopeError::Storage(String::new()).is_degradable());
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&ScopeError::Execution("boom".into()));
    }
}
