//! Lock sharding for hash-keyed concurrent state.
//!
//! [`Sharded<T>`] splits one logical container into a power-of-two number
//! of independently locked shards, picked by a mixed key hash. It is the
//! generalization of the 16-way pattern the metrics registry has always
//! used (`telemetry::MetricsRegistry`) and the backbone of the sharded
//! metadata service: readers on different shards never contend, and a
//! janitor can sweep one shard at a time without stopping the world.
//!
//! The key is mixed through a finalizer before masking because callers
//! shard on values that are *not* uniformly distributed — interned
//! [`crate::intern::Symbol`]s are sequential integers, and the low bits of
//! some ids correlate with allocation order. `Sharded` itself holds no
//! locks; `T` brings its own interior mutability.

/// A fixed, power-of-two collection of shards addressed by key hash.
pub struct Sharded<T> {
    shards: Box<[T]>,
    mask: u64,
}

impl<T> Sharded<T> {
    /// Builds `count` shards (clamped to `1..=1024`, rounded up to the next
    /// power of two so selection is a mask, not a division), initializing
    /// each with `init(index)`.
    pub fn new(count: usize, init: impl FnMut(usize) -> T) -> Sharded<T> {
        let count = count.clamp(1, 1024).next_power_of_two();
        let shards: Box<[T]> = (0..count).map(init).collect();
        Sharded {
            mask: (count - 1) as u64,
            shards,
        }
    }

    /// Number of shards (always a power of two, at least 1).
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Always `false`; present for the `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Shard index for `key`.
    pub fn index_for(&self, key: u64) -> usize {
        (mix(key) & self.mask) as usize
    }

    /// The shard owning `key`.
    pub fn for_key(&self, key: u64) -> &T {
        &self.shards[self.index_for(key)]
    }

    /// The shard at a fixed index (for round-robin sweeps and iteration).
    pub fn at(&self, index: usize) -> &T {
        &self.shards[index & self.mask as usize]
    }

    /// All shards in index order.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.shards.iter()
    }
}

impl<'a, T> IntoIterator for &'a Sharded<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.shards.iter()
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed bijection so sequential
/// keys (interned symbols, counter-derived ids) spread across all shards.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_is_clamped_to_power_of_two() {
        assert_eq!(Sharded::new(0, |_| ()).len(), 1);
        assert_eq!(Sharded::new(1, |_| ()).len(), 1);
        assert_eq!(Sharded::new(3, |_| ()).len(), 4);
        assert_eq!(Sharded::new(16, |_| ()).len(), 16);
        assert_eq!(Sharded::new(100_000, |_| ()).len(), 1024);
    }

    #[test]
    fn init_sees_indices_and_at_wraps() {
        let s = Sharded::new(4, |i| i);
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(*s.at(5), 1, "at() wraps by mask for round-robin cursors");
    }

    #[test]
    fn sequential_keys_spread_over_shards() {
        // Raw sequential keys land in every shard once mixed — the exact
        // property interned symbols need.
        let s = Sharded::new(16, |_| ());
        let mut hit = vec![false; 16];
        for key in 0..256u64 {
            hit[s.index_for(key)] = true;
        }
        assert!(hit.iter().all(|&h| h), "{hit:?}");
    }

    #[test]
    fn same_key_same_shard() {
        let s = Sharded::new(8, |i| i);
        for key in [0u64, 1, 42, u64::MAX] {
            assert_eq!(s.for_key(key), s.at(s.index_for(key)));
        }
    }
}
