//! Strongly-typed identifiers.
//!
//! SCOPE's world has many id spaces — physical clusters, virtual clusters
//! (tenants), users, recurring job templates, job instances, plan nodes,
//! execution stages, vertices (tasks), and materialized views. Mixing them up
//! is a classic source of silent bugs, so each is a distinct newtype over a
//! small integer with `Display` for human-readable logs.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug,
            serde::Serialize, serde::Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }

            /// The raw index.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Converts to `usize` for indexing dense arrays.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// A physical cluster (the paper analyzes five of them in Figure 1).
    ClusterId,
    "cluster"
);
define_id!(
    /// A virtual cluster — a tenant with allocated compute capacity
    /// ("tokens") and data access privileges (footnote 1 of the paper).
    VcId,
    "vc"
);
define_id!(
    /// A user entity (human or machine) submitting jobs.
    UserId,
    "user"
);
define_id!(
    /// A business unit: a group of VCs composing a data pipeline
    /// (producers cooking data, consumers processing it; Section 2.2).
    BusinessUnitId,
    "bu"
);
define_id!(
    /// A recurring job template: the script shape that stays fixed while
    /// dates, input GUIDs, and parameters change per instance (Section 3).
    TemplateId,
    "template"
);
define_id!(
    /// One submitted job instance.
    JobId,
    "job"
);
define_id!(
    /// A node in a logical or physical query plan DAG.
    NodeId,
    "n"
);
define_id!(
    /// An execution stage (a pipeline of operators between shuffle
    /// boundaries, executed by many parallel vertices).
    StageId,
    "stage"
);
define_id!(
    /// A materialized view registered in the CloudViews metadata service.
    ViewId,
    "view"
);
define_id!(
    /// A base table / input dataset (an "input GUID" in the paper's terms).
    DatasetId,
    "ds"
);

impl NodeId {
    /// Sentinel for "no node".
    pub const NONE: NodeId = NodeId(u64::MAX);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ClusterId::new(3).to_string(), "cluster3");
        assert_eq!(VcId::new(0).to_string(), "vc0");
        assert_eq!(JobId::new(42).to_string(), "job42");
        assert_eq!(NodeId::new(7).to_string(), "n7");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(JobId::new(1));
        set.insert(JobId::new(1));
        set.insert(JobId::new(2));
        assert_eq!(set.len(), 2);
        assert!(JobId::new(1) < JobId::new(2));
    }

    #[test]
    fn index_round_trips() {
        let id = StageId::from(9u64);
        assert_eq!(id.raw(), 9);
        assert_eq!(id.index(), 9);
    }

    #[test]
    fn node_none_sentinel() {
        assert_ne!(NodeId::NONE, NodeId::new(0));
    }
}
