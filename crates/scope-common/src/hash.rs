//! Stable keyed hashing for plan signatures.
//!
//! The paper's signatures (Section 3) are persisted outside a single process:
//! they are embedded in materialized-view file paths, stored in the metadata
//! service, and compared across jobs compiled days apart. That rules out
//! `std::collections::hash_map::DefaultHasher` (randomly keyed per process)
//! and any hasher whose output may change between Rust releases. We therefore
//! implement SipHash-2-4 from the reference specification with fixed keys,
//! and derive a 128-bit digest ([`Sig128`]) by running two independently
//! keyed instances.
//!
//! SipHash-2-4 is the same family SCOPE-era systems used for plan
//! fingerprints; it is fast on short inputs (plan nodes hash a few dozen
//! bytes each) and has no known full-rounds collisions attacks relevant to
//! our (non-adversarial) setting.

use std::fmt;

/// A 128-bit stable signature.
///
/// Used both as the *precise* and the *normalized* signature of a plan
/// subgraph. Formats as 32 lowercase hex digits, e.g. in materialized-view
/// file paths (`.../views/0123…cdef.ss`).
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Sig128 {
    /// High 64 bits of the digest.
    pub hi: u64,
    /// Low 64 bits of the digest.
    pub lo: u64,
}

impl Sig128 {
    /// The all-zero signature; used as a sentinel for "no signature".
    pub const ZERO: Sig128 = Sig128 { hi: 0, lo: 0 };

    /// Builds a signature from raw parts.
    pub const fn new(hi: u64, lo: u64) -> Self {
        Sig128 { hi, lo }
    }

    /// Combines two signatures order-sensitively (used to fold a child
    /// signature into a parent's hasher state when Merkle-hashing a plan).
    pub fn combine(self, other: Sig128) -> Sig128 {
        let mut h1 = SipHasher24::new_with_keys(K0_HI, K1_HI);
        let mut h2 = SipHasher24::new_with_keys(K0_LO, K1_LO);
        for h in [&mut h1, &mut h2] {
            h.write_u64(self.hi);
            h.write_u64(self.lo);
            h.write_u64(other.hi);
            h.write_u64(other.lo);
        }
        Sig128 {
            hi: h1.finish(),
            lo: h2.finish(),
        }
    }

    /// A short 16-hex-digit prefix, convenient for log lines and file names.
    pub fn short(&self) -> String {
        format!("{:016x}", self.hi)
    }
}

impl fmt::Display for Sig128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Debug for Sig128 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sig128({:016x}{:016x})", self.hi, self.lo)
    }
}

// Fixed keys. Arbitrary constants (digits of pi / e); what matters is that
// the two instances are keyed differently and never change.
const K0_HI: u64 = 0x243f_6a88_85a3_08d3;
const K1_HI: u64 = 0x1319_8a2e_0370_7344;
const K0_LO: u64 = 0xa409_3822_299f_31d0;
const K1_LO: u64 = 0x082e_fa98_ec4e_6c89;

/// Hashes `bytes` into a 64-bit stable digest (fixed-key SipHash-2-4).
pub fn sip64(bytes: &[u8]) -> u64 {
    let mut h = SipHasher24::new_with_keys(K0_HI, K1_HI);
    h.write(bytes);
    h.finish()
}

/// Hashes `bytes` into a 128-bit stable digest by running two independently
/// keyed SipHash-2-4 instances.
pub fn sip128(bytes: &[u8]) -> Sig128 {
    let mut h1 = SipHasher24::new_with_keys(K0_HI, K1_HI);
    let mut h2 = SipHasher24::new_with_keys(K0_LO, K1_LO);
    h1.write(bytes);
    h2.write(bytes);
    Sig128 {
        hi: h1.finish(),
        lo: h2.finish(),
    }
}

/// One-shot SipHash-2-4 of a short (under 16 bytes) message: digest is
/// identical to writing the same bytes through [`SipHasher24`] and calling
/// `finish`, but skips the buffering state machine. Hot path for the
/// columnar exchange, which hashes one small tagged cell per row.
#[inline]
pub fn sip24_short(k0: u64, k1: u64, msg: &[u8]) -> u64 {
    debug_assert!(msg.len() < 16, "sip24_short is for sub-16-byte messages");
    let mut v0 = k0 ^ 0x736f_6d65_7073_6575;
    let mut v1 = k1 ^ 0x646f_7261_6e64_6f6d;
    let mut v2 = k0 ^ 0x6c79_6765_6e65_7261;
    let mut v3 = k1 ^ 0x7465_6462_7974_6573;
    let mut rest = msg;
    if rest.len() >= 8 {
        let m = u64::from_le_bytes(rest[..8].try_into().expect("8-byte block"));
        v3 ^= m;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= m;
        rest = &rest[8..];
    }
    let mut b = (msg.len() as u64 & 0xff) << 56;
    for (i, &x) in rest.iter().enumerate() {
        b |= (x as u64) << (8 * i);
    }
    v3 ^= b;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^= b;
    v2 ^= 0xff;
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    sipround(&mut v0, &mut v1, &mut v2, &mut v3);
    v0 ^ v1 ^ v2 ^ v3
}

/// Incremental SipHash-2-4 implementation (reference algorithm).
///
/// Implements the c=2, d=4 variant from Aumasson & Bernstein's reference
/// specification. Byte-stream semantics: feeding the same bytes in any chunk
/// split produces the same digest.
#[derive(Clone)]
pub struct SipHasher24 {
    k0: u64,
    k1: u64,
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
    /// Bytes buffered until a full 8-byte word is available.
    tail: u64,
    /// Number of valid bytes in `tail` (0..8).
    ntail: usize,
    /// Total bytes written so far (mod 256 is what matters for the spec).
    length: usize,
}

#[inline(always)]
fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl SipHasher24 {
    /// Creates a hasher with the given 128-bit key (two 64-bit halves).
    pub fn new_with_keys(k0: u64, k1: u64) -> Self {
        SipHasher24 {
            k0,
            k1,
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
            tail: 0,
            ntail: 0,
            length: 0,
        }
    }

    #[inline]
    fn process_word(&mut self, m: u64) {
        self.v3 ^= m;
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        sipround(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        self.v0 ^= m;
    }

    /// Feeds bytes into the hash state.
    pub fn write(&mut self, mut bytes: &[u8]) {
        self.length = self.length.wrapping_add(bytes.len());
        // Fill the partial tail word first.
        if self.ntail > 0 {
            let need = 8 - self.ntail;
            let take = need.min(bytes.len());
            for (i, &b) in bytes[..take].iter().enumerate() {
                self.tail |= (b as u64) << (8 * (self.ntail + i));
            }
            self.ntail += take;
            bytes = &bytes[take..];
            if self.ntail < 8 {
                return;
            }
            let w = self.tail;
            self.process_word(w);
            self.tail = 0;
            self.ntail = 0;
        }
        // Whole words.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let w = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.process_word(w);
        }
        // Stash the remainder.
        for (i, &b) in chunks.remainder().iter().enumerate() {
            self.tail |= (b as u64) << (8 * i);
        }
        self.ntail = chunks.remainder().len();
    }

    /// Convenience: writes a little-endian `u64`.
    pub fn write_u64(&mut self, x: u64) {
        self.write(&x.to_le_bytes());
    }

    /// Convenience: writes a little-endian `u32`.
    pub fn write_u32(&mut self, x: u32) {
        self.write(&x.to_le_bytes());
    }

    /// Convenience: writes a single byte.
    pub fn write_u8(&mut self, x: u8) {
        self.write(&[x]);
    }

    /// Convenience: writes a length-prefixed string (length prefix prevents
    /// `("ab","c")` colliding with `("a","bc")` when hashing field tuples).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write(s.as_bytes());
    }

    /// Finalizes and returns the 64-bit digest. The hasher can keep being
    /// written to afterwards only by cloning beforehand; `finish` consumes
    /// conceptually but we take `&self` semantics via an internal copy to
    /// match `std::hash::Hasher`.
    pub fn finish(&self) -> u64 {
        let mut v0 = self.v0;
        let mut v1 = self.v1;
        let mut v2 = self.v2;
        let mut v3 = self.v3;
        let b: u64 = ((self.length as u64 & 0xff) << 56) | self.tail;
        v3 ^= b;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= b;
        v2 ^= 0xff;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^ v1 ^ v2 ^ v3
    }

    #[allow(dead_code)]
    fn keys(&self) -> (u64, u64) {
        (self.k0, self.k1)
    }
}

impl std::hash::Hasher for SipHasher24 {
    fn finish(&self) -> u64 {
        SipHasher24::finish(self)
    }
    fn write(&mut self, bytes: &[u8]) {
        SipHasher24::write(self, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Official SipHash-2-4 test vectors from the reference implementation
    /// (key = 00 01 02 ... 0f, messages = [], [00], [00 01], ...).
    #[test]
    fn reference_vectors() {
        const K0: u64 = 0x0706050403020100;
        const K1: u64 = 0x0f0e0d0c0b0a0908;
        // First 8 vectors of vectors_sip64 from the reference repo.
        const EXPECTED: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let msg: Vec<u8> = (0u8..8).collect();
        for (len, &want) in EXPECTED.iter().enumerate() {
            let mut h = SipHasher24::new_with_keys(K0, K1);
            h.write(&msg[..len]);
            assert_eq!(h.finish(), want, "vector length {len}");
        }
    }

    #[test]
    fn short_one_shot_matches_incremental() {
        let data: Vec<u8> = (0u8..16)
            .map(|b| b.wrapping_mul(37).wrapping_add(11))
            .collect();
        for len in 0..16 {
            let mut h = SipHasher24::new_with_keys(0x9e3779b97f4a7c15, 0x85ebca6b);
            h.write(&data[..len]);
            assert_eq!(
                sip24_short(0x9e3779b97f4a7c15, 0x85ebca6b, &data[..len]),
                h.finish(),
                "length {len}"
            );
        }
    }

    #[test]
    fn chunking_is_irrelevant() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut whole = SipHasher24::new_with_keys(1, 2);
        whole.write(data);
        for split in 0..data.len() {
            let mut parts = SipHasher24::new_with_keys(1, 2);
            parts.write(&data[..split]);
            parts.write(&data[split..]);
            assert_eq!(parts.finish(), whole.finish(), "split at {split}");
        }
    }

    #[test]
    fn sip128_hi_lo_independent() {
        let s = sip128(b"hello world");
        assert_ne!(s.hi, s.lo);
        // Regression pin: signatures must never change across releases.
        assert_eq!(s, sip128(b"hello world"));
    }

    #[test]
    fn write_str_is_prefix_free() {
        let mut a = SipHasher24::new_with_keys(0, 0);
        a.write_str("ab");
        a.write_str("c");
        let mut b = SipHasher24::new_with_keys(0, 0);
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn combine_is_order_sensitive() {
        let a = sip128(b"a");
        let b = sip128(b"b");
        assert_ne!(a.combine(b), b.combine(a));
        assert_ne!(a.combine(b), a);
    }

    #[test]
    fn display_is_32_hex_digits() {
        let s = sip128(b"x").to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(sip128(b"x").short().len(), 16);
    }

    #[test]
    fn zero_sentinel() {
        assert_eq!(Sig128::ZERO.to_string(), "0".repeat(32));
        assert_ne!(sip128(b""), Sig128::ZERO);
    }

    #[test]
    fn empty_input_hashes() {
        // Must not panic and must differ from a single zero byte.
        assert_ne!(sip64(b""), sip64(&[0u8]));
    }

    #[test]
    fn long_input_multiple_blocks() {
        let long: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let h1 = sip64(&long);
        let mut h = SipHasher24::new_with_keys(K0_HI, K1_HI);
        for chunk in long.chunks(7) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), h1);
    }
}
