//! Observability foundations: a metrics registry and structured tracing.
//!
//! The paper's CloudViews analyzer (§5) is a feedback loop driven by
//! run-time statistics, and its evaluation (§7) is built on per-phase
//! latencies, hit rates, and storage behaviour. This module is the single
//! source of truth for those numbers:
//!
//! * [`MetricsRegistry`] — a lock-sharded registry of named counters,
//!   gauges, and log-scale histograms. Histograms carry a [`MetricUnit`] so
//!   **wall-clock** timings (`Instant`-based, real compute cost) and
//!   **simulated** timings ([`SimClock`](crate::time::SimClock)-based,
//!   modeled latency) are never mixed in one series.
//! * [`Tracer`] — lightweight structured tracing: per-job root spans with
//!   child spans for each phase of the job path, recorded into a bounded
//!   in-memory ring buffer with a JSON export.
//! * Exporters — Prometheus text format ([`MetricsRegistry::prometheus_text`])
//!   and JSON snapshots ([`MetricsRegistry::json_snapshot`],
//!   [`Tracer::json`]), plus a minimal JSON value parser ([`json`]) so
//!   round-trips can be asserted without external crates.
//!
//! Handles returned by the registry ([`Counter`], [`Gauge`], [`Histogram`])
//! are cheap `Arc`-backed clones over atomics: hot paths resolve a name once
//! and then pay one atomic RMW per event, keeping instrumentation overhead
//! within the ≤5% budget the benches enforce.
//!
//! ```
//! use scope_common::telemetry::{MetricUnit, Telemetry};
//!
//! let t = Telemetry::new();
//! t.metrics.counter("cv_jobs_total").inc();
//! t.metrics
//!     .histogram("cv_job_latency_sim_micros", MetricUnit::SimMicros)
//!     .record(15_000);
//! let text = t.metrics.prometheus_text();
//! assert!(text.contains("cv_jobs_total 1"));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use crate::ids::JobId;
use crate::time::SimTime;

/// Number of independent shards in the registry: name→handle resolution
/// takes a per-shard lock, so concurrent jobs registering or resolving
/// different metrics rarely contend.
const SHARDS: usize = 16;

use crate::shard::Sharded;

/// Ring-buffer capacity of a default [`Tracer`].
const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// Histogram bucket count: bucket `i` (1-based) counts values in
/// `[2^(i-1), 2^i)`; bucket 0 counts zeros. 64 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// What a histogram's values measure. Kept explicit so wall-clock and
/// simulated timings are distinct series (the paper's modeled latencies must
/// never be conflated with real in-process compute time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricUnit {
    /// Dimensionless counts (vertices per stage, annotations per lookup).
    Count,
    /// Bytes (view files written, read, purged).
    Bytes,
    /// Simulated microseconds (SimClock-derived: modeled latencies).
    SimMicros,
    /// Wall-clock microseconds (Instant-derived: real compute cost).
    WallMicros,
}

impl MetricUnit {
    /// Stable identifier used by the JSON exporter.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricUnit::Count => "count",
            MetricUnit::Bytes => "bytes",
            MetricUnit::SimMicros => "sim_micros",
            MetricUnit::WallMicros => "wall_micros",
        }
    }

    /// Parses the identifier written by [`MetricUnit::as_str`].
    pub fn parse(s: &str) -> Option<MetricUnit> {
        match s {
            "count" => Some(MetricUnit::Count),
            "bytes" => Some(MetricUnit::Bytes),
            "sim_micros" => Some(MetricUnit::SimMicros),
            "wall_micros" => Some(MetricUnit::WallMicros),
            _ => None,
        }
    }
}

impl fmt::Display for MetricUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a signed value that can move both ways (active locks,
/// live view-store bytes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log-scale histogram handle: power-of-two buckets over `u64` values.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

#[derive(Debug)]
struct HistogramInner {
    unit: MetricUnit,
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

/// Bucket index for a value: 0 for zero, else `floor(log2(v)) + 1`, so
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    fn new(unit: MetricUnit) -> Histogram {
        Histogram(Arc::new(HistogramInner {
            unit,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// The unit declared at creation.
    pub fn unit(&self) -> MetricUnit {
        self.0.unit
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for export (values may lag under
    /// concurrent writes but never go backwards).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            unit: self.0.unit,
            count: buckets.iter().sum(),
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Declared unit.
    pub unit: MetricUnit,
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Raw per-bucket counts (`buckets[0]` = zeros, `buckets[i]` = values in
    /// `[2^(i-1), 2^i)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0..=1); a
    /// log-scale estimate, exact to within a factor of two.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Non-empty `(upper_bound, cumulative_count)` pairs, the Prometheus
    /// `le` series.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if *b > 0 {
                cum += b;
                out.push((bucket_upper_bound(i), cum));
            }
        }
        out
    }
}

/// Inclusive upper bound of bucket `i` (`0` for the zero bucket).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

#[derive(Default)]
struct Shard {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

/// A lock-sharded registry of named metrics.
///
/// Resolution (`counter`/`gauge`/`histogram`) takes one shard lock; the
/// returned handles are lock-free. Names should be Prometheus-compatible
/// (`[a-zA-Z_][a-zA-Z0-9_]*`); the exporters sanitize anything else.
pub struct MetricsRegistry {
    shards: Sharded<Shard>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            shards: Sharded::new(SHARDS, |_| Shard::default()),
        }
    }

    fn shard(&self, name: &str) -> &Shard {
        self.shards.for_key(crate::hash::sip64(name.as_bytes()))
    }

    /// Resolves (creating on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let shard = self.shard(name);
        if let Some(c) = shard.counters.read().get(name) {
            return c.clone();
        }
        shard
            .counters
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Resolves (creating on first use) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let shard = self.shard(name);
        if let Some(g) = shard.gauges.read().get(name) {
            return g.clone();
        }
        shard
            .gauges
            .write()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Resolves (creating on first use) the histogram `name` with `unit`.
    /// The unit is fixed at creation; later calls with a different unit get
    /// the original series (units are part of the contract, not a key).
    pub fn histogram(&self, name: &str, unit: MetricUnit) -> Histogram {
        let shard = self.shard(name);
        if let Some(h) = shard.histograms.read().get(name) {
            return h.clone();
        }
        shard
            .histograms
            .write()
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(unit))
            .clone()
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.shard(name)
            .counters
            .read()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Current value of gauge `name` (0 when absent).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.shard(name)
            .gauges
            .read()
            .get(name)
            .map(|g| g.get())
            .unwrap_or(0)
    }

    /// Snapshot of histogram `name`, if present.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.shard(name)
            .histograms
            .read()
            .get(name)
            .map(|h| h.snapshot())
    }

    /// A full, name-sorted snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = Vec::new();
        let mut gauges: Vec<(String, i64)> = Vec::new();
        let mut histograms: Vec<(String, HistogramSnapshot)> = Vec::new();
        for shard in &self.shards {
            counters.extend(
                shard
                    .counters
                    .read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get())),
            );
            gauges.extend(
                shard
                    .gauges
                    .read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.get())),
            );
            histograms.extend(
                shard
                    .histograms
                    .read()
                    .iter()
                    .map(|(k, v)| (k.clone(), v.snapshot())),
            );
        }
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Prometheus text exposition format (type comments + samples).
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// JSON snapshot of every metric (see [`MetricsSnapshot::to_json`]).
    pub fn json_snapshot(&self) -> String {
        self.snapshot().to_json()
    }
}

/// A point-in-time, name-sorted copy of a whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` histograms.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Replaces characters Prometheus rejects in metric names.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .enumerate()
        .map(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' => c,
            '0'..='9' if i > 0 => c,
            _ => '_',
        })
        .collect()
}

impl MetricsSnapshot {
    /// Value of counter `name` in this snapshot (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of gauge `name` in this snapshot (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Histogram `name` in this snapshot, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus text exposition format.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (le, cum) in h.cumulative_buckets() {
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        out
    }

    /// JSON object:
    /// `{"counters":{..},"gauges":{..},"histograms":{name:{"unit":..,"count":..,"sum":..,"buckets":[[i,count],..]}}}`.
    /// Histogram buckets are exported sparsely as `[index, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json::escape(name)));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{v}", json::escape(name)));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"unit\":\"{}\",\"count\":{},\"sum\":{},\"buckets\":[",
                json::escape(name),
                h.unit.as_str(),
                h.count,
                h.sum
            ));
            let mut first = true;
            for (idx, b) in h.buckets.iter().enumerate() {
                if *b > 0 {
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    out.push_str(&format!("[{idx},{b}]"));
                }
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Parses a snapshot back from [`MetricsSnapshot::to_json`] output
    /// (the round-trip contract tested in `tests/telemetry.rs`).
    pub fn from_json(s: &str) -> Option<MetricsSnapshot> {
        let v = json::parse(s)?;
        let obj = v.as_object()?;
        let mut snap = MetricsSnapshot::default();
        for (name, v) in obj.get("counters")?.as_object()? {
            snap.counters.push((name.clone(), v.as_u64()?));
        }
        for (name, v) in obj.get("gauges")?.as_object()? {
            snap.gauges.push((name.clone(), v.as_i64()?));
        }
        for (name, h) in obj.get("histograms")?.as_object()? {
            let h = h.as_object()?;
            let mut buckets = vec![0u64; BUCKETS];
            for pair in h.get("buckets")?.as_array()? {
                let pair = pair.as_array()?;
                let idx = pair.first()?.as_u64()? as usize;
                *buckets.get_mut(idx)? = pair.get(1)?.as_u64()?;
            }
            snap.histograms.push((
                name.clone(),
                HistogramSnapshot {
                    unit: MetricUnit::parse(h.get("unit")?.as_str()?)?,
                    count: h.get("count")?.as_u64()?,
                    sum: h.get("sum")?.as_u64()?,
                    buckets,
                },
            ));
        }
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Some(snap)
    }
}

/// Identifier of a finished or in-flight span. `0` is reserved for "no
/// span" (a disabled tracer hands these out).
pub type SpanId = u64;

/// An in-flight span. Finish it with [`Tracer::finish`] (or
/// [`Tracer::finish_with`] to attach an outcome label); dropping it
/// unfinished records nothing.
#[derive(Debug)]
pub struct ActiveSpan {
    id: SpanId,
    parent: Option<SpanId>,
    job: Option<JobId>,
    name: &'static str,
    wall_start: Instant,
    sim_start: SimTime,
}

impl ActiveSpan {
    /// This span's id (use as `parent` for children).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// True when this span came from a disabled tracer and will not record.
    pub fn is_noop(&self) -> bool {
        self.id == 0
    }
}

/// One finished span in the ring buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id (unique within a tracer).
    pub id: SpanId,
    /// Parent span id, `None` for roots.
    pub parent: Option<SpanId>,
    /// Job the span belongs to, when attributable.
    pub job: Option<JobId>,
    /// Phase name (`"job"`, `"metadata_lookup"`, `"execute"`, ...).
    pub name: &'static str,
    /// Simulated start time.
    pub sim_start: SimTime,
    /// Simulated end time.
    pub sim_end: SimTime,
    /// Real (wall-clock) duration of the instrumented code, in microseconds.
    pub wall_micros: u64,
    /// Optional outcome label (`"reuse"`, `"build"`, `"baseline_fallback"`).
    pub outcome: Option<&'static str>,
}

/// Structured tracing into a bounded in-memory ring buffer.
///
/// When full, the oldest finished spans are dropped — tracing can never
/// grow without bound under sustained traffic. Disable with
/// [`Tracer::set_enabled`] to make span creation free (used by the
/// telemetry-overhead benches).
pub struct Tracer {
    buf: Mutex<std::collections::VecDeque<SpanRecord>>,
    capacity: usize,
    next_id: AtomicU64,
    enabled: AtomicBool,
    dropped: AtomicU64,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(DEFAULT_SPAN_CAPACITY)
    }
}

impl Tracer {
    /// A tracer retaining at most `capacity` finished spans.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            buf: Mutex::new(std::collections::VecDeque::with_capacity(
                capacity.clamp(1, DEFAULT_SPAN_CAPACITY),
            )),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            enabled: AtomicBool::new(true),
            dropped: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off. Off: spans become no-ops.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn start(
        &self,
        name: &'static str,
        parent: Option<SpanId>,
        job: Option<JobId>,
        sim_start: SimTime,
    ) -> ActiveSpan {
        let id = if self.is_enabled() {
            self.next_id.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        ActiveSpan {
            id,
            parent,
            job,
            name,
            wall_start: Instant::now(),
            sim_start,
        }
    }

    /// Starts a root span (a per-job trace root).
    pub fn root(&self, name: &'static str, job: Option<JobId>, sim_start: SimTime) -> ActiveSpan {
        self.start(name, None, job, sim_start)
    }

    /// Starts a child of `parent`, inheriting its job attribution.
    pub fn child(&self, parent: &ActiveSpan, name: &'static str, sim_start: SimTime) -> ActiveSpan {
        self.start(
            name,
            (parent.id != 0).then_some(parent.id),
            parent.job,
            sim_start,
        )
    }

    /// Finishes a span at simulated time `sim_end`.
    pub fn finish(&self, span: ActiveSpan, sim_end: SimTime) -> SpanId {
        self.finish_with(span, sim_end, None)
    }

    /// Finishes a span with an outcome label.
    pub fn finish_with(
        &self,
        span: ActiveSpan,
        sim_end: SimTime,
        outcome: Option<&'static str>,
    ) -> SpanId {
        if span.id == 0 {
            return 0;
        }
        let record = SpanRecord {
            id: span.id,
            parent: span.parent,
            job: span.job,
            name: span.name,
            sim_start: span.sim_start,
            sim_end: sim_end.max(span.sim_start),
            wall_micros: span.wall_start.elapsed().as_micros() as u64,
            outcome,
        };
        let mut buf = self.buf.lock();
        if buf.len() >= self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(record);
        span.id
    }

    /// All retained finished spans, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Retained spans attributed to `job`, oldest first.
    pub fn spans_for_job(&self, job: JobId) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .iter()
            .filter(|s| s.job == Some(job))
            .cloned()
            .collect()
    }

    /// Spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Clears the buffer (tests and admin reset).
    pub fn clear(&self) {
        self.buf.lock().clear();
    }

    /// JSON array of the retained spans, oldest first:
    /// `[{"id":..,"parent":..,"job":..,"name":..,"sim_start_us":..,"sim_end_us":..,"wall_us":..,"outcome":..},..]`.
    pub fn json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.buf.lock().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"parent\":{},\"job\":{},\"name\":{},\"sim_start_us\":{},\"sim_end_us\":{},\"wall_us\":{},\"outcome\":{}}}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                s.job.map_or("null".to_string(), |j| j.raw().to_string()),
                json::escape(s.name),
                s.sim_start.micros(),
                s.sim_end.micros(),
                s.wall_micros,
                s.outcome.map_or("null".to_string(), json::escape),
            ));
        }
        out.push(']');
        out
    }
}

/// The telemetry sink every instrumented component shares: one metrics
/// registry plus one tracer, with a master enable switch.
///
/// Disabling flips the tracer off and makes [`Telemetry::is_enabled`]
/// false; cached metric handles keep working (atomic increments are cheap
/// enough to leave unconditional) but instrumentation sites that do real
/// work (span bookkeeping, per-phase clock reads) consult the switch first.
pub struct Telemetry {
    /// Named counters, gauges, histograms.
    pub metrics: MetricsRegistry,
    /// Structured span recording.
    pub tracer: Tracer,
    enabled: AtomicBool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::default(),
            enabled: AtomicBool::new(true),
        }
    }
}

impl Telemetry {
    /// An enabled telemetry sink behind an `Arc` (the shape every component
    /// stores).
    pub fn new() -> Arc<Telemetry> {
        Arc::new(Telemetry::default())
    }

    /// A sink that records nothing until re-enabled (overhead baselines).
    pub fn disabled() -> Arc<Telemetry> {
        let t = Telemetry::new();
        t.set_enabled(false);
        t
    }

    /// Master switch: also toggles the tracer.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
        self.tracer.set_enabled(enabled);
    }

    /// Whether instrumentation sites should record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }
}

pub mod json {
    //! A minimal JSON value model and recursive-descent parser, just enough
    //! to verify the exporters' output round-trips without external crates
    //! (the workspace's `serde` is a no-op shim).

    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum JsonValue {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number (stored as f64; integers round-trip exactly up
        /// to 2^53, far beyond any exported metric in practice).
        Number(f64),
        /// A string.
        String(String),
        /// An array.
        Array(Vec<JsonValue>),
        /// An object (sorted keys).
        Object(BTreeMap<String, JsonValue>),
    }

    impl JsonValue {
        /// The value as an object, if it is one.
        pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
            match self {
                JsonValue::Object(m) => Some(m),
                _ => None,
            }
        }

        /// The value as an array, if it is one.
        pub fn as_array(&self) -> Option<&Vec<JsonValue>> {
            match self {
                JsonValue::Array(a) => Some(a),
                _ => None,
            }
        }

        /// The value as a string, if it is one.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JsonValue::String(s) => Some(s),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if it is one.
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }

        /// The value as a signed integer, if it is one.
        pub fn as_i64(&self) -> Option<i64> {
            match self {
                JsonValue::Number(n) if n.fract() == 0.0 => Some(*n as i64),
                _ => None,
            }
        }
    }

    /// Escapes `s` as a JSON string literal (with quotes).
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    /// Parses one JSON document; `None` on any syntax error or trailing
    /// garbage.
    pub fn parse(s: &str) -> Option<JsonValue> {
        let bytes = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        (pos == bytes.len()).then_some(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
        skip_ws(b, pos);
        match *b.get(*pos)? {
            b'{' => parse_object(b, pos),
            b'[' => parse_array(b, pos),
            b'"' => parse_string(b, pos).map(JsonValue::String),
            b't' => parse_lit(b, pos, "true").map(|_| JsonValue::Bool(true)),
            b'f' => parse_lit(b, pos, "false").map(|_| JsonValue::Bool(false)),
            b'n' => parse_lit(b, pos, "null").map(|_| JsonValue::Null),
            _ => parse_number(b, pos),
        }
    }

    fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Option<()> {
        if b[*pos..].starts_with(lit.as_bytes()) {
            *pos += lit.len();
            Some(())
        } else {
            None
        }
    }

    fn parse_number(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
        let start = *pos;
        if *b.get(*pos)? == b'-' {
            *pos += 1;
        }
        while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        }
        std::str::from_utf8(&b[start..*pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(JsonValue::Number)
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
        if *b.get(*pos)? != b'"' {
            return None;
        }
        *pos += 1;
        let mut out = String::new();
        loop {
            match *b.get(*pos)? {
                b'"' => {
                    *pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    *pos += 1;
                    match *b.get(*pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(b.get(*pos + 1..*pos + 5)?).ok()?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            *pos += 4;
                        }
                        _ => return None,
                    }
                    *pos += 1;
                }
                _ => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                    let c = rest.chars().next()?;
                    out.push(c);
                    *pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
        *pos += 1; // consume '['
        let mut out = Vec::new();
        skip_ws(b, pos);
        if *b.get(*pos)? == b']' {
            *pos += 1;
            return Some(JsonValue::Array(out));
        }
        loop {
            out.push(parse_value(b, pos)?);
            skip_ws(b, pos);
            match *b.get(*pos)? {
                b',' => *pos += 1,
                b']' => {
                    *pos += 1;
                    return Some(JsonValue::Array(out));
                }
                _ => return None,
            }
        }
    }

    fn parse_object(b: &[u8], pos: &mut usize) -> Option<JsonValue> {
        *pos += 1; // consume '{'
        let mut out = BTreeMap::new();
        skip_ws(b, pos);
        if *b.get(*pos)? == b'}' {
            *pos += 1;
            return Some(JsonValue::Object(out));
        }
        loop {
            skip_ws(b, pos);
            let key = parse_string(b, pos)?;
            skip_ws(b, pos);
            if *b.get(*pos)? != b':' {
                return None;
            }
            *pos += 1;
            out.insert(key, parse_value(b, pos)?);
            skip_ws(b, pos);
            match *b.get(*pos)? {
                b',' => *pos += 1,
                b'}' => {
                    *pos += 1;
                    return Some(JsonValue::Object(out));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_gauges_and_histograms() {
        let m = MetricsRegistry::new();
        let c = m.counter("c_total");
        c.inc();
        c.add(4);
        assert_eq!(m.counter_value("c_total"), 5);
        // Same name resolves to the same underlying atomic.
        m.counter("c_total").inc();
        assert_eq!(c.get(), 6);

        let g = m.gauge("g");
        g.set(10);
        g.add(-3);
        assert_eq!(m.gauge_value("g"), 7);

        let h = m.histogram("h_us", MetricUnit::WallMicros);
        for v in [0, 1, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        let snap = m.histogram_snapshot("h_us").unwrap();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1_001_006);
        assert_eq!(snap.unit, MetricUnit::WallMicros);
        assert_eq!(snap.buckets[0], 1, "one zero");
        assert_eq!(snap.buckets[1], 1, "value 1");
        assert_eq!(snap.buckets[2], 2, "values 2..4");
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_and_mean() {
        let h = Histogram::new(MetricUnit::Count);
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert!((snap.mean() - 50.5).abs() < 1e-9);
        // p50 of 1..=100 lands in [32,64): upper bound 63.
        assert_eq!(snap.quantile_upper_bound(0.5), 63);
        assert_eq!(snap.quantile_upper_bound(1.0), 127);
        assert_eq!(
            HistogramSnapshot::quantile_upper_bound(
                &Histogram::new(MetricUnit::Count).snapshot(),
                0.5
            ),
            0
        );
    }

    #[test]
    fn registry_is_thread_safe() {
        let m = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for j in 0..1000u64 {
                        m.counter("shared_total").inc();
                        m.counter(&format!("per_thread_{i}_total")).inc();
                        m.histogram("lat", MetricUnit::SimMicros).record(j);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter_value("shared_total"), 8000);
        assert_eq!(m.histogram_snapshot("lat").unwrap().count, 8000);
        for i in 0..8 {
            assert_eq!(m.counter_value(&format!("per_thread_{i}_total")), 1000);
        }
    }

    #[test]
    fn prometheus_text_format() {
        let m = MetricsRegistry::new();
        m.counter("jobs_total").add(3);
        m.gauge("active").set(-2);
        m.histogram("lat_us", MetricUnit::SimMicros).record(5);
        let text = m.prometheus_text();
        assert!(text.contains("# TYPE jobs_total counter\njobs_total 3\n"));
        assert!(text.contains("# TYPE active gauge\nactive -2\n"));
        assert!(text.contains("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_us_sum 5\n"));
        assert!(text.contains("lat_us_count 1\n"));
    }

    #[test]
    fn json_snapshot_round_trips() {
        let m = MetricsRegistry::new();
        m.counter("a_total").add(7);
        m.gauge("g").set(-5);
        let h = m.histogram("h", MetricUnit::Bytes);
        h.record(0);
        h.record(300);
        let snap = m.snapshot();
        let parsed = MetricsSnapshot::from_json(&snap.to_json()).expect("parse");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn tracer_records_span_trees() {
        let t = Tracer::new(16);
        let root = t.root("job", Some(JobId::new(7)), SimTime::ZERO);
        let root_id = root.id();
        let child = t.child(&root, "execute", SimTime::ZERO);
        t.finish(child, SimTime::ZERO + SimDuration::from_secs(1));
        t.finish_with(
            root,
            SimTime::ZERO + SimDuration::from_secs(2),
            Some("reuse"),
        );
        let spans = t.spans_for_job(JobId::new(7));
        assert_eq!(spans.len(), 2);
        let exec = spans.iter().find(|s| s.name == "execute").unwrap();
        assert_eq!(exec.parent, Some(root_id));
        let root = spans.iter().find(|s| s.name == "job").unwrap();
        assert_eq!(root.parent, None);
        assert_eq!(root.outcome, Some("reuse"));
        assert_eq!(root.sim_end.micros(), 2_000_000);
        // JSON export parses back as an array of 2 objects.
        let parsed = json::parse(&t.json()).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
    }

    #[test]
    fn tracer_ring_buffer_bounds_memory() {
        let t = Tracer::new(4);
        for i in 0..10u64 {
            let s = t.root("job", Some(JobId::new(i)), SimTime::ZERO);
            t.finish(s, SimTime::ZERO);
        }
        assert_eq!(t.finished().len(), 4);
        assert_eq!(t.dropped(), 6);
        // Oldest evicted: the survivors are jobs 6..=9.
        assert_eq!(t.finished()[0].job, Some(JobId::new(6)));
    }

    #[test]
    fn disabled_tracer_is_noop() {
        let t = Tracer::new(16);
        t.set_enabled(false);
        let s = t.root("job", None, SimTime::ZERO);
        assert!(s.is_noop());
        let c = t.child(&s, "execute", SimTime::ZERO);
        t.finish(c, SimTime::ZERO);
        t.finish(s, SimTime::ZERO);
        assert!(t.finished().is_empty());
    }

    #[test]
    fn telemetry_master_switch() {
        let t = Telemetry::new();
        assert!(t.is_enabled());
        t.set_enabled(false);
        assert!(!t.is_enabled());
        assert!(!t.tracer.is_enabled());
        let d = Telemetry::disabled();
        assert!(!d.is_enabled());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = json::parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\"y\n"},"d":null,"e":true}"#).unwrap();
        let obj = v.as_object().unwrap();
        assert_eq!(obj["a"].as_array().unwrap().len(), 3);
        assert_eq!(
            obj["b"].as_object().unwrap()["c"].as_str().unwrap(),
            "x\"y\n"
        );
        assert_eq!(obj["d"], json::JsonValue::Null);
        assert_eq!(obj["e"], json::JsonValue::Bool(true));
        // Trailing garbage and malformed docs are rejected.
        assert!(json::parse("{} x").is_none());
        assert!(json::parse("{\"a\":}").is_none());
        // escape() output parses back to the original.
        let s = "weird \"chars\"\t\\ \u{1}";
        assert_eq!(json::parse(&json::escape(s)).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn sanitize_names_for_prometheus() {
        assert_eq!(sanitize_name("ok_name_9"), "ok_name_9");
        assert_eq!(sanitize_name("bad-name.x"), "bad_name_x");
        assert_eq!(sanitize_name("9starts_with_digit"), "_starts_with_digit");
    }
}
