//! String interning and shared-structure pooling for the plan IR.
//!
//! Recurring workloads submit the *same template* thousands of times
//! (paper Section 3): the stream names, normalized tags, and physical
//! properties attached to plan nodes repeat across instances with only
//! small deltas. Storing them as owned `String`s / by-value structs makes
//! every compile pay allocation and comparison costs proportional to the
//! payload. This module provides the two fixes:
//!
//! * [`Symbol`] — a `u32` handle into a global, append-only string
//!   interner. Interning the same string twice yields the same handle, so
//!   equality and hashing are O(1) and tag sets can be plain integer sets.
//!   Interned strings live for the life of the process (they are leaked),
//!   which matches the workload: the universe of templates is small and
//!   long-lived.
//! * [`SharedPool`] — a concurrent hash-consing pool that deduplicates
//!   arbitrary `Eq + Hash` values behind `Arc`s, so e.g. the handful of
//!   distinct `PhysicalProps` shapes in a workload are allocated once and
//!   shared by every subgraph record instead of cloned per node.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

/// An interned string: a copyable `u32` handle whose equality and hash are
/// those of the underlying string, at integer cost.
///
/// Obtain one with [`Symbol::intern`]; read it back with
/// [`Symbol::as_str`]. Handles are process-global and never invalidated.
///
/// `Ord` compares interner ids (insertion order), **not** lexicographic
/// order — use it only where any stable total order will do.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct Symbol(u32);

struct Interner {
    map: RwLock<HashMap<&'static str, Symbol>>,
    strings: RwLock<Vec<&'static str>>,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        map: RwLock::new(HashMap::new()),
        strings: RwLock::new(Vec::new()),
    })
}

impl Symbol {
    /// Interns `s`, returning the canonical handle for its contents.
    pub fn intern(s: &str) -> Symbol {
        let it = interner();
        if let Some(&sym) = it.map.read().get(s) {
            return sym;
        }
        let mut map = it.map.write();
        // Double-check: another thread may have interned between locks.
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let mut strings = it.strings.write();
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let sym = Symbol(u32::try_from(strings.len()).expect("interner overflow"));
        strings.push(leaked);
        map.insert(leaked, sym);
        sym
    }

    /// The interned string contents.
    pub fn as_str(self) -> &'static str {
        interner().strings.read()[self.0 as usize]
    }

    /// The raw handle value (diagnostics only; not stable across runs).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Number of distinct strings interned so far, process-wide.
    pub fn interned_count() -> usize {
        interner().strings.read().len()
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

/// A concurrent hash-consing pool: [`SharedPool::intern`] returns an `Arc`
/// to the unique stored copy of a value, allocating only on first sight.
///
/// Lookup uses `Arc<T>: Borrow<T>`, so a probe never clones the candidate;
/// insertion double-checks under the write lock so concurrent first-sights
/// of the same value converge on one allocation.
pub struct SharedPool<T> {
    set: RwLock<HashSet<Arc<T>>>,
}

impl<T: Eq + Hash> SharedPool<T> {
    /// An empty pool.
    pub fn new() -> SharedPool<T> {
        SharedPool {
            set: RwLock::new(HashSet::new()),
        }
    }

    /// The canonical shared copy of `value`.
    pub fn intern(&self, value: T) -> Arc<T> {
        if let Some(existing) = self.set.read().get(&value) {
            return Arc::clone(existing);
        }
        let mut set = self.set.write();
        if let Some(existing) = set.get(&value) {
            return Arc::clone(existing);
        }
        let arc = Arc::new(value);
        set.insert(Arc::clone(&arc));
        arc
    }

    /// Number of distinct values pooled.
    pub fn len(&self) -> usize {
        self.set.read().len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.set.read().is_empty()
    }
}

impl<T: Eq + Hash> Default for SharedPool<T> {
    fn default() -> Self {
        SharedPool::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn same_string_same_symbol() {
        let a = Symbol::intern("clicks/<date>/log.ss");
        let b = Symbol::intern("clicks/<date>/log.ss");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "clicks/<date>/log.ss");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        let a = Symbol::intern("intern-test-a");
        let b = Symbol::intern("intern-test-b");
        assert_ne!(a, b);
        assert_ne!(a.as_str(), b.as_str());
    }

    #[test]
    fn display_and_comparisons_read_through() {
        let a = Symbol::intern("intern-test-display");
        assert_eq!(format!("{a}"), "intern-test-display");
        assert_eq!(format!("{a:?}"), "\"intern-test-display\"");
        assert!(a == "intern-test-display");
        assert_eq!(a.as_ref(), "intern-test-display");
    }

    #[test]
    fn concurrent_interning_converges() {
        let symbols: Vec<Symbol> = thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| Symbol::intern("intern-test-race")))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(symbols.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn shared_pool_dedups_behind_one_arc() {
        let pool: SharedPool<Vec<u32>> = SharedPool::new();
        let a = pool.intern(vec![1, 2, 3]);
        let b = pool.intern(vec![1, 2, 3]);
        let c = pool.intern(vec![4]);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn shared_pool_concurrent_first_sight_single_allocation() {
        let pool: SharedPool<String> = SharedPool::new();
        let arcs: Vec<Arc<String>> = thread::scope(|scope| {
            (0..8)
                .map(|_| scope.spawn(|| pool.intern("pool-race".to_string())))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert!(arcs.windows(2).all(|w| Arc::ptr_eq(&w[0], &w[1])));
        assert_eq!(pool.len(), 1);
    }
}
