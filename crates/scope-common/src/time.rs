//! Simulated time.
//!
//! The cluster simulator, the metadata service's lock expiry, and view
//! expiry/purging all operate on a *simulated* clock so experiments are
//! deterministic and fast regardless of wall-clock speed. Time is measured in
//! integer microseconds since the start of the simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// A point in simulated time (microseconds since simulation start).
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(
    Clone,
    Copy,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    Debug,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as "never expires".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (clamped at zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds in the span.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Seconds in the span, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Multiplies the span by a non-negative factor, rounding to the nearest
    /// microsecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        SimDuration((self.0 as f64 * factor.max(0.0)).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{:.2}s", self.as_secs_f64())
        }
    }
}

/// A monotonically non-decreasing shared simulated clock.
///
/// Thread-safe: the concurrent-jobs tests advance it from several worker
/// threads. `advance_to` is a max-merge so out-of-order advances from
/// parallel jobs cannot move time backwards.
#[derive(Debug, Default)]
pub struct SimClock {
    now_us: AtomicU64,
}

impl SimClock {
    /// A clock starting at the epoch.
    pub fn new() -> Self {
        SimClock {
            now_us: AtomicU64::new(0),
        }
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: SimTime) -> Self {
        SimClock {
            now_us: AtomicU64::new(t.0),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.now_us.load(Ordering::SeqCst))
    }

    /// Moves the clock forward by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        SimTime(self.now_us.fetch_add(d.0, Ordering::SeqCst) + d.0)
    }

    /// Moves the clock to at least `t` (no-op if already past it).
    pub fn advance_to(&self, t: SimTime) {
        self.now_us.fetch_max(t.0, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        assert_eq!(t.micros(), 2_000_000);
        assert_eq!((t - SimTime::ZERO).as_secs_f64(), 2.0);
        assert_eq!(t.since(t + SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn mul_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_secs_f64(2.5));
        assert_eq!(SimDuration::from_secs(1).mul_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn clock_is_monotone() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_millis(5));
        c.advance_to(SimTime(2_000)); // behind: no-op
        assert_eq!(c.now().micros(), 5_000);
        c.advance_to(SimTime(9_000));
        assert_eq!(c.now().micros(), 9_000);
    }

    #[test]
    fn clock_concurrent_advance() {
        use std::sync::Arc;
        let c = Arc::new(SimClock::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance(SimDuration::from_micros(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.now().micros(), 8_000);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.00ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.00s");
        assert_eq!(SimTime(1_500_000).to_string(), "t+1.500s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }
}
