//! Summary statistics and cumulative-distribution helpers.
//!
//! The paper's motivating analysis (Figures 2–5) is a set of cumulative
//! distributions and percentile summaries over overlap measurements. This
//! module provides the small numeric toolkit the analyzer and the figure
//! harness share: percentiles, means, CDF sampling at chosen support points,
//! and a log-spaced axis helper matching the paper's log-x plots.

/// An empirical distribution over `f64` samples.
///
/// Construction sorts once; all queries are then O(log n) or O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct Distribution {
    sorted: Vec<f64>,
}

impl Distribution {
    /// Builds a distribution from raw samples. Non-finite samples are
    /// dropped (they arise from degenerate cost ratios like 0/0).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| x.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Distribution { sorted: samples }
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// The `p`-th percentile (0 ≤ p ≤ 100) using nearest-rank on the sorted
    /// samples; `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * (self.sorted.len() as f64 - 1.0)).round() as usize;
        Some(self.sorted[rank])
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Empirical CDF value: fraction of samples ≤ `x`.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Complementary CDF: fraction of samples ≥ `x` (the paper's Figure 5a
    /// style "fraction of views with frequency at least f").
    pub fn ccdf_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&s| s < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Samples the CDF at each support point, producing `(x, F(x))` pairs
    /// ready for plotting or TSV output.
    pub fn cdf_series(&self, support: &[f64]) -> Vec<(f64, f64)> {
        support.iter().map(|&x| (x, self.cdf_at(x))).collect()
    }

    /// A one-line summary matching the percentile style the paper reports
    /// (e.g. "median 2.96, 75th percentile 3.82, 95th percentile 7.1").
    pub fn summary(&self) -> DistSummary {
        DistSummary {
            count: self.len(),
            mean: self.mean().unwrap_or(0.0),
            min: self.min().unwrap_or(0.0),
            p50: self.percentile(50.0).unwrap_or(0.0),
            p75: self.percentile(75.0).unwrap_or(0.0),
            p95: self.percentile(95.0).unwrap_or(0.0),
            p99: self.percentile(99.0).unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

/// Percentile summary of a [`Distribution`].
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct DistSummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl std::fmt::Display for DistSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} p50={:.2} p75={:.2} p95={:.2} p99={:.2} max={:.2}",
            self.count, self.mean, self.min, self.p50, self.p75, self.p95, self.p99, self.max
        )
    }
}

/// `n` log-spaced points from `lo` to `hi` inclusive (both must be > 0).
/// Matches the log-x axes of Figures 3–5.
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(
        lo > 0.0 && hi > lo && n >= 2,
        "log_space needs 0 < lo < hi, n >= 2"
    );
    let (llo, lhi) = (lo.ln(), hi.ln());
    (0..n)
        .map(|i| (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp())
        .collect()
}

/// `n` linearly spaced points from `lo` to `hi` inclusive.
pub fn lin_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "lin_space needs n >= 2");
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(v: &[f64]) -> Distribution {
        Distribution::new(v.to_vec())
    }

    #[test]
    fn basic_summary() {
        let d = dist(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.len(), 5);
        assert_eq!(d.min(), Some(1.0));
        assert_eq!(d.max(), Some(5.0));
        assert_eq!(d.mean(), Some(3.0));
        assert_eq!(d.median(), Some(3.0));
    }

    #[test]
    fn percentile_nearest_rank() {
        let d = dist(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.percentile(0.0), Some(10.0));
        assert_eq!(d.percentile(100.0), Some(40.0));
        assert_eq!(d.percentile(50.0), Some(30.0)); // rank round(1.5)=2
        assert_eq!(d.percentile(200.0), Some(40.0)); // clamped
    }

    #[test]
    fn cdf_and_ccdf() {
        let d = dist(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(d.cdf_at(0.5), 0.0);
        assert_eq!(d.cdf_at(2.0), 0.75);
        assert_eq!(d.cdf_at(10.0), 1.0);
        assert_eq!(d.ccdf_at(2.0), 0.75);
        assert_eq!(d.ccdf_at(3.1), 0.0);
        // CDF + strict-below CCDF partition the samples.
        for x in [0.0, 1.0, 2.0, 2.5, 3.0, 4.0] {
            let below = d.cdf_at(x);
            let at_or_above = d.ccdf_at(x + 1e-9);
            assert!((below + at_or_above - 1.0).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn empty_and_nonfinite() {
        let d = dist(&[]);
        assert!(d.is_empty());
        assert_eq!(d.mean(), None);
        assert_eq!(d.cdf_at(1.0), 0.0);
        let d = dist(&[f64::NAN, 1.0, f64::INFINITY]);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn series_matches_pointwise() {
        let d = dist(&[1.0, 10.0, 100.0]);
        let xs = log_space(1.0, 100.0, 3);
        let series = d.cdf_series(&xs);
        assert_eq!(series.len(), 3);
        for (x, y) in series {
            assert_eq!(y, d.cdf_at(x));
        }
    }

    #[test]
    fn log_space_endpoints_and_monotone() {
        let xs = log_space(1.0, 1000.0, 4);
        assert!((xs[0] - 1.0).abs() < 1e-9);
        assert!((xs[3] - 1000.0).abs() < 1e-6);
        assert!((xs[1] - 10.0).abs() < 1e-6);
        assert!(xs.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn lin_space_endpoints() {
        let xs = lin_space(0.0, 1.0, 5);
        assert_eq!(xs, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    #[should_panic]
    fn log_space_rejects_nonpositive() {
        log_space(0.0, 1.0, 3);
    }

    #[test]
    fn summary_display() {
        let s = dist(&[1.0, 2.0, 3.0]).summary();
        let line = s.to_string();
        assert!(line.contains("n=3"));
        assert!(line.contains("mean=2.00"));
    }
}
