//! Shared foundations for the CloudViews reproduction.
//!
//! This crate hosts the small, dependency-light building blocks every other
//! crate in the workspace relies on:
//!
//! * [`ids`] — strongly-typed identifiers for clusters, virtual clusters,
//!   users, jobs, plan nodes, views, and so on. Newtypes keep the id spaces
//!   from being mixed up at compile time.
//! * [`time`] — a simulated clock ([`time::SimClock`]) and instant/duration
//!   types used by the discrete-event cluster simulator and by lock expiry in
//!   the CloudViews metadata service.
//! * [`hash`] — a from-scratch, keyed SipHash-2-4 implementation plus the
//!   128-bit [`hash::Sig128`] digest used for plan signatures. Hand-rolled so
//!   signatures are stable across Rust versions, platforms, and process runs
//!   (the paper's signatures are persisted in file paths and metadata
//!   services, so stability is a hard requirement).
//! * [`intern`] — a process-global string interner ([`intern::Symbol`])
//!   and a hash-consing [`intern::SharedPool`], so recurring templates
//!   share one allocation for stream names, tags, and physical-property
//!   shapes instead of cloning them per compiled instance.
//! * [`shard`] — [`shard::Sharded`], power-of-two lock sharding by mixed
//!   key hash; the metrics registry and the CloudViews metadata service
//!   both split their hot maps over it so readers rarely contend.
//! * [`stats`] — summary statistics and CDF helpers used when regenerating
//!   the paper's distribution figures (Figures 2–5).
//! * [`telemetry`] — the observability layer: a lock-sharded metrics
//!   registry (counters, gauges, log-scale histograms with wall vs
//!   simulated units kept distinct), structured tracing into a bounded ring
//!   buffer, and Prometheus/JSON exporters.
//! * [`error`] — the workspace-wide error type.

pub mod codec;
pub mod error;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod time;

pub use error::{Result, ScopeError};
pub use hash::{sip128, sip64, Sig128, SipHasher24};
pub use intern::{SharedPool, Symbol};
pub use shard::Sharded;
pub use telemetry::{MetricUnit, MetricsRegistry, MetricsSnapshot, Telemetry, Tracer};
pub use time::{SimClock, SimDuration, SimTime};
