//! Generic hand-rolled little-endian byte codec.
//!
//! This is the bottom layer shared by the wire protocol (`scope-net`), the
//! typed encoders in `cloudviews::codec`, and the durable store
//! (`scope-store`): an infallible append-only encoder plus a bounds-checked
//! cursor decoder. No serde — the workspace's `serde` is a no-op shim, and
//! both the front door and the write-ahead log need byte-for-byte stable
//! encodings (the loopback acceptance test compares in-process and
//! over-the-wire responses by their encoded bytes; recovery compares state
//! fingerprints over canonical encodings).
//!
//! Conventions:
//!
//! * all integers little-endian; `usize` travels as `u64`;
//! * `f64` as IEEE bits (`to_bits`/`from_bits`) — exact round-trip;
//! * strings as `u32` length + UTF-8 bytes, capped at [`MAX_STR`];
//! * sequences as `u32` count + elements, capped at [`MAX_SEQ`];
//! * options as a `0`/`1` byte + payload;
//! * enums as a `u8` tag + variant payload;
//! * recursive structures are depth-limited at [`MAX_EXPR_DEPTH`] on
//!   decode ([`Dec::descend`]/[`Dec::ascend`]), so an adversarial payload
//!   cannot overflow the stack.
//!
//! Every decode is bounds-checked and returns [`CodecError`] rather than
//! panicking: the decoder is the first line of defense against hostile
//! bytes on the wire and torn records in the log.

use std::fmt;

/// Cap on any single encoded string (1 MiB).
pub const MAX_STR: u32 = 1 << 20;

/// Cap on any single sequence length (64 Ki elements).
pub const MAX_SEQ: u32 = 1 << 16;

/// Cap on recursive nesting depth accepted by the decoder.
pub const MAX_EXPR_DEPTH: u32 = 64;

/// A payload that did not decode (truncated, bad tag, trailing bytes, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Builds a [`CodecError`] from anything stringy (the decoder's error
/// constructor, shared by the typed layers above).
pub fn malformed(what: impl Into<String>) -> CodecError {
    CodecError(what.into())
}

/// Byte-buffer encoder. Infallible: callers build payloads by chaining
/// `put_*` calls and take [`Enc::buf`] at the end.
#[derive(Default)]
pub struct Enc {
    /// The bytes written so far.
    pub buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty buffer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as IEEE bits.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a `usize` as `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a sequence length prefix.
    pub fn put_seq(&mut self, len: usize) {
        self.put_u32(len as u32);
    }
}

/// Bounds-checked cursor decoder over a payload slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    depth: u32,
}

impl<'a> Dec<'a> {
    /// Starts decoding at the head of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            depth: 0,
        }
    }

    /// Fails unless every payload byte was consumed — trailing garbage is
    /// a protocol violation, not padding.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(malformed(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }

    /// Enters one level of recursive decoding, failing past
    /// [`MAX_EXPR_DEPTH`]. Pair every successful call with
    /// [`Dec::ascend`].
    pub fn descend(&mut self) -> Result<(), CodecError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(malformed(format!("expr nesting exceeds {MAX_EXPR_DEPTH}")));
        }
        Ok(())
    }

    /// Leaves one level of recursive decoding.
    pub fn ascend(&mut self) {
        self.depth -= 1;
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| malformed("truncated payload"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(self.u64()? as i64)
    }

    /// Reads a little-endian `i32`.
    pub fn i32(&mut self) -> Result<i32, CodecError> {
        Ok(self.u32()? as i32)
    }

    /// Reads an `f64` from IEEE bits.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a bool byte; anything but 0/1 is malformed.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("bool byte {b}"))),
        }
    }

    /// Reads a `usize` encoded as `u64`, rejecting values above `cap`.
    pub fn usize_capped(&mut self, cap: usize) -> Result<usize, CodecError> {
        let v = self.u64()?;
        if v > cap as u64 {
            return Err(malformed(format!("usize {v} exceeds cap {cap}")));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()?;
        if len > MAX_STR {
            return Err(malformed(format!("string length {len} exceeds {MAX_STR}")));
        }
        let bytes = self.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    /// Reads a sequence length prefix, rejecting lengths above [`MAX_SEQ`].
    pub fn seq(&mut self) -> Result<usize, CodecError> {
        let len = self.u32()?;
        if len > MAX_SEQ {
            return Err(malformed(format!(
                "sequence length {len} exceeds {MAX_SEQ}"
            )));
        }
        Ok(len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut e = Enc::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_i64(-42);
        e.put_i32(-7);
        e.put_f64(-0.125);
        e.put_bool(true);
        e.put_usize(99);
        e.put_str("héllo");
        let mut d = Dec::new(&e.buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.i32().unwrap(), -7);
        assert_eq!(d.f64().unwrap(), -0.125);
        assert!(d.bool().unwrap());
        assert_eq!(d.usize_capped(1000).unwrap(), 99);
        assert_eq!(d.str().unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut e = Enc::new();
        e.put_u32(1);
        e.put_u8(0);
        let mut d = Dec::new(&e.buf);
        d.u32().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn truncation_and_caps_are_errors_not_panics() {
        let mut d = Dec::new(&[1, 2]);
        assert!(d.u32().is_err());
        // Oversized string length.
        let mut e = Enc::new();
        e.put_u32(MAX_STR + 1);
        assert!(Dec::new(&e.buf).str().is_err());
        // Oversized sequence length.
        let mut e = Enc::new();
        e.put_u32(MAX_SEQ + 1);
        assert!(Dec::new(&e.buf).seq().is_err());
        // Bad bool byte.
        assert!(Dec::new(&[9]).bool().is_err());
        // usize over cap.
        let mut e = Enc::new();
        e.put_u64(11);
        assert!(Dec::new(&e.buf).usize_capped(10).is_err());
    }

    #[test]
    fn depth_guard_trips_past_limit() {
        let mut d = Dec::new(&[]);
        for _ in 0..MAX_EXPR_DEPTH {
            d.descend().unwrap();
        }
        assert!(d.descend().is_err());
    }
}
