//! Fluent plan construction.
//!
//! The workload generator and the TPC-DS translation build thousands of
//! plans; [`PlanBuilder`] keeps that readable:
//!
//! ```
//! use scope_plan::{PlanBuilder, Expr, DataType, Schema, AggExpr, AggFunc};
//! use scope_common::ids::DatasetId;
//!
//! let mut b = PlanBuilder::new();
//! let scan = b.table_scan(
//!     DatasetId::new(7),
//!     "clicks/<date>/log.ss",
//!     Schema::from_pairs(&[("user", DataType::Int), ("lat", DataType::Float)]),
//! );
//! let filtered = b.filter(scan, Expr::col(1).gt(Expr::lit(0.0)));
//! let agg = b.aggregate(filtered, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
//! let graph = b.output(agg, "out/summary.ss").build().unwrap();
//! assert_eq!(graph.roots().len(), 1);
//! ```

use scope_common::ids::{DatasetId, NodeId};
use scope_common::intern::Symbol;
use scope_common::Result;

use crate::expr::{AggExpr, Expr, NamedExpr};
use crate::graph::QueryGraph;
use crate::op::{AggImpl, JoinImpl, JoinKind, Operator, ScanKind, WindowFunc};
use crate::props::{Partitioning, SortOrder};
use crate::schema::Schema;
use crate::udo::Udo;

/// Incrementally assembles a [`QueryGraph`].
///
/// All node-adding methods panic on plan-construction errors (wrong arity,
/// unknown children) — builders are used with static shapes where these are
/// programming errors; [`PlanBuilder::build`] still runs full validation and
/// returns `Result` for everything data-dependent (schemas).
#[derive(Default, Debug)]
pub struct PlanBuilder {
    graph: QueryGraph,
    roots: Vec<NodeId>,
}

impl PlanBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        PlanBuilder::default()
    }

    fn push(&mut self, op: Operator, children: Vec<NodeId>) -> NodeId {
        self.graph.add(op, children).expect("builder misuse")
    }

    /// Plain table scan.
    pub fn table_scan(
        &mut self,
        dataset: DatasetId,
        template_name: impl AsRef<str>,
        schema: Schema,
    ) -> NodeId {
        self.push(
            Operator::Get {
                dataset,
                template_name: Symbol::intern(template_name.as_ref()),
                schema,
                kind: ScanKind::Table,
                predicate: None,
                extractor: None,
            },
            vec![],
        )
    }

    /// Range-restricted scan (predicate pushed into the scan).
    pub fn range_scan(
        &mut self,
        dataset: DatasetId,
        template_name: impl AsRef<str>,
        schema: Schema,
        predicate: Expr,
    ) -> NodeId {
        self.push(
            Operator::Get {
                dataset,
                template_name: Symbol::intern(template_name.as_ref()),
                schema,
                kind: ScanKind::Range,
                predicate: Some(predicate),
                extractor: None,
            },
            vec![],
        )
    }

    /// Extractor scan through user code.
    pub fn extract(
        &mut self,
        dataset: DatasetId,
        template_name: impl AsRef<str>,
        schema: Schema,
        extractor: Udo,
    ) -> NodeId {
        self.push(
            Operator::Get {
                dataset,
                template_name: Symbol::intern(template_name.as_ref()),
                schema,
                kind: ScanKind::Extract,
                predicate: None,
                extractor: Some(extractor),
            },
            vec![],
        )
    }

    /// Row filter.
    pub fn filter(&mut self, input: NodeId, predicate: Expr) -> NodeId {
        self.push(Operator::Filter { predicate }, vec![input])
    }

    /// Projection with computed columns.
    pub fn project(&mut self, input: NodeId, exprs: Vec<NamedExpr>) -> NodeId {
        self.push(Operator::Project { exprs }, vec![input])
    }

    /// Column remap (select + rename).
    pub fn remap(&mut self, input: NodeId, cols: Vec<usize>, names: Vec<String>) -> NodeId {
        self.push(Operator::Remap { cols, names }, vec![input])
    }

    /// Sort.
    pub fn sort(&mut self, input: NodeId, order: SortOrder) -> NodeId {
        self.push(Operator::Sort { order }, vec![input])
    }

    /// Explicit exchange (the optimizer also inserts these as enforcers).
    pub fn exchange(&mut self, input: NodeId, scheme: Partitioning) -> NodeId {
        self.push(Operator::Exchange { scheme }, vec![input])
    }

    /// Group-by aggregate (implementation defaults to hash; the optimizer
    /// may switch to stream when the input is already sorted).
    pub fn aggregate(&mut self, input: NodeId, keys: Vec<usize>, aggs: Vec<AggExpr>) -> NodeId {
        self.push(
            Operator::Aggregate {
                keys,
                aggs,
                implementation: AggImpl::Hash,
            },
            vec![input],
        )
    }

    /// Top-N by order.
    pub fn top(&mut self, input: NodeId, n: usize, order: SortOrder) -> NodeId {
        self.push(Operator::Top { n, order }, vec![input])
    }

    /// Window function.
    pub fn window(
        &mut self,
        input: NodeId,
        func: WindowFunc,
        partition: Vec<usize>,
        order: SortOrder,
    ) -> NodeId {
        self.push(
            Operator::Window {
                func,
                partition,
                order,
            },
            vec![input],
        )
    }

    /// User-defined processor.
    pub fn process(&mut self, input: NodeId, udo: Udo) -> NodeId {
        self.push(Operator::Process { udo }, vec![input])
    }

    /// User-defined reducer on grouping keys.
    pub fn reduce(&mut self, input: NodeId, udo: Udo, keys: Vec<usize>) -> NodeId {
        self.push(Operator::Reduce { udo, keys }, vec![input])
    }

    /// Per-group apply.
    pub fn gb_apply(&mut self, input: NodeId, udo: Udo, keys: Vec<usize>) -> NodeId {
        self.push(Operator::GbApply { udo, keys }, vec![input])
    }

    /// Intra-job sharing point.
    pub fn spool(&mut self, input: NodeId) -> NodeId {
        self.push(Operator::Spool, vec![input])
    }

    /// No-op pass-through.
    pub fn nop(&mut self, input: NodeId) -> NodeId {
        self.push(Operator::Nop, vec![input])
    }

    /// Equality join (implementation defaults to hash).
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        kind: JoinKind,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
    ) -> NodeId {
        self.push(
            Operator::Join {
                kind,
                implementation: JoinImpl::Hash,
                left_keys,
                right_keys,
            },
            vec![left, right],
        )
    }

    /// Bag union.
    pub fn union_all(&mut self, inputs: Vec<NodeId>) -> NodeId {
        self.push(Operator::UnionAll, inputs)
    }

    /// User-defined binary combiner.
    pub fn combine(&mut self, left: NodeId, right: NodeId, udo: Udo) -> NodeId {
        self.push(Operator::Combine { udo }, vec![left, right])
    }

    /// Statement sequence.
    pub fn sequence(&mut self, inputs: Vec<NodeId>) -> NodeId {
        self.push(Operator::Sequence, inputs)
    }

    /// Terminal output; automatically registered as a root. Returns `self`
    /// for chaining multiple outputs.
    pub fn output(&mut self, input: NodeId, name: impl AsRef<str>) -> &mut Self {
        let id = self.push(
            Operator::Output {
                name: Symbol::intern(name.as_ref()),
                stored: false,
            },
            vec![input],
        );
        self.roots.push(id);
        self
    }

    /// Terminal stored-stream write; automatically registered as a root.
    pub fn write(&mut self, input: NodeId, name: impl AsRef<str>) -> &mut Self {
        let id = self.push(
            Operator::Output {
                name: Symbol::intern(name.as_ref()),
                stored: true,
            },
            vec![input],
        );
        self.roots.push(id);
        self
    }

    /// Finalizes and validates the graph.
    pub fn build(&mut self) -> Result<QueryGraph> {
        let mut g = std::mem::take(&mut self.graph);
        for r in self.roots.drain(..) {
            g.add_root(r)?;
        }
        g.validate()?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::AggFunc;
    use crate::types::DataType;

    fn clicks_schema() -> Schema {
        Schema::from_pairs(&[
            ("user", DataType::Int),
            ("url", DataType::Str),
            ("lat", DataType::Float),
        ])
    }

    #[test]
    fn multi_output_job() {
        let mut b = PlanBuilder::new();
        let scan = b.table_scan(DatasetId::new(1), "clicks", clicks_schema());
        let spool = b.spool(scan);
        let slow = b.filter(spool, Expr::col(2).gt(Expr::lit(1.0)));
        let agg = b.aggregate(spool, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        b.output(slow, "slow.ss");
        b.write(agg, "per_user.ss");
        let g = b.build().unwrap();
        assert_eq!(g.roots().len(), 2);
        assert_eq!(g.len(), 6);
    }

    #[test]
    fn join_pipeline() {
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", clicks_schema());
        let r = b.table_scan(DatasetId::new(2), "r", clicks_schema());
        let j = b.join(l, r, JoinKind::Inner, vec![0], vec![0]);
        let t = b.top(j, 10, SortOrder::asc(&[2]));
        b.output(t, "top.ss");
        let g = b.build().unwrap();
        assert_eq!(g.schema_of(j).unwrap().len(), 6);
        assert_eq!(g.roots().len(), 1);
    }

    #[test]
    fn build_rejects_bad_schema() {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", clicks_schema());
        // Filter referencing a missing column passes `add` (structure ok)
        // but fails validation in build().
        let f = b.filter(s, Expr::col(42).gt(Expr::lit(1i64)));
        b.output(f, "o");
        assert!(b.build().is_err());
    }

    #[test]
    #[should_panic(expected = "builder misuse")]
    fn builder_panics_on_bad_arity() {
        let mut b = PlanBuilder::new();
        b.union_all(vec![]); // UnionAll needs at least one input
    }

    #[test]
    fn doc_example_compiles() {
        // Mirrors the doc example to keep it honest.
        let mut b = PlanBuilder::new();
        let scan = b.table_scan(
            DatasetId::new(7),
            "clicks/<date>/log.ss",
            Schema::from_pairs(&[("user", DataType::Int), ("lat", DataType::Float)]),
        );
        let f = b.filter(scan, Expr::col(1).gt(Expr::lit(0.0)));
        let agg = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 0)]);
        let graph = b.output(agg, "out/summary.ss").build().unwrap();
        assert_eq!(graph.roots().len(), 1);
    }
}
