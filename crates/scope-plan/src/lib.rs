//! Query-plan representation for the SCOPE-like analytics engine.
//!
//! SCOPE jobs are DAGs of relational and user-defined operators. This crate
//! defines everything the rest of the workspace manipulates:
//!
//! * [`types`] — the value model ([`types::Value`], [`types::DataType`]) with
//!   the total ordering and hashing required by sort, group-by, and
//!   partitioning keys.
//! * [`schema`] — named, typed columns.
//! * [`expr`] — scalar and aggregate expressions, including
//!   [`expr::Expr::RecurringParam`], the plan-level marker for values that
//!   change between recurring instances (dates, run ids) and that signature
//!   normalization strips (paper Section 3).
//! * [`interval`] — conservative per-column interval extraction from
//!   conjunctive predicates, the foundation of the subsumption cascade's
//!   predicate-containment checks.
//! * [`udo`] — the synthetic library of deterministic user-defined operators
//!   (processors, reducers, combiners) standing in for SCOPE's C# user code.
//! * [`props`] — output physical properties (partitioning, sort order), the
//!   raw material for CloudViews' view physical design (paper Section 5.3).
//! * [`op`] — the operator algebra. Every one of the 26 operator kinds in the
//!   paper's Figure 4(a) is represented with real execution semantics.
//! * [`graph`] — the plan DAG ([`graph::QueryGraph`]), validation, traversal,
//!   and subgraph utilities.
//! * [`builder`] — a fluent API for assembling plans in workloads and tests.

pub mod builder;
pub mod expr;
pub mod graph;
pub mod interval;
pub mod op;
pub mod props;
pub mod schema;
pub mod types;
pub mod udo;

pub use builder::PlanBuilder;
pub use expr::{
    eval_binary, eval_func, AggExpr, AggFunc, BinOp, Expr, NamedExpr, ScalarFunc, UnaryOp,
};
pub use graph::{PlanNode, QueryGraph};
pub use interval::{column_intervals, implies, ColumnIntervals, Interval};
pub use op::{normalize_stream_name, normalize_stream_symbol};
pub use op::{JoinImpl, JoinKind, OpKind, Operator, ScanKind};
pub use props::{shared_props, Partitioning, PhysicalProps, SortDir, SortKey, SortOrder};
pub use schema::{Column, Schema};
pub use types::{DataType, Value};
pub use udo::{Udo, UdoKind};
