//! Scalar and aggregate expressions.
//!
//! Expressions evaluate row-at-a-time against a `&[Value]` input row. Two
//! details matter for the paper reproduction:
//!
//! * [`Expr::RecurringParam`] marks literals that change between recurring
//!   instances of a job (dates, run ids, window bounds). The *precise*
//!   signature hashes the parameter's current value; the *normalized*
//!   signature hashes only the parameter's name — this is exactly the
//!   normalization of paper Section 3.
//! * Every expression can feed itself into a stable hasher in either mode
//!   via [`Expr::stable_hash_into`].

use scope_common::hash::{sip64, SipHasher24};
use scope_common::{Result, ScopeError};

use crate::schema::Schema;
use crate::types::{DataType, Value};

/// How an expression should be hashed into a signature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HashMode {
    /// Include recurring parameter values (precise signature).
    Precise,
    /// Replace recurring parameter values by their names (normalized
    /// signature).
    Normalized,
}

/// Unary scalar operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// SQL `IS NULL`.
    IsNull,
}

/// Binary scalar operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum BinOp {
    /// Addition (numeric).
    Add,
    /// Subtraction (numeric).
    Sub,
    /// Multiplication (numeric).
    Mul,
    /// Division (numeric; x/0 is NULL).
    Div,
    /// Modulo (integer; x%0 is NULL).
    Mod,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Logical AND (NULL-safe: false AND x = false).
    And,
    /// Logical OR (NULL-safe: true OR x = true).
    Or,
}

/// Built-in scalar functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum ScalarFunc {
    /// Year component of a date (epoch-day / 365 for the synthetic calendar).
    Year,
    /// Month component of a date (1..=12 in the synthetic calendar).
    Month,
    /// String length.
    Len,
    /// Lowercase a string.
    Lower,
    /// Uppercase a string.
    Upper,
    /// First `n` characters: `substr(s, n)`.
    Prefix,
    /// Absolute value.
    Abs,
    /// Stable 64-bit hash of the argument (useful for sampling predicates).
    Hash64,
    /// String concatenation of all arguments.
    Concat,
    /// `if(cond, a, b)`.
    If,
    /// Minimum of two numerics.
    Least,
    /// Maximum of two numerics.
    Greatest,
}

impl ScalarFunc {
    fn name(self) -> &'static str {
        match self {
            ScalarFunc::Year => "year",
            ScalarFunc::Month => "month",
            ScalarFunc::Len => "len",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Prefix => "prefix",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Hash64 => "hash64",
            ScalarFunc::Concat => "concat",
            ScalarFunc::If => "if",
            ScalarFunc::Least => "least",
            ScalarFunc::Greatest => "greatest",
        }
    }
}

/// A scalar expression tree.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Expr {
    /// Reference to input column by position.
    Col(usize),
    /// Constant literal.
    Lit(Value),
    /// A literal that varies across recurring instances of the same job
    /// template. `name` is stable across instances ("@@startDate"), `value`
    /// is the per-instance binding.
    RecurringParam {
        /// Stable parameter name.
        name: String,
        /// Per-instance value.
        value: Value,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        child: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Built-in function call.
    Func {
        /// The function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(idx: usize) -> Expr {
        Expr::Col(idx)
    }

    /// Literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Recurring parameter (normalization strips `value`).
    pub fn param(name: impl Into<String>, v: impl Into<Value>) -> Expr {
        Expr::RecurringParam {
            name: name.into(),
            value: v.into(),
        }
    }

    /// `self == other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Lt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Le,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Gt,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Ge,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::And,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Or,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Add,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self * other`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// `self % other`.
    pub fn modulo(self, other: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Mod,
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Function call.
    pub fn func(func: ScalarFunc, args: Vec<Expr>) -> Expr {
        Expr::Func { func, args }
    }

    /// Evaluates against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            Expr::Col(i) => row.get(*i).cloned().ok_or_else(|| {
                ScopeError::Expression(format!("column {i} out of range (row width {})", row.len()))
            }),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::RecurringParam { value, .. } => Ok(value.clone()),
            Expr::Unary { op, child } => {
                let v = child.eval(row)?;
                Ok(match op {
                    UnaryOp::Not => match v {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(ScopeError::Expression(format!("NOT on {other}")));
                        }
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(ScopeError::Expression(format!("NEG on {other}")));
                        }
                    },
                    UnaryOp::IsNull => Value::Bool(v.is_null()),
                })
            }
            Expr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                // Short-circuit logic ops for NULL-safety.
                match op {
                    BinOp::And if l == Value::Bool(false) => return Ok(Value::Bool(false)),
                    BinOp::Or if l == Value::Bool(true) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = right.eval(row)?;
                eval_binary(*op, l, r)
            }
            Expr::Func { func, args } => {
                let vals: Result<Vec<Value>> = args.iter().map(|a| a.eval(row)).collect();
                eval_func(*func, &vals?)
            }
        }
    }

    /// Infers the output type given the input schema; used to derive
    /// operator output schemas. Returns the type NULL-agnostically.
    pub fn infer_type(&self, input: &Schema) -> Result<DataType> {
        match self {
            Expr::Col(i) => Ok(input.column(*i)?.dtype),
            Expr::Lit(v) | Expr::RecurringParam { value: v, .. } => {
                Ok(v.data_type().unwrap_or(DataType::Int))
            }
            Expr::Unary { op, child } => match op {
                UnaryOp::Not | UnaryOp::IsNull => Ok(DataType::Bool),
                UnaryOp::Neg => child.infer_type(input),
            },
            Expr::Binary { op, left, right } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let l = left.infer_type(input)?;
                    let r = right.infer_type(input)?;
                    if l == DataType::Float || r == DataType::Float || *op == BinOp::Div {
                        Ok(DataType::Float)
                    } else {
                        Ok(l)
                    }
                }
                _ => Ok(DataType::Bool),
            },
            Expr::Func { func, args } => match func {
                ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Len => Ok(DataType::Int),
                ScalarFunc::Hash64 => Ok(DataType::Int),
                ScalarFunc::Lower | ScalarFunc::Upper | ScalarFunc::Prefix | ScalarFunc::Concat => {
                    Ok(DataType::Str)
                }
                ScalarFunc::Abs | ScalarFunc::Least | ScalarFunc::Greatest => args
                    .first()
                    .map(|a| a.infer_type(input))
                    .unwrap_or(Ok(DataType::Float)),
                ScalarFunc::If => args
                    .get(1)
                    .map(|a| a.infer_type(input))
                    .unwrap_or(Ok(DataType::Int)),
            },
        }
    }

    /// Column indices referenced anywhere in the expression.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            Expr::Col(i) => out.push(*i),
            Expr::Lit(_) | Expr::RecurringParam { .. } => {}
            Expr::Unary { child, .. } => child.referenced_columns(out),
            Expr::Binary { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            Expr::Func { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// True when the expression contains a recurring parameter anywhere.
    pub fn has_recurring_param(&self) -> bool {
        match self {
            Expr::RecurringParam { .. } => true,
            Expr::Col(_) | Expr::Lit(_) => false,
            Expr::Unary { child, .. } => child.has_recurring_param(),
            Expr::Binary { left, right, .. } => {
                left.has_recurring_param() || right.has_recurring_param()
            }
            Expr::Func { args, .. } => args.iter().any(Expr::has_recurring_param),
        }
    }

    /// Feeds the expression into a stable hasher in the given mode.
    pub fn stable_hash_into(&self, h: &mut SipHasher24, mode: HashMode) {
        match self {
            Expr::Col(i) => {
                h.write_u8(1);
                h.write_u64(*i as u64);
            }
            Expr::Lit(v) => {
                h.write_u8(2);
                v.stable_hash_into(h);
            }
            Expr::RecurringParam { name, value } => {
                h.write_u8(3);
                h.write_str(name);
                if mode == HashMode::Precise {
                    value.stable_hash_into(h);
                }
            }
            Expr::Unary { op, child } => {
                h.write_u8(4);
                h.write_u8(*op as u8);
                child.stable_hash_into(h, mode);
            }
            Expr::Binary { op, left, right } => {
                h.write_u8(5);
                h.write_u8(*op as u8);
                left.stable_hash_into(h, mode);
                right.stable_hash_into(h, mode);
            }
            Expr::Func { func, args } => {
                h.write_u8(6);
                h.write_str(func.name());
                h.write_u64(args.len() as u64);
                for a in args {
                    a.stable_hash_into(h, mode);
                }
            }
        }
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer fast-path keeps int columns int.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.rem_euclid(*b))
                }
            }
            _ => unreachable!("arith called with non-arith op"),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(ScopeError::Expression(format!("arithmetic on {l} and {r}")));
        }
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a.rem_euclid(b))
            }
        }
        _ => unreachable!("arith called with non-arith op"),
    })
}

/// Applies a binary operator to two already-evaluated operands.
///
/// Public so vectorized evaluators can apply the exact same scalar
/// semantics element-wise; [`Expr::eval`] routes through this after its
/// short-circuit check, so per-element calls agree with row-at-a-time
/// evaluation bit for bit.
pub fn eval_binary(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        Add | Sub | Mul | Div | Mod => arith(op, &l, &r),
        Eq | Ne | Lt | Le | Gt | Ge => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.cmp(&r);
            Ok(Value::Bool(match op {
                Eq => ord.is_eq(),
                Ne => !ord.is_eq(),
                Lt => ord.is_lt(),
                Le => ord.is_le(),
                Gt => ord.is_gt(),
                Ge => ord.is_ge(),
                _ => unreachable!(),
            }))
        }
        And | Or => {
            let lb = match &l {
                Value::Null => None,
                Value::Bool(b) => Some(*b),
                other => {
                    return Err(ScopeError::Expression(format!("logic on {other}")));
                }
            };
            let rb = match &r {
                Value::Null => None,
                Value::Bool(b) => Some(*b),
                other => {
                    return Err(ScopeError::Expression(format!("logic on {other}")));
                }
            };
            Ok(match (op, lb, rb) {
                (And, Some(false), _) | (And, _, Some(false)) => Value::Bool(false),
                (And, Some(true), Some(true)) => Value::Bool(true),
                (Or, Some(true), _) | (Or, _, Some(true)) => Value::Bool(true),
                (Or, Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
    }
}

/// Applies a scalar function to already-evaluated arguments.
///
/// Public for the same reason as [`eval_binary`]: batch evaluators call it
/// per element to stay value- and error-identical with [`Expr::eval`].
pub fn eval_func(func: ScalarFunc, args: &[Value]) -> Result<Value> {
    let need = |n: usize| -> Result<()> {
        if args.len() != n {
            Err(ScopeError::Expression(format!(
                "{} expects {n} args, got {}",
                func.name(),
                args.len()
            )))
        } else {
            Ok(())
        }
    };
    match func {
        ScalarFunc::Year => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => Value::Int(v.as_i64().unwrap_or(0).div_euclid(365)),
            })
        }
        ScalarFunc::Month => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                v => Value::Int(v.as_i64().unwrap_or(0).rem_euclid(365) / 31 + 1),
            })
        }
        ScalarFunc::Len => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Int(s.len() as i64),
                other => {
                    return Err(ScopeError::Expression(format!("len on {other}")));
                }
            })
        }
        ScalarFunc::Lower | ScalarFunc::Upper => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Str(s) => Value::Str(if func == ScalarFunc::Lower {
                    s.to_lowercase()
                } else {
                    s.to_uppercase()
                }),
                other => {
                    return Err(ScopeError::Expression(format!("case on {other}")));
                }
            })
        }
        ScalarFunc::Prefix => {
            need(2)?;
            match (&args[0], &args[1]) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), n) => {
                    let n = n.as_i64().unwrap_or(0).max(0) as usize;
                    let cut = s.char_indices().nth(n).map(|(i, _)| i).unwrap_or(s.len());
                    Ok(Value::Str(s[..cut].to_string()))
                }
                (other, _) => Err(ScopeError::Expression(format!("prefix on {other}"))),
            }
        }
        ScalarFunc::Abs => {
            need(1)?;
            Ok(match &args[0] {
                Value::Null => Value::Null,
                Value::Int(i) => Value::Int(i.wrapping_abs()),
                Value::Float(f) => Value::Float(f.abs()),
                other => {
                    return Err(ScopeError::Expression(format!("abs on {other}")));
                }
            })
        }
        ScalarFunc::Hash64 => {
            need(1)?;
            let mut h = SipHasher24::new_with_keys(0x5ca1ab1e, 0xdeadbeef);
            args[0].stable_hash_into(&mut h);
            Ok(Value::Int((h.finish() >> 1) as i64))
        }
        ScalarFunc::Concat => {
            let mut out = String::new();
            for a in args {
                match a {
                    Value::Null => return Ok(Value::Null),
                    Value::Str(s) => out.push_str(s),
                    other => out.push_str(&other.to_string()),
                }
            }
            Ok(Value::Str(out))
        }
        ScalarFunc::If => {
            need(3)?;
            Ok(if args[0].is_true() {
                args[1].clone()
            } else {
                args[2].clone()
            })
        }
        ScalarFunc::Least | ScalarFunc::Greatest => {
            need(2)?;
            if args[0].is_null() || args[1].is_null() {
                return Ok(Value::Null);
            }
            let pick_first = (args[0] <= args[1]) == (func == ScalarFunc::Least);
            Ok(if pick_first {
                args[0].clone()
            } else {
                args[1].clone()
            })
        }
    }
}

/// A named output expression (one column of a `Project`).
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct NamedExpr {
    /// Output column name.
    pub name: String,
    /// The expression.
    pub expr: Expr,
}

impl NamedExpr {
    /// Builds a named expression.
    pub fn new(name: impl Into<String>, expr: Expr) -> Self {
        NamedExpr {
            name: name.into(),
            expr,
        }
    }
}

/// Aggregate functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum AggFunc {
    /// Row count (argument ignored).
    Count,
    /// Sum of a numeric column.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
    /// Count of distinct values.
    CountDistinct,
}

impl AggFunc {
    /// Lowercase name for signatures and display.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
            AggFunc::CountDistinct => "count_distinct",
        }
    }

    /// Output type given the input column type.
    pub fn output_type(self, input: DataType) -> DataType {
        match self {
            AggFunc::Count | AggFunc::CountDistinct => DataType::Int,
            AggFunc::Sum => input,
            AggFunc::Min | AggFunc::Max => input,
            AggFunc::Avg => DataType::Float,
        }
    }
}

/// One aggregate output column: `name = func(col)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct AggExpr {
    /// Output column name.
    pub name: String,
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column index (ignored by `Count`).
    pub input: usize,
}

impl AggExpr {
    /// Builds an aggregate expression.
    pub fn new(name: impl Into<String>, func: AggFunc, input: usize) -> Self {
        AggExpr {
            name: name.into(),
            func,
            input,
        }
    }

    /// Feeds into a stable hasher.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        h.write_str(&self.name);
        h.write_str(self.func.name());
        h.write_u64(self.input as u64);
    }
}

/// Stable 64-bit hash of a string (helper re-exported for workload tags).
pub fn str_hash(s: &str) -> u64 {
    sip64(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![
            Value::Int(10),
            Value::Str("Hello".into()),
            Value::Float(2.5),
            Value::Null,
            Value::Bool(true),
            Value::Date(730),
        ]
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(7i64).eval(&row()).unwrap(), Value::Int(7));
        assert!(Expr::col(99).eval(&row()).is_err());
    }

    #[test]
    fn arithmetic_int_and_float() {
        let e = Expr::col(0).add(Expr::lit(5i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(15));
        let e = Expr::col(2).mul(Expr::lit(2.0));
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(5.0));
        // int / int -> float
        let e = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(7i64)),
            right: Box::new(Expr::lit(2i64)),
        };
        assert_eq!(e.eval(&row()).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn division_by_zero_is_null() {
        let e = Expr::Binary {
            op: BinOp::Div,
            left: Box::new(Expr::lit(1i64)),
            right: Box::new(Expr::lit(0i64)),
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
        let e = Expr::lit(5i64).modulo(Expr::lit(0i64));
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn null_propagation() {
        let e = Expr::col(3).add(Expr::lit(1i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
        let e = Expr::col(3).eq(Expr::lit(1i64));
        assert_eq!(e.eval(&row()).unwrap(), Value::Null);
    }

    #[test]
    fn three_valued_logic() {
        let null = Expr::col(3);
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        assert_eq!(
            f.clone().and(null.clone()).eval(&row()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            t.clone().or(null.clone()).eval(&row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            t.clone().and(null.clone()).eval(&row()).unwrap(),
            Value::Null
        );
        assert_eq!(
            f.clone().or(null.clone()).eval(&row()).unwrap(),
            Value::Null
        );
        // Reversed operand order (no short-circuit path).
        assert_eq!(
            null.clone().and(f).eval(&row()).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(null.or(t).eval(&row()).unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            Expr::col(0).lt(Expr::lit(20i64)).eval(&row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col(1).eq(Expr::lit("Hello")).eval(&row()).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col(0).ge(Expr::lit(10i64)).eval(&row()).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn string_functions() {
        let e = Expr::func(ScalarFunc::Lower, vec![Expr::col(1)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("hello".into()));
        let e = Expr::func(ScalarFunc::Len, vec![Expr::col(1)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(5));
        let e = Expr::func(ScalarFunc::Prefix, vec![Expr::col(1), Expr::lit(2i64)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("He".into()));
        let e = Expr::func(ScalarFunc::Concat, vec![Expr::col(1), Expr::lit("!")]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Str("Hello!".into()));
    }

    #[test]
    fn date_functions() {
        let e = Expr::func(ScalarFunc::Year, vec![Expr::col(5)]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(2));
        let e = Expr::func(ScalarFunc::Month, vec![Expr::lit(Value::Date(0))]);
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(1));
    }

    #[test]
    fn if_least_greatest() {
        let e = Expr::func(
            ScalarFunc::If,
            vec![Expr::col(4), Expr::lit(1i64), Expr::lit(2i64)],
        );
        assert_eq!(e.eval(&row()).unwrap(), Value::Int(1));
        let e = Expr::func(ScalarFunc::Least, vec![Expr::lit(3i64), Expr::lit(5i64)]);
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(3));
        let e = Expr::func(ScalarFunc::Greatest, vec![Expr::lit(3i64), Expr::lit(5i64)]);
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(5));
    }

    #[test]
    fn hash64_deterministic_nonnegative() {
        let e = Expr::func(ScalarFunc::Hash64, vec![Expr::col(1)]);
        let v1 = e.eval(&row()).unwrap();
        let v2 = e.eval(&row()).unwrap();
        assert_eq!(v1, v2);
        assert!(v1.as_i64().unwrap() >= 0);
    }

    #[test]
    fn wrong_arity_errors() {
        let e = Expr::func(ScalarFunc::Len, vec![]);
        assert!(e.eval(&[]).is_err());
    }

    #[test]
    fn recurring_param_eval_and_hash() {
        let p1 = Expr::param("@@date", Value::Date(100));
        let p2 = Expr::param("@@date", Value::Date(200));
        assert_eq!(p1.eval(&[]).unwrap(), Value::Date(100));
        fn h(e: &Expr, mode: HashMode) -> u64 {
            let mut s = SipHasher24::new_with_keys(0, 0);
            e.stable_hash_into(&mut s, mode);
            s.finish()
        }
        // Precise signatures differ; normalized signatures agree.
        assert_ne!(h(&p1, HashMode::Precise), h(&p2, HashMode::Precise));
        assert_eq!(h(&p1, HashMode::Normalized), h(&p2, HashMode::Normalized));
        // Different parameter names stay distinct even normalized.
        let p3 = Expr::param("@@otherDate", Value::Date(100));
        assert_ne!(h(&p1, HashMode::Normalized), h(&p3, HashMode::Normalized));
        assert!(p1.has_recurring_param());
        assert!(!Expr::lit(1i64).has_recurring_param());
    }

    #[test]
    fn referenced_columns_collects() {
        let e = Expr::col(1)
            .add(Expr::col(3))
            .and(Expr::col(1).eq(Expr::lit(0i64)));
        let mut cols = Vec::new();
        e.referenced_columns(&mut cols);
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn type_inference() {
        let s = Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("f", DataType::Float),
        ]);
        assert_eq!(Expr::col(0).infer_type(&s).unwrap(), DataType::Int);
        assert_eq!(
            Expr::col(0).add(Expr::col(2)).infer_type(&s).unwrap(),
            DataType::Float
        );
        assert_eq!(
            Expr::col(0).lt(Expr::lit(1i64)).infer_type(&s).unwrap(),
            DataType::Bool
        );
        assert_eq!(
            Expr::func(ScalarFunc::Lower, vec![Expr::col(1)])
                .infer_type(&s)
                .unwrap(),
            DataType::Str
        );
    }

    #[test]
    fn agg_output_types() {
        assert_eq!(AggFunc::Count.output_type(DataType::Str), DataType::Int);
        assert_eq!(AggFunc::Sum.output_type(DataType::Float), DataType::Float);
        assert_eq!(AggFunc::Avg.output_type(DataType::Int), DataType::Float);
        assert_eq!(AggFunc::Min.output_type(DataType::Str), DataType::Str);
    }
}
