//! Per-column interval extraction from filter predicates.
//!
//! The subsumption cascade (ISSUE 6, GEqO-style tier-2 matching) needs to
//! decide whether one filter predicate *implies* another — e.g. a view
//! filtered on `date >= X` serves any query asking for a tighter range.
//! Full predicate implication is undecidable in general, so this module
//! implements the sound, conservative fragment that covers the recurring
//! date/range predicates of the paper's workloads:
//!
//! * a predicate is **eligible** when it is a conjunction (`AND` tree) of
//!   comparisons between a column and a constant (`Lit` or the bound value
//!   of a `RecurringParam`), with operators `=`, `<`, `<=`, `>`, `>=`;
//! * each eligible predicate abstracts to one [`Interval`] per referenced
//!   column; everything else (disjunctions, `!=`, arithmetic, functions,
//!   column-column comparisons) makes extraction return `None` and the
//!   caller must fall back to exact matching.
//!
//! Comparisons use [`Value`]'s total order — the same order
//! `Expr::eval` uses for comparison operators, so the abstraction agrees
//! with execution semantics. NULL handling is inherited: a NULL column makes
//! every conjunct non-true, so a row with NULL in any constrained column is
//! dropped by *both* predicates whenever [`implies`] holds (the implied
//! predicate's columns are a subset of the implying one's).

use std::collections::BTreeMap;

use crate::expr::{BinOp, Expr};
use crate::types::Value;

/// A one-dimensional interval over [`Value`]'s total order. `None` bounds
/// are unbounded; the `bool` is `true` for an inclusive endpoint.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Interval {
    /// Lower bound (value, inclusive).
    pub lo: Option<(Value, bool)>,
    /// Upper bound (value, inclusive).
    pub hi: Option<(Value, bool)>,
}

impl Interval {
    /// The unbounded interval.
    pub fn all() -> Interval {
        Interval::default()
    }

    /// Tightens the lower bound to at least `(v, incl)`.
    fn meet_lo(&mut self, v: Value, incl: bool) {
        let tighter = match &self.lo {
            None => true,
            Some((cur, cur_incl)) => v > *cur || (v == *cur && *cur_incl && !incl),
        };
        if tighter {
            self.lo = Some((v, incl));
        }
    }

    /// Tightens the upper bound to at most `(v, incl)`.
    fn meet_hi(&mut self, v: Value, incl: bool) {
        let tighter = match &self.hi {
            None => true,
            Some((cur, cur_incl)) => v < *cur || (v == *cur && *cur_incl && !incl),
        };
        if tighter {
            self.hi = Some((v, incl));
        }
    }

    /// True when `self` contains every point of `other` (`other ⊆ self`).
    pub fn contains(&self, other: &Interval) -> bool {
        let lo_ok = match (&self.lo, &other.lo) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, a_incl)), Some((b, b_incl))) => a < b || (a == b && (*a_incl || !*b_incl)),
        };
        let hi_ok = match (&self.hi, &other.hi) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some((a, a_incl)), Some((b, b_incl))) => a > b || (a == b && (*a_incl || !*b_incl)),
        };
        lo_ok && hi_ok
    }
}

/// The per-column interval abstraction of a conjunctive predicate.
pub type ColumnIntervals = BTreeMap<usize, Interval>;

/// One side of an eligible comparison: which operand is the column.
fn as_col_const(left: &Expr, right: &Expr) -> Option<(usize, Value, bool)> {
    let constant = |e: &Expr| -> Option<Value> {
        match e {
            Expr::Lit(v) => Some(v.clone()),
            Expr::RecurringParam { value, .. } => Some(value.clone()),
            _ => None,
        }
    };
    match (left, right) {
        (Expr::Col(c), rhs) => constant(rhs).map(|v| (*c, v, false)),
        (lhs, Expr::Col(c)) => constant(lhs).map(|v| (*c, v, true)),
        _ => None,
    }
}

/// Extracts the per-column intervals of a conjunctive comparison predicate,
/// or `None` when any conjunct falls outside the eligible fragment.
pub fn column_intervals(pred: &Expr) -> Option<ColumnIntervals> {
    let mut out = ColumnIntervals::new();
    collect(pred, &mut out).then_some(out)
}

fn collect(pred: &Expr, out: &mut ColumnIntervals) -> bool {
    match pred {
        Expr::Binary {
            op: BinOp::And,
            left,
            right,
        } => collect(left, out) && collect(right, out),
        Expr::Binary { op, left, right } => {
            let (col, v, flipped) = match as_col_const(left, right) {
                Some(t) => t,
                None => return false,
            };
            if v.is_null() {
                // `col OP NULL` never evaluates true; refuse rather than
                // model an empty interval.
                return false;
            }
            // When the constant is on the left (`10 <= col`), mirror the
            // operator so it reads `col >= 10`.
            let op = if flipped { mirror(*op) } else { *op };
            let iv = out.entry(col).or_default();
            match op {
                BinOp::Eq => {
                    iv.meet_lo(v.clone(), true);
                    iv.meet_hi(v, true);
                }
                BinOp::Lt => iv.meet_hi(v, false),
                BinOp::Le => iv.meet_hi(v, true),
                BinOp::Gt => iv.meet_lo(v, false),
                BinOp::Ge => iv.meet_lo(v, true),
                _ => return false,
            }
            true
        }
        _ => false,
    }
}

fn mirror(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// True when predicate `q` (abstracted as `q_ivs`) implies predicate `v`
/// (abstracted as `v_ivs`): every row satisfying `q` satisfies `v`, so a
/// view filtered by `v` contains every row a query filtered by `q` needs.
///
/// Soundness requires every column `v` constrains to also be constrained by
/// `q` with an interval `v` contains; columns only `q` constrains tighten
/// the query further and are harmless.
pub fn implies(q_ivs: &ColumnIntervals, v_ivs: &ColumnIntervals) -> bool {
    v_ivs
        .iter()
        .all(|(col, v_iv)| q_ivs.get(col).is_some_and(|q_iv| v_iv.contains(q_iv)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn date(d: i32) -> Expr {
        Expr::lit(Value::Date(d))
    }

    #[test]
    fn simple_range_extraction() {
        let p = Expr::col(2).ge(date(100)).and(Expr::col(2).lt(date(200)));
        let ivs = column_intervals(&p).unwrap();
        assert_eq!(ivs.len(), 1);
        let iv = &ivs[&2];
        assert_eq!(iv.lo, Some((Value::Date(100), true)));
        assert_eq!(iv.hi, Some((Value::Date(200), false)));
    }

    #[test]
    fn constant_on_left_mirrors() {
        let p = Expr::Binary {
            op: BinOp::Le,
            left: Box::new(date(100)),
            right: Box::new(Expr::col(0)),
        };
        let ivs = column_intervals(&p).unwrap();
        assert_eq!(ivs[&0].lo, Some((Value::Date(100), true)));
        assert_eq!(ivs[&0].hi, None);
    }

    #[test]
    fn equality_pins_both_bounds() {
        let p = Expr::col(1).eq(Expr::lit(7i64));
        let ivs = column_intervals(&p).unwrap();
        assert_eq!(ivs[&1].lo, Some((Value::Int(7), true)));
        assert_eq!(ivs[&1].hi, Some((Value::Int(7), true)));
    }

    #[test]
    fn recurring_param_uses_bound_value() {
        let p = Expr::col(0).ge(Expr::param("@@start", Value::Date(42)));
        let ivs = column_intervals(&p).unwrap();
        assert_eq!(ivs[&0].lo, Some((Value::Date(42), true)));
    }

    #[test]
    fn ineligible_shapes_reject() {
        // Disjunction.
        assert!(column_intervals(&Expr::col(0).ge(date(1)).or(Expr::col(0).lt(date(0)))).is_none());
        // Not-equal.
        let ne = Expr::Binary {
            op: BinOp::Ne,
            left: Box::new(Expr::col(0)),
            right: Box::new(date(1)),
        };
        assert!(column_intervals(&ne).is_none());
        // Column-column comparison.
        assert!(column_intervals(&Expr::col(0).lt(Expr::col(1))).is_none());
        // Arithmetic operand.
        assert!(column_intervals(&Expr::col(0).add(Expr::lit(1i64)).lt(date(9))).is_none());
        // NULL constant.
        assert!(column_intervals(&Expr::col(0).eq(Expr::lit(Value::Null))).is_none());
    }

    #[test]
    fn repeated_conjuncts_intersect() {
        let p = Expr::col(0)
            .ge(date(10))
            .and(Expr::col(0).ge(date(50)))
            .and(Expr::col(0).gt(date(50)));
        let ivs = column_intervals(&p).unwrap();
        // Strict > at the same endpoint is tighter than >=.
        assert_eq!(ivs[&0].lo, Some((Value::Date(50), false)));
    }

    #[test]
    fn containment_and_implication() {
        let wide = column_intervals(&Expr::col(0).ge(date(0))).unwrap();
        let tight =
            column_intervals(&Expr::col(0).ge(date(10)).and(Expr::col(0).lt(date(20)))).unwrap();
        assert!(implies(&tight, &wide), "tight range implies wide range");
        assert!(!implies(&wide, &tight));
        // Same endpoints, inclusivity matters.
        let ge = column_intervals(&Expr::col(0).ge(date(10))).unwrap();
        let gt = column_intervals(&Expr::col(0).gt(date(10))).unwrap();
        assert!(implies(&gt, &ge));
        assert!(!implies(&ge, &gt));
        // Extra query-side constraints are harmless.
        let extra =
            column_intervals(&Expr::col(0).ge(date(10)).and(Expr::col(1).eq(date(3)))).unwrap();
        assert!(implies(&extra, &wide));
        // View constrains a column the query leaves free: no implication.
        let other_col = column_intervals(&Expr::col(9).ge(date(0))).unwrap();
        assert!(!implies(&wide, &other_col));
    }

    #[test]
    fn trivial_implication_of_empty_view_predicate() {
        let q = column_intervals(&Expr::col(0).ge(date(10))).unwrap();
        assert!(implies(&q, &ColumnIntervals::new()));
    }
}
