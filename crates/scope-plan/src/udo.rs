//! Synthetic user-defined operators (UDOs).
//!
//! SCOPE scripts are full of C# user code: row processors, reducers, and
//! combiners, typically shipped as shared libraries across teams. User code
//! matters to CloudViews in two ways (paper Sections 1.3 and 3):
//!
//! 1. its presence makes optimizer cost estimates unreliable — motivating
//!    the feedback loop, and
//! 2. the *precise* signature must include the identity **and version** of
//!    every piece of user code and every external library, because two
//!    subgraphs are only safely interchangeable when the user code is
//!    byte-identical.
//!
//! We stand in for arbitrary C# with a closed library of deterministic
//! operators ([`UdoKind`]), each tagged with a library name and version
//! string that participates in precise signatures. Bumping the version
//! changes the precise signature without changing behaviour — exactly the
//! situation where CloudViews must refuse to reuse a stale view.

use scope_common::hash::SipHasher24;

use crate::schema::{Column, Schema};
use crate::types::{DataType, Value};
use scope_common::{Result, ScopeError};

/// The behaviour of a user-defined operator.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum UdoKind {
    /// Processor: splits the string in `col` on whitespace, emitting one
    /// output row per token (all original columns + a `token` column).
    Tokenize {
        /// Input column holding the text.
        col: usize,
    },
    /// Processor: clamps the numeric column `col` into `[lo, hi]`.
    ClampOutliers {
        /// Column to clamp.
        col: usize,
        /// Lower bound (as integer; applied numerically).
        lo: i64,
        /// Upper bound.
        hi: i64,
    },
    /// Processor: appends a deterministic pseudo-model score in `[0,1)`
    /// computed from the hash of the listed feature columns.
    ScoreModel {
        /// Feature columns.
        cols: Vec<usize>,
        /// Model seed (a "model version" knob).
        seed: u64,
    },
    /// Reducer: within each group (grouping keys handled by the `Reduce`
    /// operator), keeps rows whose numeric column `col` is within the
    /// group's observed `[min + gap, max - gap]` band — a toy sessionizer /
    /// outlier-trimmer whose output depends on the whole group.
    TrimBand {
        /// Numeric column examined.
        col: usize,
        /// Band margin.
        gap: i64,
    },
    /// Reducer: emits one row per group with the group's row count appended
    /// (a user-coded aggregate that the engine cannot see through).
    CountRows,
    /// Combiner (binary): concatenates left and right rows positionally
    /// after sorting both sides by column 0 — a toy "merge streams" UDO.
    MergeStreams,
    /// Per-group apply (GbApply): keeps the top `n` rows of each group by
    /// column `col` descending.
    TopPerGroup {
        /// Ranking column.
        col: usize,
        /// Rows kept per group.
        n: usize,
    },
}

impl UdoKind {
    /// Short name for display and signatures.
    pub fn name(&self) -> &'static str {
        match self {
            UdoKind::Tokenize { .. } => "tokenize",
            UdoKind::ClampOutliers { .. } => "clamp_outliers",
            UdoKind::ScoreModel { .. } => "score_model",
            UdoKind::TrimBand { .. } => "trim_band",
            UdoKind::CountRows => "count_rows",
            UdoKind::MergeStreams => "merge_streams",
            UdoKind::TopPerGroup { .. } => "top_per_group",
        }
    }

    /// Relative CPU weight of this UDO per input row; user code is usually
    /// much more expensive than built-in operators, and the cost model uses
    /// this to reflect that.
    pub fn cost_weight(&self) -> f64 {
        match self {
            UdoKind::Tokenize { .. } => 4.0,
            UdoKind::ClampOutliers { .. } => 1.5,
            UdoKind::ScoreModel { .. } => 8.0,
            UdoKind::TrimBand { .. } => 3.0,
            UdoKind::CountRows => 1.0,
            UdoKind::MergeStreams => 2.0,
            UdoKind::TopPerGroup { .. } => 2.5,
        }
    }
}

/// A user-defined operator instance: behaviour + provenance.
///
/// `library` and `version` model the external assembly the user code ships
/// in; both are part of the precise signature (paper Section 3: "we extended
/// the precise signature to further include ... any user code, as well as any
/// external libraries used for custom code").
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct Udo {
    /// The operator behaviour.
    pub kind: UdoKind,
    /// Owning library/assembly name, e.g. `"Contoso.TextUtils"`.
    pub library: String,
    /// Library version, e.g. `"1.4.2"`.
    pub version: String,
}

impl Udo {
    /// Builds a UDO instance.
    pub fn new(kind: UdoKind, library: impl Into<String>, version: impl Into<String>) -> Self {
        Udo {
            kind: kind.clone(),
            library: library.into(),
            version: version.into(),
        }
    }

    /// Output schema of the UDO given its input schema.
    pub fn output_schema(&self, input: &Schema) -> Result<Schema> {
        match &self.kind {
            UdoKind::Tokenize { col } => {
                let c = input.column(*col)?;
                if c.dtype != DataType::Str {
                    return Err(ScopeError::InvalidPlan(format!(
                        "tokenize needs a str column, got {}",
                        c.dtype
                    )));
                }
                let mut cols = input.columns().to_vec();
                cols.push(Column::new("token", DataType::Str));
                Schema::new(cols)
            }
            UdoKind::ClampOutliers { col, .. } | UdoKind::TrimBand { col, .. } => {
                input.column(*col)?;
                Ok(input.clone())
            }
            UdoKind::ScoreModel { cols, .. } => {
                for c in cols {
                    input.column(*c)?;
                }
                let mut out = input.columns().to_vec();
                out.push(Column::new("score", DataType::Float));
                Schema::new(out)
            }
            UdoKind::CountRows => {
                let mut out = input.columns().to_vec();
                out.push(Column::new("group_rows", DataType::Int));
                Schema::new(out)
            }
            UdoKind::MergeStreams => Ok(input.clone()),
            UdoKind::TopPerGroup { col, .. } => {
                input.column(*col)?;
                Ok(input.clone())
            }
        }
    }

    /// Feeds the UDO into a stable hasher. `include_version` distinguishes
    /// precise (true) from normalized (also true — a version bump is NOT a
    /// recurring delta, it is a code change; both signatures include it).
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        h.write_str(self.kind.name());
        h.write_str(&self.library);
        h.write_str(&self.version);
        // Parameters of the behaviour are part of both signatures.
        match &self.kind {
            UdoKind::Tokenize { col } => h.write_u64(*col as u64),
            UdoKind::ClampOutliers { col, lo, hi } => {
                h.write_u64(*col as u64);
                h.write_u64(*lo as u64);
                h.write_u64(*hi as u64);
            }
            UdoKind::ScoreModel { cols, seed } => {
                h.write_u64(cols.len() as u64);
                for c in cols {
                    h.write_u64(*c as u64);
                }
                h.write_u64(*seed);
            }
            UdoKind::TrimBand { col, gap } => {
                h.write_u64(*col as u64);
                h.write_u64(*gap as u64);
            }
            UdoKind::CountRows | UdoKind::MergeStreams => {}
            UdoKind::TopPerGroup { col, n } => {
                h.write_u64(*col as u64);
                h.write_u64(*n as u64);
            }
        }
    }

    /// Executes the UDO as a *processor* over one input row, appending
    /// output rows to `out`. Only valid for processor kinds.
    pub fn process_row(&self, row: &[Value], out: &mut Vec<Vec<Value>>) -> Result<()> {
        match &self.kind {
            UdoKind::Tokenize { col } => {
                let text = match &row[*col] {
                    Value::Str(s) => s.clone(),
                    Value::Null => return Ok(()),
                    other => {
                        return Err(ScopeError::Execution(format!("tokenize on {other}")));
                    }
                };
                for token in text.split_whitespace() {
                    let mut r = row.to_vec();
                    r.push(Value::Str(token.to_string()));
                    out.push(r);
                }
                Ok(())
            }
            UdoKind::ClampOutliers { col, lo, hi } => {
                let mut r = row.to_vec();
                if let Some(v) = r[*col].as_f64() {
                    let clamped = v.clamp(*lo as f64, *hi as f64);
                    r[*col] = match &r[*col] {
                        Value::Int(_) => Value::Int(clamped as i64),
                        _ => Value::Float(clamped),
                    };
                }
                out.push(r);
                Ok(())
            }
            UdoKind::ScoreModel { cols, seed } => {
                let mut h = SipHasher24::new_with_keys(*seed, !*seed);
                for c in cols {
                    row[*c].stable_hash_into(&mut h);
                }
                let score = (h.finish() >> 11) as f64 / (1u64 << 53) as f64;
                let mut r = row.to_vec();
                r.push(Value::Float(score));
                out.push(r);
                Ok(())
            }
            other => Err(ScopeError::Execution(format!(
                "{} is not a row processor",
                other.name()
            ))),
        }
    }

    /// Executes the UDO as a *reducer/apply* over one whole group of rows.
    /// Only valid for group-wise kinds.
    pub fn reduce_group(&self, group: &[Vec<Value>], out: &mut Vec<Vec<Value>>) -> Result<()> {
        match &self.kind {
            UdoKind::TrimBand { col, gap } => {
                let vals: Vec<f64> = group.iter().filter_map(|r| r[*col].as_f64()).collect();
                if vals.is_empty() {
                    return Ok(());
                }
                let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let (lo, hi) = (min + *gap as f64, max - *gap as f64);
                for r in group {
                    if let Some(v) = r[*col].as_f64() {
                        if v >= lo && v <= hi {
                            out.push(r.clone());
                        }
                    }
                }
                Ok(())
            }
            UdoKind::CountRows => {
                // Deterministic representative: the lexicographically
                // smallest row of the group (not "the first", which would
                // depend on physical arrival order).
                if let Some(rep) = group.iter().min() {
                    let mut r = rep.clone();
                    r.push(Value::Int(group.len() as i64));
                    out.push(r);
                }
                Ok(())
            }
            UdoKind::TopPerGroup { col, n } => {
                let mut rows: Vec<&Vec<Value>> = group.iter().collect();
                // Ties broken by full-row order for determinism.
                rows.sort_by(|a, b| b[*col].cmp(&a[*col]).then_with(|| a.cmp(b)));
                for r in rows.into_iter().take(*n) {
                    out.push(r.clone());
                }
                Ok(())
            }
            other => Err(ScopeError::Execution(format!(
                "{} is not a group reducer",
                other.name()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn text_schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int), ("text", DataType::Str)])
    }

    #[test]
    fn tokenize_schema_and_rows() {
        let udo = Udo::new(UdoKind::Tokenize { col: 1 }, "Contoso.Text", "1.0.0");
        let out_schema = udo.output_schema(&text_schema()).unwrap();
        assert_eq!(out_schema.len(), 3);
        assert_eq!(out_schema.column(2).unwrap().name, "token");

        let mut out = Vec::new();
        udo.process_row(&[Value::Int(1), Value::Str("a b  c".into())], &mut out)
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2][2], Value::Str("c".into()));
        // NULL text produces no rows (and no error).
        udo.process_row(&[Value::Int(2), Value::Null], &mut out)
            .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn tokenize_rejects_non_string_column() {
        let udo = Udo::new(UdoKind::Tokenize { col: 0 }, "L", "1");
        assert!(udo.output_schema(&text_schema()).is_err());
    }

    #[test]
    fn clamp() {
        let udo = Udo::new(
            UdoKind::ClampOutliers {
                col: 0,
                lo: 0,
                hi: 10,
            },
            "L",
            "1",
        );
        let mut out = Vec::new();
        udo.process_row(&[Value::Int(-5)], &mut out).unwrap();
        udo.process_row(&[Value::Int(5)], &mut out).unwrap();
        udo.process_row(&[Value::Int(500)], &mut out).unwrap();
        assert_eq!(out[0][0], Value::Int(0));
        assert_eq!(out[1][0], Value::Int(5));
        assert_eq!(out[2][0], Value::Int(10));
    }

    #[test]
    fn score_model_is_deterministic_and_seed_sensitive() {
        let u1 = Udo::new(
            UdoKind::ScoreModel {
                cols: vec![0],
                seed: 1,
            },
            "ML",
            "2.0",
        );
        let u2 = Udo::new(
            UdoKind::ScoreModel {
                cols: vec![0],
                seed: 2,
            },
            "ML",
            "2.0",
        );
        let row = vec![Value::Int(42)];
        let mut o1 = Vec::new();
        let mut o1b = Vec::new();
        let mut o2 = Vec::new();
        u1.process_row(&row, &mut o1).unwrap();
        u1.process_row(&row, &mut o1b).unwrap();
        u2.process_row(&row, &mut o2).unwrap();
        assert_eq!(o1, o1b);
        assert_ne!(o1, o2);
        let score = o1[0][1].as_f64().unwrap();
        assert!((0.0..1.0).contains(&score));
    }

    #[test]
    fn trim_band_reducer() {
        let udo = Udo::new(UdoKind::TrimBand { col: 0, gap: 1 }, "L", "1");
        let group: Vec<Vec<Value>> = (0..=10).map(|i| vec![Value::Int(i)]).collect();
        let mut out = Vec::new();
        udo.reduce_group(&group, &mut out).unwrap();
        // Band is [0+1, 10-1] = [1, 9] -> 9 rows survive.
        assert_eq!(out.len(), 9);
    }

    #[test]
    fn count_rows_reducer() {
        let udo = Udo::new(UdoKind::CountRows, "L", "1");
        let group = vec![
            vec![Value::Int(7)],
            vec![Value::Int(7)],
            vec![Value::Int(7)],
        ];
        let mut out = Vec::new();
        udo.reduce_group(&group, &mut out).unwrap();
        assert_eq!(out, vec![vec![Value::Int(7), Value::Int(3)]]);
        // Empty group emits nothing.
        let mut out2 = Vec::new();
        udo.reduce_group(&[], &mut out2).unwrap();
        assert!(out2.is_empty());
    }

    #[test]
    fn top_per_group() {
        let udo = Udo::new(UdoKind::TopPerGroup { col: 0, n: 2 }, "L", "1");
        let group: Vec<Vec<Value>> = [3i64, 1, 4, 1, 5]
            .iter()
            .map(|&i| vec![Value::Int(i)])
            .collect();
        let mut out = Vec::new();
        udo.reduce_group(&group, &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0][0], Value::Int(5));
        assert_eq!(out[1][0], Value::Int(4));
    }

    #[test]
    fn kind_mismatch_errors() {
        let reducer = Udo::new(UdoKind::CountRows, "L", "1");
        assert!(reducer
            .process_row(&[Value::Int(1)], &mut Vec::new())
            .is_err());
        let processor = Udo::new(UdoKind::Tokenize { col: 0 }, "L", "1");
        assert!(processor.reduce_group(&[], &mut Vec::new()).is_err());
    }

    #[test]
    fn version_changes_signature() {
        fn h(u: &Udo) -> u64 {
            let mut s = SipHasher24::new_with_keys(0, 0);
            u.stable_hash_into(&mut s);
            s.finish()
        }
        let v1 = Udo::new(UdoKind::CountRows, "Lib", "1.0.0");
        let v2 = Udo::new(UdoKind::CountRows, "Lib", "1.0.1");
        let other_lib = Udo::new(UdoKind::CountRows, "Lib2", "1.0.0");
        assert_ne!(h(&v1), h(&v2));
        assert_ne!(h(&v1), h(&other_lib));
        assert_eq!(h(&v1), h(&v1.clone()));
    }

    #[test]
    fn cost_weights_positive() {
        for k in [
            UdoKind::Tokenize { col: 0 },
            UdoKind::ClampOutliers {
                col: 0,
                lo: 0,
                hi: 1,
            },
            UdoKind::ScoreModel {
                cols: vec![],
                seed: 0,
            },
            UdoKind::TrimBand { col: 0, gap: 0 },
            UdoKind::CountRows,
            UdoKind::MergeStreams,
            UdoKind::TopPerGroup { col: 0, n: 1 },
        ] {
            assert!(k.cost_weight() > 0.0, "{}", k.name());
        }
    }
}
