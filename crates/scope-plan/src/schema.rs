//! Schemas: ordered lists of named, typed columns.

use std::fmt;

use scope_common::hash::SipHasher24;
use scope_common::{Result, ScopeError};

use crate::types::DataType;

/// A single named, typed column.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Column type.
    pub dtype: DataType,
}

impl Column {
    /// Builds a column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.name, self.dtype)
    }
}

/// An ordered list of columns.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// An empty schema (used by operators with no columnar output, e.g.
    /// `Output`).
    pub fn empty() -> Self {
        Schema {
            columns: Vec::new(),
        }
    }

    /// Builds a schema from columns; duplicate names are rejected.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(ScopeError::InvalidPlan(format!(
                    "duplicate column name `{}` in schema",
                    c.name
                )));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Self {
        Schema::new(pairs.iter().map(|(n, t)| Column::new(*n, *t)).collect())
            .expect("from_pairs callers use unique names")
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at `idx`, or an error naming the failure.
    pub fn column(&self, idx: usize) -> Result<&Column> {
        self.columns.get(idx).ok_or_else(|| {
            ScopeError::InvalidPlan(format!(
                "column index {idx} out of range for schema of width {}",
                self.columns.len()
            ))
        })
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| ScopeError::InvalidPlan(format!("unknown column `{name}`")))
    }

    /// True when `other` has the same column types in the same order
    /// (names may differ — SCOPE's RestrRemap renames freely).
    pub fn types_match(&self, other: &Schema) -> bool {
        self.columns.len() == other.columns.len()
            && self
                .columns
                .iter()
                .zip(&other.columns)
                .all(|(a, b)| a.dtype == b.dtype)
    }

    /// Concatenates two schemas (join output), disambiguating duplicate
    /// names with a `r_` prefix.
    pub fn concat(&self, right: &Schema) -> Schema {
        let mut cols = self.columns.clone();
        for c in &right.columns {
            let name = if cols.iter().any(|p| p.name == c.name) {
                format!("r_{}", c.name)
            } else {
                c.name.clone()
            };
            cols.push(Column::new(name, c.dtype));
        }
        Schema { columns: cols }
    }

    /// Feeds the schema into a stable hasher; part of every signature so
    /// that a view's stored schema is pinned by its signature.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        h.write_u64(self.columns.len() as u64);
        for c in &self.columns {
            h.write_str(&c.name);
            h.write_str(c.dtype.name());
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::from_pairs(&[
            ("a", DataType::Int),
            ("b", DataType::Str),
            ("c", DataType::Float),
        ])
    }

    #[test]
    fn lookup() {
        let s = abc();
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(s.index_of("z").is_err());
        assert_eq!(s.column(2).unwrap().name, "c");
        assert!(s.column(3).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::new(vec![
            Column::new("x", DataType::Int),
            Column::new("x", DataType::Str),
        ])
        .unwrap_err();
        assert_eq!(err.kind(), "invalid_plan");
    }

    #[test]
    fn types_match_ignores_names() {
        let s1 = abc();
        let s2 = Schema::from_pairs(&[
            ("x", DataType::Int),
            ("y", DataType::Str),
            ("z", DataType::Float),
        ]);
        assert!(s1.types_match(&s2));
        let s3 = Schema::from_pairs(&[("x", DataType::Int)]);
        assert!(!s1.types_match(&s3));
    }

    #[test]
    fn concat_disambiguates() {
        let s = abc().concat(&Schema::from_pairs(&[
            ("a", DataType::Int),
            ("d", DataType::Bool),
        ]));
        let names: Vec<_> = s.columns().iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c", "r_a", "d"]);
    }

    #[test]
    fn display() {
        assert_eq!(abc().to_string(), "(a:int, b:str, c:float)");
        assert_eq!(Schema::empty().to_string(), "()");
    }

    #[test]
    fn stable_hash_differs_on_rename() {
        use scope_common::hash::SipHasher24;
        fn h(s: &Schema) -> u64 {
            let mut x = SipHasher24::new_with_keys(0, 0);
            s.stable_hash_into(&mut x);
            x.finish()
        }
        let s1 = abc();
        let mut s2 = abc();
        s2 = Schema::new(
            s2.columns()
                .iter()
                .map(|c| Column::new(c.name.to_uppercase(), c.dtype))
                .collect(),
        )
        .unwrap();
        assert_ne!(h(&s1), h(&s2));
        assert_eq!(h(&s1), h(&abc()));
    }
}
