//! The operator algebra.
//!
//! Every operator kind the paper's Figure 4(a) reports overlap for is
//! represented here with real execution semantics (execution itself lives in
//! `scope-engine`; this module defines structure, schemas, arity, delivered
//! physical properties, and per-node signature content).

use scope_common::hash::SipHasher24;
use scope_common::ids::DatasetId;
use scope_common::intern::Symbol;
use scope_common::{Result, ScopeError};

use crate::expr::{AggExpr, Expr, HashMode, NamedExpr};
use crate::props::{Partitioning, PhysicalProps, SortOrder};
use crate::schema::{Column, Schema};
use crate::types::DataType;
use crate::udo::Udo;

/// The 26 operator kinds of the paper's Figure 4(a), used for the
/// operator-wise overlap breakdown.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum OpKind {
    /// Physical sort.
    Sort,
    /// Shuffle / repartition.
    Exchange,
    /// Range-restricted scan.
    Range,
    /// Compute scalar (projection with computed columns).
    Scalar,
    /// Column restriction / remap (rename, reorder, drop).
    RestrRemap,
    /// Row filter.
    Filter,
    /// Hash-based group-by aggregate.
    HashGbAgg,
    /// Stream (sorted) group-by aggregate.
    StreamGbAgg,
    /// User-defined row processor.
    Process,
    /// Intra-job materialization / sharing point.
    Spool,
    /// Sort-merge join.
    MergeJoin,
    /// Sequence of statements (output of the last child).
    Sequence,
    /// Hash join.
    HashJoin,
    /// Bag union.
    UnionAll,
    /// User-defined binary combiner.
    Combine,
    /// Read of a virtual dataset (materialized view or shared intermediate).
    VirtualDataset,
    /// User-defined group reducer.
    Reduce,
    /// User-defined extractor (scan of unstructured data through user code).
    Extract,
    /// Per-group apply of a user-defined operation.
    GbApply,
    /// Top-N.
    Top,
    /// Nested-loops join.
    LoopsJoin,
    /// Job output statement.
    Output,
    /// Plain table scan.
    TableScan,
    /// Window function.
    Window,
    /// No-op pass-through.
    Nop,
    /// Structured stream write (like Output but producing a stored stream).
    Write,
}

impl OpKind {
    /// Stable lowercase name used in signatures and reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Sort => "Sort",
            OpKind::Exchange => "Exchange",
            OpKind::Range => "Range",
            OpKind::Scalar => "Scalar",
            OpKind::RestrRemap => "RestrRemap",
            OpKind::Filter => "Filter",
            OpKind::HashGbAgg => "HashGbAgg",
            OpKind::StreamGbAgg => "StreamGbAgg",
            OpKind::Process => "Process",
            OpKind::Spool => "Spool",
            OpKind::MergeJoin => "MergeJoin",
            OpKind::Sequence => "Sequence",
            OpKind::HashJoin => "HashJoin",
            OpKind::UnionAll => "UnionAll",
            OpKind::Combine => "Combine",
            OpKind::VirtualDataset => "VirtualDataset",
            OpKind::Reduce => "Reduce",
            OpKind::Extract => "Extract",
            OpKind::GbApply => "GbApply",
            OpKind::Top => "Top",
            OpKind::LoopsJoin => "LoopsJoin",
            OpKind::Output => "Output",
            OpKind::TableScan => "TableScan",
            OpKind::Window => "Window",
            OpKind::Nop => "NOP",
            OpKind::Write => "Write",
        }
    }

    /// All 26 kinds in the paper's Figure 4(a) x-axis order.
    pub const ALL: [OpKind; 26] = [
        OpKind::Sort,
        OpKind::Exchange,
        OpKind::Range,
        OpKind::Scalar,
        OpKind::RestrRemap,
        OpKind::Filter,
        OpKind::HashGbAgg,
        OpKind::StreamGbAgg,
        OpKind::Process,
        OpKind::Spool,
        OpKind::MergeJoin,
        OpKind::Sequence,
        OpKind::HashJoin,
        OpKind::UnionAll,
        OpKind::Combine,
        OpKind::VirtualDataset,
        OpKind::Reduce,
        OpKind::Extract,
        OpKind::GbApply,
        OpKind::Top,
        OpKind::LoopsJoin,
        OpKind::Output,
        OpKind::TableScan,
        OpKind::Window,
        OpKind::Nop,
        OpKind::Write,
    ];
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a leaf reads its data.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum ScanKind {
    /// Plain structured-stream scan.
    Table,
    /// Range-restricted scan (predicate pushed into the scan).
    Range,
    /// Extraction of unstructured data through a user-defined extractor.
    Extract,
}

/// Join semantics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum JoinKind {
    /// Inner join.
    Inner,
    /// Left outer join.
    LeftOuter,
    /// Left semi join (left row kept if any match; right columns dropped).
    LeftSemi,
}

/// Join implementation chosen by the optimizer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum JoinImpl {
    /// Build/probe hash join.
    Hash,
    /// Sort-merge join (requires both sides sorted on the keys).
    Merge,
    /// Nested loops (only sensible for tiny inputs or non-equi joins).
    Loops,
}

/// Aggregate implementation chosen by the optimizer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum AggImpl {
    /// Hash aggregation.
    Hash,
    /// Stream aggregation (requires input sorted on the keys).
    Stream,
}

/// Window functions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum WindowFunc {
    /// 1-based dense position within the partition by the order.
    RowNumber,
    /// Rank with gaps.
    Rank,
    /// Running sum of a column.
    RunningSum(usize),
}

impl WindowFunc {
    fn name(&self) -> String {
        match self {
            WindowFunc::RowNumber => "row_number".into(),
            WindowFunc::Rank => "rank".into(),
            WindowFunc::RunningSum(c) => format!("running_sum({c})"),
        }
    }
}

/// A plan operator. Children live in the owning [`crate::graph::PlanNode`];
/// the operator defines its expected arity.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub enum Operator {
    /// Leaf: scan of a stored dataset.
    ///
    /// `template_name` is the *normalized* stream name (e.g.
    /// `"clicks/<date>/log.ss"`), stable across recurring instances;
    /// `dataset` is the concrete input GUID of this instance and is part of
    /// the precise signature only.
    Get {
        /// Concrete input GUID for this recurring instance.
        dataset: DatasetId,
        /// Normalized stream name, stable across instances (interned: the
        /// same template recurring daily shares one allocation).
        template_name: Symbol,
        /// The stored schema.
        schema: Schema,
        /// Scan flavour (plain, range-restricted, extractor).
        kind: ScanKind,
        /// Optional residual predicate pushed into the scan (for
        /// `ScanKind::Range` this is the range condition).
        predicate: Option<Expr>,
        /// Extractor user code for `ScanKind::Extract`.
        extractor: Option<Udo>,
    },
    /// Leaf: read of a materialized view / virtual dataset by signature.
    ViewGet {
        /// Precise signature of the materialized computation being read.
        view_sig: scope_common::Sig128,
        /// The view's schema.
        schema: Schema,
        /// The physical design the view was stored with.
        props: PhysicalProps,
    },
    /// Row filter.
    Filter {
        /// Predicate; rows where it is not `true` are dropped.
        predicate: Expr,
    },
    /// Projection with computed columns (ComputeScalar).
    Project {
        /// Output columns.
        exprs: Vec<NamedExpr>,
    },
    /// Column restriction/remap: reorder, drop, rename (RestrRemap).
    Remap {
        /// Input column positions to keep, in output order.
        cols: Vec<usize>,
        /// New names (same length as `cols`).
        names: Vec<String>,
    },
    /// Physical sort.
    Sort {
        /// Sort keys.
        order: SortOrder,
    },
    /// Shuffle/repartition.
    Exchange {
        /// Target distribution.
        scheme: Partitioning,
    },
    /// Group-by aggregation.
    Aggregate {
        /// Grouping column positions.
        keys: Vec<usize>,
        /// Aggregate outputs.
        aggs: Vec<AggExpr>,
        /// Implementation (Hash or Stream).
        implementation: AggImpl,
    },
    /// Top-N by an order.
    Top {
        /// Number of rows kept.
        n: usize,
        /// Order defining "top".
        order: SortOrder,
    },
    /// Window function over partitions.
    Window {
        /// The window function.
        func: WindowFunc,
        /// Partitioning columns.
        partition: Vec<usize>,
        /// In-partition order.
        order: SortOrder,
    },
    /// User-defined row processor.
    Process {
        /// The user code.
        udo: Udo,
    },
    /// User-defined reducer over groups.
    Reduce {
        /// The user code.
        udo: Udo,
        /// Grouping columns.
        keys: Vec<usize>,
    },
    /// Per-group apply (GbApply) of a user-defined operation.
    GbApply {
        /// The user code applied per group.
        udo: Udo,
        /// Grouping columns.
        keys: Vec<usize>,
    },
    /// Intra-job sharing point (consumed by multiple parents).
    Spool,
    /// Pass-through.
    Nop,
    /// Statement sequence: children execute in order; output is the last
    /// child's output.
    Sequence,
    /// Join of two inputs on equality keys.
    Join {
        /// Semantics.
        kind: JoinKind,
        /// Implementation.
        implementation: JoinImpl,
        /// Left key columns.
        left_keys: Vec<usize>,
        /// Right key columns.
        right_keys: Vec<usize>,
    },
    /// Bag union of same-typed inputs.
    UnionAll,
    /// User-defined binary combiner.
    Combine {
        /// The user code.
        udo: Udo,
    },
    /// Job output: terminal sink publishing rows under a user-visible name.
    Output {
        /// Output stream name (interned).
        name: Symbol,
        /// True for `Write` (stored structured stream), false for plain
        /// `Output`.
        stored: bool,
    },
}

impl Operator {
    /// The Figure 4(a) operator kind of this node.
    pub fn kind(&self) -> OpKind {
        match self {
            Operator::Get { kind, .. } => match kind {
                ScanKind::Table => OpKind::TableScan,
                ScanKind::Range => OpKind::Range,
                ScanKind::Extract => OpKind::Extract,
            },
            Operator::ViewGet { .. } => OpKind::VirtualDataset,
            Operator::Filter { .. } => OpKind::Filter,
            Operator::Project { .. } => OpKind::Scalar,
            Operator::Remap { .. } => OpKind::RestrRemap,
            Operator::Sort { .. } => OpKind::Sort,
            Operator::Exchange { .. } => OpKind::Exchange,
            Operator::Aggregate { implementation, .. } => match implementation {
                AggImpl::Hash => OpKind::HashGbAgg,
                AggImpl::Stream => OpKind::StreamGbAgg,
            },
            Operator::Top { .. } => OpKind::Top,
            Operator::Window { .. } => OpKind::Window,
            Operator::Process { .. } => OpKind::Process,
            Operator::Reduce { .. } => OpKind::Reduce,
            Operator::GbApply { .. } => OpKind::GbApply,
            Operator::Spool => OpKind::Spool,
            Operator::Nop => OpKind::Nop,
            Operator::Sequence => OpKind::Sequence,
            Operator::Join { implementation, .. } => match implementation {
                JoinImpl::Hash => OpKind::HashJoin,
                JoinImpl::Merge => OpKind::MergeJoin,
                JoinImpl::Loops => OpKind::LoopsJoin,
            },
            Operator::UnionAll => OpKind::UnionAll,
            Operator::Combine { .. } => OpKind::Combine,
            Operator::Output { stored, .. } => {
                if *stored {
                    OpKind::Write
                } else {
                    OpKind::Output
                }
            }
        }
    }

    /// Expected number of children: `(min, max)`; `usize::MAX` = unbounded.
    pub fn arity(&self) -> (usize, usize) {
        match self {
            Operator::Get { .. } | Operator::ViewGet { .. } => (0, 0),
            Operator::Join { .. } | Operator::Combine { .. } => (2, 2),
            Operator::UnionAll | Operator::Sequence => (1, usize::MAX),
            _ => (1, 1),
        }
    }

    /// Derives the output schema from the input schemas.
    pub fn output_schema(&self, inputs: &[Schema]) -> Result<Schema> {
        let one = || -> Result<&Schema> {
            inputs
                .first()
                .ok_or_else(|| ScopeError::InvalidPlan(format!("{} needs an input", self.kind())))
        };
        match self {
            Operator::Get {
                schema,
                kind,
                extractor,
                ..
            } => {
                if *kind == ScanKind::Extract {
                    let udo = extractor.as_ref().ok_or_else(|| {
                        ScopeError::InvalidPlan("Extract scan without extractor".into())
                    })?;
                    udo.output_schema(schema)
                } else {
                    Ok(schema.clone())
                }
            }
            Operator::ViewGet { schema, .. } => Ok(schema.clone()),
            Operator::Filter { predicate } => {
                let s = one()?;
                // Validate column references early.
                let mut cols = Vec::new();
                predicate.referenced_columns(&mut cols);
                for c in cols {
                    s.column(c)?;
                }
                Ok(s.clone())
            }
            Operator::Project { exprs } => {
                let s = one()?;
                let cols: Result<Vec<Column>> = exprs
                    .iter()
                    .map(|ne| Ok(Column::new(ne.name.clone(), ne.expr.infer_type(s)?)))
                    .collect();
                Schema::new(cols?)
            }
            Operator::Remap { cols, names } => {
                let s = one()?;
                if cols.len() != names.len() {
                    return Err(ScopeError::InvalidPlan(
                        "Remap cols/names length mismatch".into(),
                    ));
                }
                let out: Result<Vec<Column>> = cols
                    .iter()
                    .zip(names)
                    .map(|(&c, n)| Ok(Column::new(n.clone(), s.column(c)?.dtype)))
                    .collect();
                Schema::new(out?)
            }
            Operator::Sort { order } | Operator::Top { order, .. } => {
                let s = one()?;
                for k in &order.0 {
                    s.column(k.col)?;
                }
                Ok(s.clone())
            }
            Operator::Exchange { scheme } => {
                let s = one()?;
                if let Partitioning::Hash { cols, .. } = scheme {
                    for c in cols {
                        s.column(*c)?;
                    }
                }
                if let Partitioning::Range { col, .. } = scheme {
                    s.column(*col)?;
                }
                Ok(s.clone())
            }
            Operator::Aggregate { keys, aggs, .. } => {
                let s = one()?;
                let mut cols = Vec::with_capacity(keys.len() + aggs.len());
                for &k in keys {
                    cols.push(s.column(k)?.clone());
                }
                for a in aggs {
                    let in_t = if a.func == crate::expr::AggFunc::Count {
                        DataType::Int
                    } else {
                        s.column(a.input)?.dtype
                    };
                    cols.push(Column::new(a.name.clone(), a.func.output_type(in_t)));
                }
                Schema::new(cols)
            }
            Operator::Window {
                func,
                partition,
                order,
            } => {
                let s = one()?;
                for &c in partition {
                    s.column(c)?;
                }
                for k in &order.0 {
                    s.column(k.col)?;
                }
                let mut cols = s.columns().to_vec();
                let (name, dtype) = match func {
                    WindowFunc::RowNumber => ("row_number", DataType::Int),
                    WindowFunc::Rank => ("rank", DataType::Int),
                    WindowFunc::RunningSum(c) => {
                        s.column(*c)?;
                        ("running_sum", DataType::Float)
                    }
                };
                cols.push(Column::new(name, dtype));
                Schema::new(cols)
            }
            Operator::Process { udo } | Operator::Combine { udo } => udo.output_schema(one()?),
            Operator::Reduce { udo, keys } | Operator::GbApply { udo, keys } => {
                let s = one()?;
                for &k in keys {
                    s.column(k)?;
                }
                udo.output_schema(s)
            }
            Operator::Spool | Operator::Nop => Ok(one()?.clone()),
            Operator::Sequence => Ok(inputs
                .last()
                .ok_or_else(|| ScopeError::InvalidPlan("Sequence needs children".into()))?
                .clone()),
            Operator::Join {
                kind,
                left_keys,
                right_keys,
                ..
            } => {
                if inputs.len() != 2 {
                    return Err(ScopeError::InvalidPlan("Join needs two inputs".into()));
                }
                if left_keys.len() != right_keys.len() || left_keys.is_empty() {
                    return Err(ScopeError::InvalidPlan(
                        "Join needs matching non-empty key lists".into(),
                    ));
                }
                for &k in left_keys {
                    inputs[0].column(k)?;
                }
                for &k in right_keys {
                    inputs[1].column(k)?;
                }
                match kind {
                    JoinKind::LeftSemi => Ok(inputs[0].clone()),
                    _ => Ok(inputs[0].concat(&inputs[1])),
                }
            }
            Operator::UnionAll => {
                let first = one()?;
                for s in &inputs[1..] {
                    if !first.types_match(s) {
                        return Err(ScopeError::InvalidPlan(format!(
                            "UnionAll type mismatch: {first} vs {s}"
                        )));
                    }
                }
                Ok(first.clone())
            }
            Operator::Output { .. } => Ok(one()?.clone()),
        }
    }

    /// Physical properties *delivered* by this operator, given the
    /// properties delivered by its inputs.
    ///
    /// This is the property-propagation half of the optimizer; Section 5.3
    /// of the paper mines these to pick view physical designs.
    pub fn delivered_props(&self, inputs: &[PhysicalProps]) -> PhysicalProps {
        let input = inputs.first().cloned().unwrap_or_default();
        match self {
            // Scans deliver whatever the store gave (callers override when
            // the stored stream has a known design).
            Operator::Get { .. } => PhysicalProps::any(),
            Operator::ViewGet { props, .. } => props.clone(),
            // Exchange replaces the distribution and destroys order.
            Operator::Exchange { scheme } => PhysicalProps {
                partitioning: scheme.clone(),
                sort: SortOrder::none(),
            },
            // Sort sets the order, keeps distribution.
            Operator::Sort { order } => PhysicalProps {
                partitioning: input.partitioning,
                sort: order.clone(),
            },
            // Top delivers its order (we implement it as sorted output).
            Operator::Top { order, .. } => PhysicalProps {
                partitioning: input.partitioning,
                sort: order.clone(),
            },
            // Filters/pass-throughs preserve everything.
            Operator::Filter { .. } | Operator::Spool | Operator::Nop => input,
            // Aggregation changes the output schema to (keys..., aggs...):
            // positional properties on the grouping keys survive, remapped
            // to their output positions; anything else is lost.
            Operator::Aggregate {
                keys,
                implementation,
                ..
            } => {
                let remap = |c: &usize| keys.iter().position(|k| k == c);
                let partitioning = remap_partitioning(&input.partitioning, remap);
                let sort = match implementation {
                    AggImpl::Stream => remap_sort(&input.sort, remap),
                    AggImpl::Hash => SortOrder::none(),
                };
                PhysicalProps { partitioning, sort }
            }
            // Join output is (left columns..., right columns...): left-side
            // positions are preserved verbatim. Merge join also preserves
            // the left order.
            Operator::Join { implementation, .. } => match implementation {
                JoinImpl::Merge => PhysicalProps {
                    partitioning: input.partitioning,
                    sort: input.sort,
                },
                _ => PhysicalProps {
                    partitioning: input.partitioning,
                    sort: SortOrder::none(),
                },
            },
            // Projection/remap reorder columns: positional properties are
            // remapped through plain column references; computed columns
            // drop them.
            Operator::Project { exprs } => {
                let remap = |c: &usize| {
                    exprs
                        .iter()
                        .position(|ne| matches!(&ne.expr, Expr::Col(i) if i == c))
                };
                PhysicalProps {
                    partitioning: remap_partitioning(&input.partitioning, remap),
                    sort: remap_sort(&input.sort, remap),
                }
            }
            Operator::Remap { cols, .. } => {
                let remap = |c: &usize| cols.iter().position(|k| k == c);
                PhysicalProps {
                    partitioning: remap_partitioning(&input.partitioning, remap),
                    sort: remap_sort(&input.sort, remap),
                }
            }
            // User code: no guarantees survive.
            Operator::Process { .. }
            | Operator::Reduce { .. }
            | Operator::GbApply { .. }
            | Operator::Combine { .. }
            | Operator::Window { .. } => PhysicalProps {
                partitioning: input.partitioning,
                sort: SortOrder::none(),
            },
            Operator::UnionAll => PhysicalProps::any(),
            Operator::Sequence => inputs.last().cloned().unwrap_or_default(),
            Operator::Output { .. } => input,
        }
    }

    /// Physical properties this operator *requires* from its input(s) to run
    /// correctly; the optimizer inserts enforcers (Exchange/Sort) to satisfy
    /// them. Returns one requirement per child.
    pub fn required_props(&self, num_children: usize, default_dop: usize) -> Vec<PhysicalProps> {
        let none = PhysicalProps::any;
        match self {
            // Stream agg needs co-partitioned, key-sorted input.
            Operator::Aggregate {
                keys,
                implementation: AggImpl::Stream,
                ..
            } => {
                vec![PhysicalProps {
                    partitioning: partition_req(keys, default_dop),
                    sort: SortOrder::asc(keys),
                }]
            }
            // Hash agg needs co-partitioning only.
            Operator::Aggregate {
                keys,
                implementation: AggImpl::Hash,
                ..
            } => {
                vec![PhysicalProps {
                    partitioning: partition_req(keys, default_dop),
                    sort: SortOrder::none(),
                }]
            }
            Operator::Reduce { keys, .. } | Operator::GbApply { keys, .. } => {
                vec![PhysicalProps {
                    partitioning: partition_req(keys, default_dop),
                    sort: SortOrder::asc(keys),
                }]
            }
            Operator::Join {
                implementation,
                left_keys,
                right_keys,
                ..
            } => {
                let l_part = partition_req(left_keys, default_dop);
                let r_part = partition_req(right_keys, default_dop);
                match implementation {
                    JoinImpl::Merge => vec![
                        PhysicalProps {
                            partitioning: l_part,
                            sort: SortOrder::asc(left_keys),
                        },
                        PhysicalProps {
                            partitioning: r_part,
                            sort: SortOrder::asc(right_keys),
                        },
                    ],
                    JoinImpl::Hash => vec![
                        PhysicalProps {
                            partitioning: l_part,
                            sort: SortOrder::none(),
                        },
                        PhysicalProps {
                            partitioning: r_part,
                            sort: SortOrder::none(),
                        },
                    ],
                    // Loops join: broadcast-style; right side single.
                    JoinImpl::Loops => vec![none(), PhysicalProps::single()],
                }
            }
            Operator::Combine { .. } => vec![PhysicalProps::single(), PhysicalProps::single()],
            // Top-N needs a single partition to be globally correct. Sort is
            // partition-local (enforcer sorts run inside each partition);
            // global ordering comes from gathering.
            Operator::Top { .. } => vec![PhysicalProps::single()],
            Operator::Window {
                partition, order, ..
            } => {
                let mut sort_keys = SortOrder::asc(partition);
                sort_keys.0.extend(order.0.iter().copied());
                vec![PhysicalProps {
                    partitioning: partition_req(partition, default_dop),
                    sort: sort_keys,
                }]
            }
            // Output gathers to a single stream.
            Operator::Output { .. } => vec![PhysicalProps::single()],
            _ => (0..num_children.max(self.arity().0))
                .map(|_| none())
                .collect(),
        }
    }

    /// Feeds the operator's own content (not its children) into a stable
    /// hasher. `mode` controls recurring-delta stripping; see
    /// `scope-signature` for the full Merkle construction.
    pub fn stable_hash_into(&self, h: &mut SipHasher24, mode: HashMode) {
        h.write_str(self.kind().name());
        match self {
            Operator::Get {
                dataset,
                template_name,
                schema,
                kind,
                predicate,
                extractor,
            } => {
                if mode == HashMode::Precise {
                    h.write_str(template_name.as_str());
                    // The concrete input GUID: recurring instances read new
                    // data, so this is precisely what normalization strips.
                    h.write_u64(dataset.raw());
                } else {
                    // Mask date/GUID path segments, like the output names.
                    h.write_str(normalize_stream_symbol(*template_name).as_str());
                }
                schema.stable_hash_into(h);
                h.write_u8(*kind as u8);
                if let Some(p) = predicate {
                    h.write_u8(1);
                    p.stable_hash_into(h, mode);
                } else {
                    h.write_u8(0);
                }
                if let Some(u) = extractor {
                    h.write_u8(1);
                    u.stable_hash_into(h);
                } else {
                    h.write_u8(0);
                }
            }
            Operator::ViewGet {
                view_sig,
                schema,
                props,
            } => {
                h.write_u64(view_sig.hi);
                h.write_u64(view_sig.lo);
                schema.stable_hash_into(h);
                props.stable_hash_into(h);
            }
            Operator::Filter { predicate } => predicate.stable_hash_into(h, mode),
            Operator::Project { exprs } => {
                h.write_u64(exprs.len() as u64);
                for ne in exprs {
                    h.write_str(&ne.name);
                    ne.expr.stable_hash_into(h, mode);
                }
            }
            Operator::Remap { cols, names } => {
                h.write_u64(cols.len() as u64);
                for (c, n) in cols.iter().zip(names) {
                    h.write_u64(*c as u64);
                    h.write_str(n);
                }
            }
            Operator::Sort { order } => order.stable_hash_into(h),
            Operator::Exchange { scheme } => scheme.stable_hash_into(h),
            Operator::Aggregate {
                keys,
                aggs,
                implementation,
            } => {
                h.write_u8(*implementation as u8);
                h.write_u64(keys.len() as u64);
                for k in keys {
                    h.write_u64(*k as u64);
                }
                h.write_u64(aggs.len() as u64);
                for a in aggs {
                    a.stable_hash_into(h);
                }
            }
            Operator::Top { n, order } => {
                h.write_u64(*n as u64);
                order.stable_hash_into(h);
            }
            Operator::Window {
                func,
                partition,
                order,
            } => {
                h.write_str(&func.name());
                h.write_u64(partition.len() as u64);
                for c in partition {
                    h.write_u64(*c as u64);
                }
                order.stable_hash_into(h);
            }
            Operator::Process { udo } | Operator::Combine { udo } => udo.stable_hash_into(h),
            Operator::Reduce { udo, keys } | Operator::GbApply { udo, keys } => {
                udo.stable_hash_into(h);
                h.write_u64(keys.len() as u64);
                for k in keys {
                    h.write_u64(*k as u64);
                }
            }
            Operator::Spool | Operator::Nop | Operator::Sequence | Operator::UnionAll => {}
            Operator::Join {
                kind,
                implementation,
                left_keys,
                right_keys,
            } => {
                h.write_u8(*kind as u8);
                h.write_u8(*implementation as u8);
                h.write_u64(left_keys.len() as u64);
                for k in left_keys {
                    h.write_u64(*k as u64);
                }
                for k in right_keys {
                    h.write_u64(*k as u64);
                }
            }
            Operator::Output { name, stored } => {
                // Output names often embed dates; normalize by template.
                if mode == HashMode::Precise {
                    h.write_str(name.as_str());
                } else {
                    h.write_str(normalize_stream_symbol(*name).as_str());
                }
                h.write_u8(*stored as u8);
            }
        }
    }

    /// A one-line description for EXPLAIN-style plan dumps.
    pub fn describe(&self) -> String {
        match self {
            Operator::Get {
                template_name,
                kind,
                ..
            } => {
                format!("{:?}Scan({template_name})", kind)
            }
            Operator::ViewGet { view_sig, .. } => format!("ViewGet({})", view_sig.short()),
            Operator::Filter { .. } => "Filter".into(),
            Operator::Project { exprs } => format!("Project[{}]", exprs.len()),
            Operator::Remap { cols, .. } => format!("Remap{cols:?}"),
            Operator::Sort { order } => format!("Sort[{:?}]", order.columns()),
            Operator::Exchange { scheme } => format!("Exchange({})", scheme.describe()),
            Operator::Aggregate {
                keys,
                implementation,
                ..
            } => {
                format!("{:?}Agg{keys:?}", implementation)
            }
            Operator::Top { n, .. } => format!("Top({n})"),
            Operator::Window { func, .. } => format!("Window({})", func.name()),
            Operator::Process { udo } => format!("Process({})", udo.kind.name()),
            Operator::Reduce { udo, .. } => format!("Reduce({})", udo.kind.name()),
            Operator::GbApply { udo, .. } => format!("GbApply({})", udo.kind.name()),
            Operator::Spool => "Spool".into(),
            Operator::Nop => "NOP".into(),
            Operator::Sequence => "Sequence".into(),
            Operator::Join {
                kind,
                implementation,
                left_keys,
                right_keys,
            } => {
                format!("{implementation:?}{kind:?}Join({left_keys:?}={right_keys:?})")
            }
            Operator::UnionAll => "UnionAll".into(),
            Operator::Combine { udo } => format!("Combine({})", udo.kind.name()),
            Operator::Output { name, stored } => {
                format!("{}({name})", if *stored { "Write" } else { "Output" })
            }
        }
    }
}

/// Remaps a partitioning's column references through an input-position →
/// output-position mapping. Distribution guarantees on columns the output
/// no longer exposes positionally degrade to `Any` (the rows are still
/// distributed that way, but no consumer can rely on it).
fn remap_partitioning(p: &Partitioning, remap: impl Fn(&usize) -> Option<usize>) -> Partitioning {
    match p {
        Partitioning::Hash { cols, parts } => {
            let mapped: Option<Vec<usize>> = cols.iter().map(&remap).collect();
            match mapped {
                Some(cols) => Partitioning::Hash {
                    cols,
                    parts: *parts,
                },
                None => Partitioning::Any,
            }
        }
        Partitioning::Range { col, parts } => match remap(col) {
            Some(col) => Partitioning::Range { col, parts: *parts },
            None => Partitioning::Any,
        },
        other => other.clone(),
    }
}

/// Remaps a sort order, keeping the longest remappable prefix (a stream
/// sorted by (a, b) is still sorted by (a) when only `a` survives).
fn remap_sort(s: &SortOrder, remap: impl Fn(&usize) -> Option<usize>) -> SortOrder {
    let mut keys = Vec::new();
    for k in &s.0 {
        match remap(&k.col) {
            Some(col) => keys.push(crate::props::SortKey { col, dir: k.dir }),
            None => break,
        }
    }
    SortOrder(keys)
}

/// Partitioning requirement on `keys`: co-partition by hash, or gather to a
/// single node when there are no keys (global aggregate).
fn partition_req(keys: &[usize], default_dop: usize) -> Partitioning {
    if keys.is_empty() {
        Partitioning::Single
    } else {
        Partitioning::Hash {
            cols: keys.to_vec(),
            parts: default_dop,
        }
    }
}

/// Normalizes a stream name by masking date-like and GUID-like path
/// segments: `"out/2017-11-08/result.ss"` → `"out/<date>/result.ss"`.
///
/// This mirrors the paper's signature normalization of input names.
pub fn normalize_stream_name(name: &str) -> String {
    name.split('/')
        .map(|seg| {
            if looks_like_date(seg) {
                "<date>"
            } else if looks_like_guid(seg) {
                "<guid>"
            } else {
                seg
            }
        })
        .collect::<Vec<_>>()
        .join("/")
}

/// Interned, memoized form of [`normalize_stream_name`]: the first call for
/// a given symbol does the segment scan and allocates the normalized string
/// (once, in the interner); every later call — i.e. every recurring
/// instance of the template — is a lock-shared map probe.
pub fn normalize_stream_symbol(name: Symbol) -> Symbol {
    use std::collections::HashMap;
    use std::sync::{OnceLock, RwLock};
    static MEMO: OnceLock<RwLock<HashMap<Symbol, Symbol>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| RwLock::new(HashMap::new()));
    if let Some(&normalized) = memo.read().expect("normalize memo poisoned").get(&name) {
        return normalized;
    }
    let normalized = Symbol::intern(&normalize_stream_name(name.as_str()));
    memo.write()
        .expect("normalize memo poisoned")
        .insert(name, normalized);
    normalized
}

fn looks_like_date(seg: &str) -> bool {
    // yyyy-mm-dd, yyyymmdd, or yyyy-mm-dd-hh
    let digits = seg.chars().filter(|c| c.is_ascii_digit()).count();
    let seps = seg.chars().filter(|c| *c == '-' || *c == '_').count();
    digits >= 6 && digits + seps == seg.len() && !seg.is_empty()
}

fn looks_like_guid(seg: &str) -> bool {
    seg.len() >= 16 && seg.chars().all(|c| c.is_ascii_hexdigit() || c == '-')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, Expr};

    fn scan_schema() -> Schema {
        Schema::from_pairs(&[
            ("user", DataType::Int),
            ("url", DataType::Str),
            ("latency", DataType::Float),
        ])
    }

    fn get_op() -> Operator {
        Operator::Get {
            dataset: DatasetId::new(1),
            template_name: "clicks/<date>/log.ss".into(),
            schema: scan_schema(),
            kind: ScanKind::Table,
            predicate: None,
            extractor: None,
        }
    }

    #[test]
    fn kinds_cover_all_26() {
        // Paranoia check used by the Figure 4a harness: OpKind::ALL has all
        // distinct kinds.
        let mut names: Vec<_> = OpKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 26);
    }

    #[test]
    fn scan_kind_mapping() {
        assert_eq!(get_op().kind(), OpKind::TableScan);
        let mut op = get_op();
        if let Operator::Get { kind, .. } = &mut op {
            *kind = ScanKind::Range;
        }
        assert_eq!(op.kind(), OpKind::Range);
    }

    #[test]
    fn output_schema_propagation() {
        let s = scan_schema();
        let filter = Operator::Filter {
            predicate: Expr::col(0).gt(Expr::lit(10i64)),
        };
        assert_eq!(filter.output_schema(std::slice::from_ref(&s)).unwrap(), s);

        let agg = Operator::Aggregate {
            keys: vec![1],
            aggs: vec![
                AggExpr::new("cnt", AggFunc::Count, 0),
                AggExpr::new("avg_lat", AggFunc::Avg, 2),
            ],
            implementation: AggImpl::Hash,
        };
        let out = agg.output_schema(std::slice::from_ref(&s)).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out.column(0).unwrap().name, "url");
        assert_eq!(out.column(1).unwrap().dtype, DataType::Int);
        assert_eq!(out.column(2).unwrap().dtype, DataType::Float);
    }

    #[test]
    fn filter_validates_columns() {
        let filter = Operator::Filter {
            predicate: Expr::col(9).gt(Expr::lit(1i64)),
        };
        assert!(filter.output_schema(&[scan_schema()]).is_err());
    }

    #[test]
    fn remap_schema() {
        let remap = Operator::Remap {
            cols: vec![2, 0],
            names: vec!["lat".into(), "uid".into()],
        };
        let out = remap.output_schema(&[scan_schema()]).unwrap();
        assert_eq!(out.to_string(), "(lat:float, uid:int)");
        let bad = Operator::Remap {
            cols: vec![0],
            names: vec![],
        };
        assert!(bad.output_schema(&[scan_schema()]).is_err());
    }

    #[test]
    fn join_schema_and_validation() {
        let j = Operator::Join {
            kind: JoinKind::Inner,
            implementation: JoinImpl::Hash,
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let out = j.output_schema(&[scan_schema(), scan_schema()]).unwrap();
        assert_eq!(out.len(), 6);
        let semi = Operator::Join {
            kind: JoinKind::LeftSemi,
            implementation: JoinImpl::Hash,
            left_keys: vec![0],
            right_keys: vec![0],
        };
        assert_eq!(
            semi.output_schema(&[scan_schema(), scan_schema()])
                .unwrap()
                .len(),
            3
        );
        let bad = Operator::Join {
            kind: JoinKind::Inner,
            implementation: JoinImpl::Hash,
            left_keys: vec![],
            right_keys: vec![],
        };
        assert!(bad.output_schema(&[scan_schema(), scan_schema()]).is_err());
    }

    #[test]
    fn union_type_check() {
        let u = Operator::UnionAll;
        assert!(u.output_schema(&[scan_schema(), scan_schema()]).is_ok());
        let other = Schema::from_pairs(&[("x", DataType::Int)]);
        assert!(u.output_schema(&[scan_schema(), other]).is_err());
    }

    #[test]
    fn exchange_destroys_sort() {
        let ex = Operator::Exchange {
            scheme: Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
        };
        let sorted_input = PhysicalProps {
            partitioning: Partitioning::Single,
            sort: SortOrder::asc(&[0]),
        };
        let out = ex.delivered_props(&[sorted_input]);
        assert!(out.sort.is_none());
        assert_eq!(out.partitioning.parts(), Some(8));
    }

    #[test]
    fn sort_preserves_distribution() {
        let sort = Operator::Sort {
            order: SortOrder::asc(&[1]),
        };
        let input = PhysicalProps::hashed(vec![0], 4);
        let out = sort.delivered_props(&[input]);
        assert_eq!(out.partitioning.parts(), Some(4));
        assert_eq!(out.sort, SortOrder::asc(&[1]));
    }

    #[test]
    fn required_props_for_stream_agg() {
        let agg = Operator::Aggregate {
            keys: vec![1],
            aggs: vec![],
            implementation: AggImpl::Stream,
        };
        let req = &agg.required_props(1, 8)[0];
        assert_eq!(req.sort, SortOrder::asc(&[1]));
        assert!(
            matches!(req.partitioning, Partitioning::Hash { ref cols, parts: 8 } if cols == &vec![1])
        );
        // Global aggregate gathers.
        let global = Operator::Aggregate {
            keys: vec![],
            aggs: vec![AggExpr::new("c", AggFunc::Count, 0)],
            implementation: AggImpl::Hash,
        };
        assert_eq!(
            global.required_props(1, 8)[0].partitioning,
            Partitioning::Single
        );
    }

    #[test]
    fn merge_join_requires_sorted_inputs() {
        let j = Operator::Join {
            kind: JoinKind::Inner,
            implementation: JoinImpl::Merge,
            left_keys: vec![0],
            right_keys: vec![1],
        };
        let reqs = j.required_props(2, 4);
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].sort, SortOrder::asc(&[0]));
        assert_eq!(reqs[1].sort, SortOrder::asc(&[1]));
    }

    #[test]
    fn precise_vs_normalized_get_hash() {
        fn h(op: &Operator, mode: HashMode) -> u64 {
            let mut s = SipHasher24::new_with_keys(0, 0);
            op.stable_hash_into(&mut s, mode);
            s.finish()
        }
        let g1 = get_op();
        let mut g2 = get_op();
        if let Operator::Get { dataset, .. } = &mut g2 {
            *dataset = DatasetId::new(999); // new day, new GUID
        }
        assert_ne!(h(&g1, HashMode::Precise), h(&g2, HashMode::Precise));
        assert_eq!(h(&g1, HashMode::Normalized), h(&g2, HashMode::Normalized));
    }

    #[test]
    fn output_name_normalization() {
        assert_eq!(
            normalize_stream_name("out/2017-11-08/result.ss"),
            "out/<date>/result.ss"
        );
        assert_eq!(
            normalize_stream_name("out/20171108/result.ss"),
            "out/<date>/result.ss"
        );
        assert_eq!(
            normalize_stream_name("data/0123456789abcdef0123/x.ss"),
            "data/<guid>/x.ss"
        );
        assert_eq!(normalize_stream_name("plain/path/x.ss"), "plain/path/x.ss");
    }

    #[test]
    fn output_hash_normalizes_name() {
        fn h(op: &Operator, mode: HashMode) -> u64 {
            let mut s = SipHasher24::new_with_keys(0, 0);
            op.stable_hash_into(&mut s, mode);
            s.finish()
        }
        let o1 = Operator::Output {
            name: "out/2017-11-08/r.ss".into(),
            stored: true,
        };
        let o2 = Operator::Output {
            name: "out/2017-11-09/r.ss".into(),
            stored: true,
        };
        assert_ne!(h(&o1, HashMode::Precise), h(&o2, HashMode::Precise));
        assert_eq!(h(&o1, HashMode::Normalized), h(&o2, HashMode::Normalized));
    }

    #[test]
    fn arity_bounds() {
        assert_eq!(get_op().arity(), (0, 0));
        assert_eq!(Operator::UnionAll.arity(), (1, usize::MAX));
        assert_eq!(Operator::Nop.arity(), (1, 1));
        assert_eq!(
            Operator::Combine {
                udo: Udo::new(crate::udo::UdoKind::MergeStreams, "L", "1")
            }
            .arity(),
            (2, 2)
        );
    }

    #[test]
    fn describe_smoke() {
        assert!(get_op().describe().contains("clicks"));
        assert_eq!(Operator::Spool.describe(), "Spool");
    }
}
