//! The query-plan DAG.
//!
//! SCOPE jobs are DAGs, not trees: a `Spool` node (or simply a shared scan)
//! can be consumed by several parents, and a job can have multiple `Output`
//! statements (the paper's Section 8 "reusing existing outputs" lesson
//! depends on per-output subgraphs). [`QueryGraph`] is an arena of
//! [`PlanNode`]s with child edges by [`NodeId`]; roots are the sink nodes.

use std::collections::HashMap;

use scope_common::ids::NodeId;
use scope_common::{Result, ScopeError};

use crate::op::Operator;
use crate::schema::Schema;

/// One node of the plan DAG.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PlanNode {
    /// This node's id (its index in the arena).
    pub id: NodeId,
    /// The operator.
    pub op: Operator,
    /// Children in operator-defined order (e.g. join left then right).
    pub children: Vec<NodeId>,
}

/// A query plan DAG.
#[derive(Clone, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueryGraph {
    nodes: Vec<PlanNode>,
    roots: Vec<NodeId>,
}

impl QueryGraph {
    /// An empty graph.
    pub fn new() -> Self {
        QueryGraph::default()
    }

    /// Adds a node and returns its id. Children must already exist.
    pub fn add(&mut self, op: Operator, children: Vec<NodeId>) -> Result<NodeId> {
        let (min, max) = op.arity();
        if children.len() < min || children.len() > max {
            return Err(ScopeError::InvalidPlan(format!(
                "{} expects {min}..{} children, got {}",
                op.kind(),
                if max == usize::MAX {
                    "*".into()
                } else {
                    max.to_string()
                },
                children.len()
            )));
        }
        for &c in &children {
            if c.index() >= self.nodes.len() {
                return Err(ScopeError::InvalidPlan(format!(
                    "child {c} does not exist (graph has {} nodes)",
                    self.nodes.len()
                )));
            }
        }
        let id = NodeId::new(self.nodes.len() as u64);
        self.nodes.push(PlanNode { id, op, children });
        Ok(id)
    }

    /// Marks a node as a root (a sink of the job). Typically `Output` nodes.
    pub fn add_root(&mut self, id: NodeId) -> Result<()> {
        if id.index() >= self.nodes.len() {
            return Err(ScopeError::InvalidPlan(format!("root {id} does not exist")));
        }
        if !self.roots.contains(&id) {
            self.roots.push(id);
        }
        Ok(())
    }

    /// All nodes in insertion order (which is a valid bottom-up topological
    /// order, because children must exist before parents).
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root (sink) node ids.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> Result<&PlanNode> {
        self.nodes
            .get(id.index())
            .ok_or_else(|| ScopeError::InvalidPlan(format!("unknown node {id}")))
    }

    /// Mutable access to a node's operator (used by the optimizer's
    /// rewriting steps).
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut PlanNode> {
        self.nodes
            .get_mut(id.index())
            .ok_or_else(|| ScopeError::InvalidPlan(format!("unknown node {id}")))
    }

    /// Parent map: for each node, the list of nodes that consume it.
    pub fn parents(&self) -> HashMap<NodeId, Vec<NodeId>> {
        let mut map: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for n in &self.nodes {
            for &c in &n.children {
                map.entry(c).or_default().push(n.id);
            }
        }
        map
    }

    /// Derives the output schema of every node, bottom-up. Fails on the
    /// first schema error, naming the offending node.
    pub fn schemas(&self) -> Result<Vec<Schema>> {
        let mut out: Vec<Schema> = Vec::with_capacity(self.nodes.len());
        for n in &self.nodes {
            let inputs: Vec<Schema> = n.children.iter().map(|c| out[c.index()].clone()).collect();
            let s = n.op.output_schema(&inputs).map_err(|e| {
                ScopeError::InvalidPlan(format!("node {} ({}): {e}", n.id, n.op.describe()))
            })?;
            out.push(s);
        }
        Ok(out)
    }

    /// The output schema of one node.
    pub fn schema_of(&self, id: NodeId) -> Result<Schema> {
        // Compute only the ancestors-of-id subset? Simpler and still O(n):
        // full bottom-up pass (plans are small).
        let schemas = self.schemas()?;
        schemas
            .get(id.index())
            .cloned()
            .ok_or_else(|| ScopeError::InvalidPlan(format!("unknown node {id}")))
    }

    /// Validates the whole graph: child ordering (DAG by construction),
    /// arity, schemas, and that every root exists. Returns the schemas as a
    /// by-product.
    pub fn validate(&self) -> Result<Vec<Schema>> {
        if self.roots.is_empty() && !self.nodes.is_empty() {
            return Err(ScopeError::InvalidPlan("graph has no roots".into()));
        }
        for n in &self.nodes {
            for &c in &n.children {
                if c.index() >= n.id.index() {
                    return Err(ScopeError::InvalidPlan(format!(
                        "node {} has forward edge to {c} (not a DAG ordering)",
                        n.id
                    )));
                }
            }
        }
        self.schemas()
    }

    /// The ids of all nodes in the subgraph rooted at `root` (including
    /// `root`), in bottom-up topological order.
    pub fn subgraph_nodes(&self, root: NodeId) -> Result<Vec<NodeId>> {
        self.node(root)?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if seen[id.index()] {
                continue;
            }
            seen[id.index()] = true;
            stack.extend(self.nodes[id.index()].children.iter().copied());
        }
        Ok((0..self.nodes.len())
            .filter(|i| seen[*i])
            .map(|i| NodeId::new(i as u64))
            .collect())
    }

    /// Extracts the subgraph rooted at `root` as a standalone graph whose
    /// single root is the copied `root` node. Node ids are remapped.
    pub fn extract_subgraph(&self, root: NodeId) -> Result<QueryGraph> {
        let ids = self.subgraph_nodes(root)?;
        let mut remap: HashMap<NodeId, NodeId> = HashMap::with_capacity(ids.len());
        let mut g = QueryGraph::new();
        for old in &ids {
            let n = &self.nodes[old.index()];
            let children: Vec<NodeId> = n.children.iter().map(|c| remap[c]).collect();
            let new_id = g.add(n.op.clone(), children)?;
            remap.insert(*old, new_id);
        }
        g.add_root(remap[&root])?;
        Ok(g)
    }

    /// Replaces the subgraph rooted at `root` with a single new operator
    /// (used to swap a computed subgraph for a `ViewGet`). The old nodes
    /// become unreachable; they are *not* removed (ids stay stable), but
    /// [`QueryGraph::compact`] can garbage-collect them.
    pub fn replace_with_leaf(&mut self, root: NodeId, op: Operator) -> Result<()> {
        let (min, _) = op.arity();
        if min != 0 {
            return Err(ScopeError::InvalidPlan(
                "replace_with_leaf needs a leaf operator".into(),
            ));
        }
        let node = self.node_mut(root)?;
        node.op = op;
        node.children.clear();
        Ok(())
    }

    /// Rebuilds the graph keeping only nodes reachable from the roots.
    /// Returns the id remapping (old → new).
    pub fn compact(&mut self) -> HashMap<NodeId, NodeId> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.roots.clone();
        while let Some(id) = stack.pop() {
            if reachable[id.index()] {
                continue;
            }
            reachable[id.index()] = true;
            stack.extend(self.nodes[id.index()].children.iter().copied());
        }
        let mut remap = HashMap::new();
        let mut nodes = Vec::new();
        for (i, keep) in reachable.iter().enumerate() {
            if *keep {
                let old = &self.nodes[i];
                let new_id = NodeId::new(nodes.len() as u64);
                let children = old.children.iter().map(|c| remap[c]).collect();
                nodes.push(PlanNode {
                    id: new_id,
                    op: old.op.clone(),
                    children,
                });
                remap.insert(NodeId::new(i as u64), new_id);
            }
        }
        self.nodes = nodes;
        self.roots = self.roots.iter().map(|r| remap[r]).collect();
        remap
    }

    /// Pretty-prints the DAG as an indented tree per root (shared nodes
    /// printed once per reference, tagged with their id).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.explain_rec(r, 0, &mut out);
        }
        out
    }

    fn explain_rec(&self, id: NodeId, depth: usize, out: &mut String) {
        let n = &self.nodes[id.index()];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} {}\n", n.id, n.op.describe()));
        for &c in &n.children {
            self.explain_rec(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::op::ScanKind;
    use crate::schema::Schema;
    use crate::types::DataType;
    use scope_common::ids::DatasetId;

    fn scan(name: &str) -> Operator {
        Operator::Get {
            dataset: DatasetId::new(1),
            template_name: name.into(),
            schema: Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]),
            kind: ScanKind::Table,
            predicate: None,
            extractor: None,
        }
    }

    fn simple_graph() -> (QueryGraph, NodeId, NodeId, NodeId) {
        let mut g = QueryGraph::new();
        let s = g.add(scan("t"), vec![]).unwrap();
        let f = g
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).gt(Expr::lit(0i64)),
                },
                vec![s],
            )
            .unwrap();
        let o = g
            .add(
                Operator::Output {
                    name: "out.ss".into(),
                    stored: false,
                },
                vec![f],
            )
            .unwrap();
        g.add_root(o).unwrap();
        (g, s, f, o)
    }

    #[test]
    fn build_and_validate() {
        let (g, s, f, o) = simple_graph();
        assert_eq!(g.len(), 3);
        assert_eq!(g.roots(), &[o]);
        let schemas = g.validate().unwrap();
        assert_eq!(schemas[s.index()].len(), 2);
        assert_eq!(schemas[f.index()].len(), 2);
    }

    #[test]
    fn arity_enforced_on_add() {
        let mut g = QueryGraph::new();
        let s = g.add(scan("t"), vec![]).unwrap();
        // Filter with zero children rejected.
        assert!(g
            .add(
                Operator::Filter {
                    predicate: Expr::lit(true)
                },
                vec![]
            )
            .is_err());
        // Scan with a child rejected.
        assert!(g.add(scan("u"), vec![s]).is_err());
        // Nonexistent child rejected.
        assert!(g.add(Operator::Nop, vec![NodeId::new(99)]).is_err());
    }

    #[test]
    fn shared_subgraph_parents() {
        let mut g = QueryGraph::new();
        let s = g.add(scan("t"), vec![]).unwrap();
        let spool = g.add(Operator::Spool, vec![s]).unwrap();
        let f1 = g
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).gt(Expr::lit(0i64)),
                },
                vec![spool],
            )
            .unwrap();
        let f2 = g
            .add(
                Operator::Filter {
                    predicate: Expr::col(0).lt(Expr::lit(0i64)),
                },
                vec![spool],
            )
            .unwrap();
        let o1 = g
            .add(
                Operator::Output {
                    name: "o1".into(),
                    stored: false,
                },
                vec![f1],
            )
            .unwrap();
        let o2 = g
            .add(
                Operator::Output {
                    name: "o2".into(),
                    stored: false,
                },
                vec![f2],
            )
            .unwrap();
        g.add_root(o1).unwrap();
        g.add_root(o2).unwrap();
        let parents = g.parents();
        assert_eq!(parents[&spool].len(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn subgraph_extraction() {
        let (g, _, f, _) = simple_graph();
        let sub = g.extract_subgraph(f).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.roots().len(), 1);
        sub.validate().unwrap();
        // The extracted root is the filter.
        let root = sub.node(sub.roots()[0]).unwrap();
        assert!(matches!(root.op, Operator::Filter { .. }));
    }

    #[test]
    fn subgraph_nodes_of_shared_dag() {
        let mut g = QueryGraph::new();
        let s = g.add(scan("t"), vec![]).unwrap();
        let n1 = g.add(Operator::Nop, vec![s]).unwrap();
        let n2 = g.add(Operator::Nop, vec![s]).unwrap();
        let u = g.add(Operator::UnionAll, vec![n1, n2]).unwrap();
        g.add_root(u).unwrap();
        let ids = g.subgraph_nodes(u).unwrap();
        assert_eq!(ids.len(), 4); // shared scan counted once
    }

    #[test]
    fn replace_with_leaf_and_compact() {
        let (mut g, s, f, o) = simple_graph();
        let view = Operator::ViewGet {
            view_sig: scope_common::sip128(b"v"),
            schema: Schema::from_pairs(&[("a", DataType::Int), ("b", DataType::Str)]),
            props: Default::default(),
        };
        g.replace_with_leaf(f, view).unwrap();
        g.validate().unwrap();
        assert_eq!(g.len(), 3); // scan now unreachable but still present
        let remap = g.compact();
        assert_eq!(g.len(), 2);
        assert!(!remap.contains_key(&s));
        assert!(remap.contains_key(&o));
        g.validate().unwrap();
    }

    #[test]
    fn replace_requires_leaf() {
        let (mut g, _, f, _) = simple_graph();
        assert!(g
            .replace_with_leaf(
                f,
                Operator::Filter {
                    predicate: Expr::lit(true)
                }
            )
            .is_err());
    }

    #[test]
    fn explain_contains_all_reachable() {
        let (g, ..) = simple_graph();
        let text = g.explain();
        assert!(text.contains("Output"));
        assert!(text.contains("Filter"));
        assert!(text.contains("TableScan") || text.contains("Table"));
    }

    #[test]
    fn no_roots_invalid() {
        let mut g = QueryGraph::new();
        g.add(scan("t"), vec![]).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn union_schema_mismatch_caught_by_validate() {
        let mut g = QueryGraph::new();
        let a = g.add(scan("t"), vec![]).unwrap();
        let b = g
            .add(
                Operator::Get {
                    dataset: DatasetId::new(2),
                    template_name: "u".into(),
                    schema: Schema::from_pairs(&[("x", DataType::Float)]),
                    kind: ScanKind::Table,
                    predicate: None,
                    extractor: None,
                },
                vec![],
            )
            .unwrap();
        let u = g.add(Operator::UnionAll, vec![a, b]).unwrap();
        g.add_root(u).unwrap();
        let err = g.validate().unwrap_err();
        assert_eq!(err.kind(), "invalid_plan");
    }
}
