//! The value model.
//!
//! Rows in the mini-SCOPE executor are vectors of [`Value`]. Values need a
//! *total* order (sort keys, merge joins) and a stable hash (group-by,
//! hash-partitioning, signatures), including for floats — we order floats by
//! their IEEE total-order bits, the standard trick for making `f64` usable as
//! a key.

use std::cmp::Ordering;
use std::fmt;

use scope_common::hash::SipHasher24;

/// The type of a column.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
    /// Calendar date, stored as days since an epoch.
    Date,
}

impl DataType {
    /// Short lowercase name, used in schema displays and signatures.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Str => "str",
            DataType::Bool => "bool",
            DataType::Date => "date",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single cell value.
///
/// `Null` is a member of every type (SQL-style), and sorts lowest.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Days since epoch.
    Date(i32),
}

impl Value {
    /// The value's runtime type, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints, floats, dates and bools coerce to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Date(d) => Some(*d as f64),
            Value::Bool(b) => Some(*b as i64 as f64),
            _ => None,
        }
    }

    /// Integer view: ints, dates, bools.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Date(d) => Some(*d as i64),
            Value::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view (used by filter predicates; NULL is not true).
    pub fn is_true(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Approximate in-memory size in bytes, used by the cost model to turn
    /// cardinalities into data sizes.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Date(_) => 4,
            Value::Str(s) => 8 + s.len(),
        }
    }

    /// Type discriminant used for cross-type ordering and hashing.
    fn tag(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Date(_) => 5,
        }
    }

    /// Feeds the value into a stable hasher (used for hash-partitioning and
    /// for data checksums in correctness tests). Int and Float that compare
    /// equal may hash differently — we never mix numeric types within one
    /// column, so this is fine.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        h.write_u8(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => h.write_u8(*b as u8),
            Value::Int(i) => h.write_u64(*i as u64),
            Value::Float(f) => h.write_u64(f.to_bits()),
            Value::Str(s) => h.write_str(s),
            Value::Date(d) => h.write_u32(*d as u32),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: NULL < Bool < numeric (Int/Float compared numerically
    /// against each other) < Str < Date. Floats use IEEE total ordering so
    /// NaN is ordered (greatest) instead of poisoning sorts.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => total_f64(*a).cmp(&total_f64(*b)),
            (Int(a), Float(b)) => total_f64(*a as f64).cmp(&total_f64(*b)),
            (Float(a), Int(b)) => total_f64(*a).cmp(&total_f64(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (a, b) => a.tag().cmp(&b.tag()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.tag());
        match self {
            Value::Null => {}
            Value::Bool(b) => state.write_u8(*b as u8),
            Value::Int(i) => state.write_i64(*i),
            Value::Float(f) => state.write_u64(f.to_bits()),
            Value::Str(s) => state.write(s.as_bytes()),
            Value::Date(d) => state.write_i32(*d),
        }
    }
}

/// Maps an `f64` to a sign-magnitude integer preserving IEEE total order.
fn total_f64(f: f64) -> i64 {
    let bits = f.to_bits() as i64;
    bits ^ (((bits >> 63) as u64) >> 1) as i64
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Date(d) => write!(f, "date({d})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scope_common::hash::SipHasher24;

    #[test]
    fn total_order_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Str("a".into()) < Value::Str("b".into()));
        assert!(Value::Float(1.5) < Value::Float(2.0));
        assert!(Value::Null < Value::Int(i64::MIN));
    }

    #[test]
    fn numeric_cross_compare() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_is_ordered() {
        let nan = Value::Float(f64::NAN);
        assert!(Value::Float(f64::INFINITY) < nan);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        let mut v = [nan.clone(), Value::Float(1.0), Value::Float(-1.0)];
        v.sort(); // must not panic
        assert_eq!(v[0], Value::Float(-1.0));
    }

    #[test]
    fn neg_zero_and_pos_zero() {
        // IEEE total order distinguishes -0.0 < +0.0; acceptable for keys.
        assert!(Value::Float(-0.0) < Value::Float(0.0));
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Date(10).as_i64(), Some(10));
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Null.is_true());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Null.byte_size(), 1);
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::Str("abc".into()).byte_size(), 11);
    }

    #[test]
    fn stable_hash_distinguishes() {
        fn h(v: &Value) -> u64 {
            let mut s = SipHasher24::new_with_keys(1, 2);
            v.stable_hash_into(&mut s);
            s.finish()
        }
        assert_ne!(h(&Value::Int(1)), h(&Value::Int(2)));
        assert_ne!(h(&Value::Null), h(&Value::Bool(false)));
        assert_eq!(h(&Value::Str("ab".into())), h(&Value::Str("ab".into())));
    }

    #[test]
    fn display_round_trip_sanity() {
        assert_eq!(Value::from(5i64).to_string(), "5");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Date(3).to_string(), "date(3)");
    }

    #[test]
    fn data_type_names() {
        assert_eq!(DataType::Int.name(), "int");
        assert_eq!(Value::Float(0.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::Null.data_type(), None);
    }
}
