//! Output physical properties: partitioning and sort order.
//!
//! Physical design is a first-class concern in CloudViews (paper Section
//! 5.3): a materialized view whose partitioning/sorting does not match its
//! consumers forces extra Exchange/Sort steps that can erase the reuse gains.
//! The analyzer mines the *output physical properties* of each overlapping
//! subgraph and uses them as the view's physical design.

use std::sync::{Arc, OnceLock};

use scope_common::hash::SipHasher24;
use scope_common::intern::SharedPool;

/// Sort direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum SortDir {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One sort key: a column position and a direction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct SortKey {
    /// Column position in the operator's output schema.
    pub col: usize,
    /// Direction.
    pub dir: SortDir,
}

impl SortKey {
    /// Ascending key on `col`.
    pub fn asc(col: usize) -> Self {
        SortKey {
            col,
            dir: SortDir::Asc,
        }
    }

    /// Descending key on `col`.
    pub fn desc(col: usize) -> Self {
        SortKey {
            col,
            dir: SortDir::Desc,
        }
    }
}

/// A (possibly empty) ordered list of sort keys.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct SortOrder(pub Vec<SortKey>);

impl SortOrder {
    /// The unsorted order.
    pub fn none() -> Self {
        SortOrder(Vec::new())
    }

    /// Ascending order on the listed columns.
    pub fn asc(cols: &[usize]) -> Self {
        SortOrder(cols.iter().map(|&c| SortKey::asc(c)).collect())
    }

    /// True when no order is specified.
    pub fn is_none(&self) -> bool {
        self.0.is_empty()
    }

    /// True when `self` is a prefix of (or equal to) `other` — a stream
    /// sorted by `other` satisfies a requirement of `self`.
    pub fn satisfied_by(&self, delivered: &SortOrder) -> bool {
        self.0.len() <= delivered.0.len() && self.0.iter().zip(&delivered.0).all(|(a, b)| a == b)
    }

    /// Leading columns of the order.
    pub fn columns(&self) -> Vec<usize> {
        self.0.iter().map(|k| k.col).collect()
    }

    /// Feeds into a stable hasher.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        h.write_u64(self.0.len() as u64);
        for k in &self.0 {
            h.write_u64(k.col as u64);
            h.write_u8(matches!(k.dir, SortDir::Desc) as u8);
        }
    }
}

/// How rows are distributed across partitions.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Partitioning {
    /// All rows in a single partition.
    Single,
    /// Hash-partitioned on the listed columns into `parts` partitions.
    Hash {
        /// Partitioning columns.
        cols: Vec<usize>,
        /// Number of partitions.
        parts: usize,
    },
    /// Range-partitioned on one column into `parts` partitions (boundaries
    /// chosen at execution time by sampling).
    Range {
        /// Partitioning column.
        col: usize,
        /// Number of partitions.
        parts: usize,
    },
    /// Round-robin into `parts` partitions (no column guarantee).
    RoundRobin {
        /// Number of partitions.
        parts: usize,
    },
    /// Unknown/no guarantee (e.g. raw scan output as stored).
    Any,
}

impl Partitioning {
    /// Number of partitions, when determined.
    pub fn parts(&self) -> Option<usize> {
        match self {
            Partitioning::Single => Some(1),
            Partitioning::Hash { parts, .. }
            | Partitioning::Range { parts, .. }
            | Partitioning::RoundRobin { parts } => Some(*parts),
            Partitioning::Any => None,
        }
    }

    /// True when a stream with `delivered` distribution satisfies a
    /// requirement of `self`.
    ///
    /// `Any` is satisfied by everything. `Hash` requires the same columns
    /// and part count. `Single` only by `Single`.
    pub fn satisfied_by(&self, delivered: &Partitioning) -> bool {
        match self {
            Partitioning::Any => true,
            other => other == delivered,
        }
    }

    /// Short display string.
    pub fn describe(&self) -> String {
        match self {
            Partitioning::Single => "single".into(),
            Partitioning::Hash { cols, parts } => format!("hash{cols:?}x{parts}"),
            Partitioning::Range { col, parts } => format!("range[{col}]x{parts}"),
            Partitioning::RoundRobin { parts } => format!("rr x{parts}"),
            Partitioning::Any => "any".into(),
        }
    }

    /// Feeds into a stable hasher.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        match self {
            Partitioning::Single => h.write_u8(0),
            Partitioning::Hash { cols, parts } => {
                h.write_u8(1);
                h.write_u64(cols.len() as u64);
                for c in cols {
                    h.write_u64(*c as u64);
                }
                h.write_u64(*parts as u64);
            }
            Partitioning::Range { col, parts } => {
                h.write_u8(2);
                h.write_u64(*col as u64);
                h.write_u64(*parts as u64);
            }
            Partitioning::RoundRobin { parts } => {
                h.write_u8(3);
                h.write_u64(*parts as u64);
            }
            Partitioning::Any => h.write_u8(4),
        }
    }
}

/// Combined output physical properties of an operator or view.
#[derive(Clone, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub struct PhysicalProps {
    /// Row distribution across partitions.
    pub partitioning: Partitioning,
    /// Within-partition sort order.
    pub sort: SortOrder,
}

impl PhysicalProps {
    /// No guarantees.
    pub fn any() -> Self {
        PhysicalProps {
            partitioning: Partitioning::Any,
            sort: SortOrder::none(),
        }
    }

    /// Single partition, unsorted.
    pub fn single() -> Self {
        PhysicalProps {
            partitioning: Partitioning::Single,
            sort: SortOrder::none(),
        }
    }

    /// Hash-partitioned, unsorted.
    pub fn hashed(cols: Vec<usize>, parts: usize) -> Self {
        PhysicalProps {
            partitioning: Partitioning::Hash { cols, parts },
            sort: SortOrder::none(),
        }
    }

    /// True when `delivered` satisfies the requirement `self`.
    pub fn satisfied_by(&self, delivered: &PhysicalProps) -> bool {
        self.partitioning.satisfied_by(&delivered.partitioning)
            && self.sort.satisfied_by(&delivered.sort)
    }

    /// Feeds into a stable hasher.
    pub fn stable_hash_into(&self, h: &mut SipHasher24) {
        self.partitioning.stable_hash_into(h);
        self.sort.stable_hash_into(h);
    }

    /// Short display string, e.g. `hash[0]x8 sort[0asc]`.
    pub fn describe(&self) -> String {
        if self.sort.is_none() {
            self.partitioning.describe()
        } else {
            let keys: Vec<String> = self
                .sort
                .0
                .iter()
                .map(|k| {
                    format!(
                        "{}{}",
                        k.col,
                        if k.dir == SortDir::Asc { "asc" } else { "desc" }
                    )
                })
                .collect();
            format!("{} sort[{}]", self.partitioning.describe(), keys.join(","))
        }
    }
}

impl Default for PhysicalProps {
    fn default() -> Self {
        PhysicalProps::any()
    }
}

/// The process-global hash-consing pool for delivered property shapes.
///
/// A workload has a handful of distinct `PhysicalProps` values but emits one
/// per enumerated subgraph per compiled job; sharing them behind `Arc`s
/// turns that per-node clone churn into a pointer copy. The pool only grows
/// (shapes are tiny and the universe is bounded by the workload's templates).
pub fn shared_props(props: PhysicalProps) -> Arc<PhysicalProps> {
    static POOL: OnceLock<SharedPool<PhysicalProps>> = OnceLock::new();
    POOL.get_or_init(SharedPool::new).intern(props)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_prefix_satisfaction() {
        let req = SortOrder::asc(&[0]);
        let delivered = SortOrder::asc(&[0, 1]);
        assert!(req.satisfied_by(&delivered));
        assert!(!delivered.satisfied_by(&req));
        assert!(SortOrder::none().satisfied_by(&req));
        // Direction matters.
        let desc = SortOrder(vec![SortKey::desc(0)]);
        assert!(!req.satisfied_by(&desc));
    }

    #[test]
    fn partitioning_satisfaction() {
        let h8 = Partitioning::Hash {
            cols: vec![0],
            parts: 8,
        };
        let h4 = Partitioning::Hash {
            cols: vec![0],
            parts: 4,
        };
        let h8b = Partitioning::Hash {
            cols: vec![1],
            parts: 8,
        };
        assert!(Partitioning::Any.satisfied_by(&h8));
        assert!(h8.satisfied_by(&h8.clone()));
        assert!(!h8.satisfied_by(&h4));
        assert!(!h8.satisfied_by(&h8b));
        assert!(!Partitioning::Single.satisfied_by(&h8));
        assert!(Partitioning::Single.satisfied_by(&Partitioning::Single));
    }

    #[test]
    fn parts_counts() {
        assert_eq!(Partitioning::Single.parts(), Some(1));
        assert_eq!(
            Partitioning::Hash {
                cols: vec![],
                parts: 16
            }
            .parts(),
            Some(16)
        );
        assert_eq!(Partitioning::Any.parts(), None);
    }

    #[test]
    fn props_combined_satisfaction() {
        let req = PhysicalProps {
            partitioning: Partitioning::Hash {
                cols: vec![0],
                parts: 4,
            },
            sort: SortOrder::asc(&[0]),
        };
        let exact = req.clone();
        assert!(req.satisfied_by(&exact));
        let unsorted = PhysicalProps::hashed(vec![0], 4);
        assert!(!req.satisfied_by(&unsorted));
        assert!(PhysicalProps::any().satisfied_by(&unsorted));
    }

    #[test]
    fn stable_hash_distinguishes_designs() {
        use scope_common::hash::SipHasher24;
        fn h(p: &PhysicalProps) -> u64 {
            let mut s = SipHasher24::new_with_keys(0, 0);
            p.stable_hash_into(&mut s);
            s.finish()
        }
        let a = PhysicalProps::hashed(vec![0], 8);
        let b = PhysicalProps::hashed(vec![0], 16);
        let c = PhysicalProps::hashed(vec![1], 8);
        assert_ne!(h(&a), h(&b));
        assert_ne!(h(&a), h(&c));
        assert_eq!(h(&a), h(&PhysicalProps::hashed(vec![0], 8)));
    }

    #[test]
    fn describe_strings() {
        assert_eq!(PhysicalProps::single().describe(), "single");
        let p = PhysicalProps {
            partitioning: Partitioning::Hash {
                cols: vec![0],
                parts: 8,
            },
            sort: SortOrder(vec![SortKey::desc(2)]),
        };
        assert_eq!(p.describe(), "hash[0]x8 sort[2desc]");
    }
}
