//! Subsumption-cascade benchmark (DESIGN.md §12).
//!
//! Measures what tier-2 semantic matching adds on top of exact-signature
//! reuse, recorded in `BENCH_subsumption.json` at the repo root:
//!
//! 1. **Hit-rate uplift** — a workload of recurring query families where
//!    each family materializes one wide view and then submits one exact
//!    repeat (tier-1 territory) plus several *semantically* matching
//!    consumers (tighter filter bounds — invisible to exact matching).
//!    Exact-only reuse serves only the repeats; the cascade must also
//!    serve every consumer through a compensation plan.
//! 2. **Lookup-latency bound** — the cascade's per-job simulated lookup
//!    latency (base metadata round-trip + tier-2 candidate scan) must keep
//!    p99 within 10% of the exact-only configuration.
//! 3. **Equivalence** — every compensated answer matches a reuse-disabled
//!    baseline run bit for bit.
//!
//! The hit counts and simulated latencies are deterministic, so the gated
//! metrics are noise-free; wall-clock totals are recorded as context only.
//! `BENCH_QUICK=1` shrinks the family count for CI (the artifact notes
//! which variant produced it). Not a criterion harness: the bench drives
//! whole service instances end to end and writes its own artifact.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cloudviews::analyzer::SelectedView;
use cloudviews::{CloudViews, RunMode};
use scope_common::ids::{ClusterId, DatasetId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::time::SimDuration;
use scope_engine::data::Table;
use scope_engine::job::JobSpec;
use scope_engine::optimizer::Annotation;
use scope_engine::storage::StorageManager;
use scope_plan::{DataType, Expr, PhysicalProps, PlanBuilder, QueryGraph, Schema, Value};
use scope_signature::sign_graph;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
}

fn table(rows: usize) -> Table {
    let data = (0..rows)
        .map(|i| {
            let x = scope_common::sip64(format!("subbench/{i}").as_bytes());
            vec![
                Value::Int((x % 11) as i64),
                Value::Int(((x >> 8) % 100) as i64),
            ]
        })
        .collect();
    Table::single(schema(), data)
}

/// `scan(family stream) → filter(v >= bound) → output`.
fn family_graph(family: usize, bound: i64, out: &str) -> QueryGraph {
    let mut b = PlanBuilder::new();
    let s = b.table_scan(
        DatasetId::new(family as u64 + 1),
        format!("subbench/f{family}.ss"),
        schema(),
    );
    let f = b.filter(s, Expr::col(1).ge(Expr::lit(bound)));
    b.output(f, out).build().unwrap()
}

fn spec(id: u64, template: u64, graph: QueryGraph) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        cluster: ClusterId::new(0),
        vc: VcId::new(0),
        user: UserId::new(0),
        template: TemplateId::new(template),
        instance: 0,
        graph,
    }
}

struct Workload {
    selected: Vec<SelectedView>,
    builders: Vec<JobSpec>,
    /// One exact repeat per family followed by the subsumable consumers.
    measure: Vec<JobSpec>,
    consumers: usize,
}

fn workload(families: usize, consumers_per_family: usize) -> Workload {
    let mut selected = Vec::new();
    let mut builders = Vec::new();
    let mut measure = Vec::new();
    let mut id = 0u64;
    for f in 0..families {
        let view_bound = (f % 20) as i64;
        let view_graph = family_graph(f, view_bound, "view");
        let signed = sign_graph(&view_graph).unwrap();
        let root = NodeId::new(1);
        selected.push(SelectedView {
            annotation: Annotation {
                normalized: signed.of(root).normalized,
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(86_400),
                avg_cpu: SimDuration::from_secs(3_600),
                avg_rows: 100,
                avg_bytes: 10_000,
            },
            input_tags: vec![scope_common::Symbol::intern(&format!("subbench/f{f}.ss"))],
            utility: SimDuration::from_secs(10),
            frequency: 2,
            precise_last_seen: signed.of(root).precise,
        });
        id += 1;
        builders.push(spec(id, f as u64, view_graph.clone()));
        id += 1;
        measure.push(spec(id, f as u64, view_graph));
        for c in 0..consumers_per_family {
            id += 1;
            measure.push(spec(
                id,
                (families + f * consumers_per_family + c) as u64,
                family_graph(f, view_bound + 1 + c as i64, "query"),
            ));
        }
    }
    Workload {
        selected,
        builders,
        measure,
        consumers: families * consumers_per_family,
    }
}

struct RunNumbers {
    reuse_hits: usize,
    tier2_hits: usize,
    p99_lookup_micros: u64,
    wall_micros: u128,
    checksums: Vec<HashMap<String, u64>>,
}

/// Builds the views, then runs the measure wave, collecting hit counts and
/// the p99 simulated lookup latency of the measure jobs.
fn run(w: &Workload, rows: usize, subsumption: bool, mode: RunMode) -> RunNumbers {
    let storage = Arc::new(StorageManager::new());
    let t = table(rows);
    for f in 0..w.builders.len() {
        storage.put_dataset(DatasetId::new(f as u64 + 1), t.clone());
    }
    let cv = CloudViews::builder(storage)
        .subsumption(subsumption)
        .build();
    cv.metadata.load_annotations(&w.selected);
    let built: usize = cv
        .run_sequence(&w.builders, mode)
        .unwrap()
        .iter()
        .map(|r| r.views_built.len())
        .sum();
    if mode == RunMode::CloudViews {
        assert_eq!(built, w.builders.len(), "every family must build its view");
    }
    let wall = Instant::now();
    let reports = cv.run_sequence(&w.measure, mode).unwrap();
    let wall_micros = wall.elapsed().as_micros();
    let mut lookups: Vec<u64> = reports.iter().map(|r| r.lookup_latency.micros()).collect();
    lookups.sort_unstable();
    let p99 = lookups[((lookups.len() as f64 * 0.99).ceil() as usize - 1).min(lookups.len() - 1)];
    RunNumbers {
        reuse_hits: reports
            .iter()
            .filter(|r| !r.views_reused.is_empty())
            .count(),
        tier2_hits: reports.iter().map(|r| r.optimizer.tier2_reused).sum(),
        p99_lookup_micros: p99,
        wall_micros,
        checksums: reports.iter().map(|r| r.output_checksums.clone()).collect(),
    }
}

fn main() {
    let quick = quick();
    let families = if quick { 8 } else { 24 };
    let consumers_per_family = if quick { 2 } else { 4 };
    let rows = if quick { 200 } else { 1_000 };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let w = workload(families, consumers_per_family);
    let jobs = w.measure.len();

    let baseline = run(&w, rows, false, RunMode::Baseline);
    let exact = run(&w, rows, false, RunMode::CloudViews);
    let cascade = run(&w, rows, true, RunMode::CloudViews);

    let tier1_hit_rate = exact.reuse_hits as f64 / jobs as f64;
    let cascade_hit_rate = cascade.reuse_hits as f64 / jobs as f64;
    let tier2_hit_rate = cascade.tier2_hits as f64 / jobs as f64;
    let uplift = cascade_hit_rate - tier1_hit_rate;
    let p99_ratio = cascade.p99_lookup_micros as f64 / exact.p99_lookup_micros.max(1) as f64;
    let results_equivalent =
        baseline.checksums == exact.checksums && baseline.checksums == cascade.checksums;

    println!(
        "subsumption/exact    hits {:>3}/{jobs}  p99 lookup {:>7} µs  ({} µs wall)",
        exact.reuse_hits, exact.p99_lookup_micros, exact.wall_micros,
    );
    println!(
        "subsumption/cascade  hits {:>3}/{jobs}  p99 lookup {:>7} µs  ({} µs wall)  tier2 {}",
        cascade.reuse_hits, cascade.p99_lookup_micros, cascade.wall_micros, cascade.tier2_hits,
    );
    println!(
        "subsumption/uplift   +{:.1}% hit rate  p99 ratio {:.3}  equivalent={}",
        uplift * 100.0,
        p99_ratio,
        results_equivalent,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"subsumption\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"families\": {families},\n",
            "  \"consumers_per_family\": {cpf},\n",
            "  \"measure_jobs\": {jobs},\n",
            "  \"tier1_hit_rate\": {t1:.3},\n",
            "  \"tier2_hit_rate\": {t2:.3},\n",
            "  \"cascade_hit_rate\": {ch:.3},\n",
            "  \"hit_rate_uplift\": {up:.3},\n",
            "  \"uplift_positive\": {upok},\n",
            "  \"exact_p99_lookup_micros\": {ep99},\n",
            "  \"cascade_p99_lookup_micros\": {cp99},\n",
            "  \"p99_sim_ratio\": {pr:.4},\n",
            "  \"p99_within_10pct\": {prok},\n",
            "  \"results_equivalent\": {eq},\n",
            "  \"exact_wall_micros\": {ew},\n",
            "  \"cascade_wall_micros\": {cw}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        families = families,
        cpf = consumers_per_family,
        jobs = jobs,
        t1 = tier1_hit_rate,
        t2 = tier2_hit_rate,
        ch = cascade_hit_rate,
        up = uplift,
        upok = uplift > 0.0,
        ep99 = exact.p99_lookup_micros,
        cp99 = cascade.p99_lookup_micros,
        pr = p99_ratio,
        prok = p99_ratio <= 1.10,
        eq = results_equivalent,
        ew = exact.wall_micros,
        cw = cascade.wall_micros,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_subsumption.json");
    std::fs::write(path, &json).unwrap();
    println!("subsumption: wrote {path}");

    assert!(
        results_equivalent,
        "compensated outputs diverged from baseline"
    );
    assert_eq!(
        cascade.tier2_hits, w.consumers,
        "every subsumable consumer must take a tier-2 rewrite"
    );
    assert!(
        uplift > 0.0,
        "cascade must lift the hit rate over exact-only (tier1 {tier1_hit_rate:.3}, \
         cascade {cascade_hit_rate:.3})"
    );
    assert!(
        p99_ratio <= 1.10,
        "tier-2 scan pushed p99 lookup latency {p99_ratio:.3}x over exact-only (bound 1.10x)"
    );
}
