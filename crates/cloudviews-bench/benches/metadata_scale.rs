//! Metadata-service scalability benchmark (DESIGN.md §10).
//!
//! Measures the sharded hot path against the global-lock layout it
//! replaced, recorded in `BENCH_metadata_scale.json` at the repo root so
//! the bench trajectory is tracked in-tree:
//!
//! 1. **Contention curve** — 1/2/4/8 threads of mixed traffic (lookups,
//!    proposals, registrations, janitor sweeps) against a 16-shard service
//!    vs. a 1-shard service (`shards = 1` is exactly the old global-lock
//!    layout: every signature and tag lands on the same `RwLock`s).
//!    Targets: single-threaded the sharded service stays within 10% of the
//!    baseline (sharding must not tax the uncontended path); at 4+ threads
//!    it is ≥ 2× faster — asserted only on hosts with ≥ 4 cores, since
//!    below that the threads time-slice one core and the lock layout can't
//!    matter.
//! 2. **Leak bound** — the dead-view regression: recurring instances with
//!    expiring views, swept by the incremental janitor only, must leave
//!    every cardinality bounded by the loaded analysis and drain to zero
//!    once the GC horizon lapses.
//!
//! `BENCH_QUICK=1` shrinks the op counts for CI (the artifact notes which
//! variant produced it). Not a criterion harness: the thread pools must be
//! timed wall-clock as one unit, so the bench times itself and writes its
//! own artifact.

use std::sync::Arc;
use std::time::Instant;

use cloudviews::analyzer::SelectedView;
use cloudviews::{MetadataService, ReportRequest};
use scope_common::hash::Sig128;
use scope_common::ids::JobId;
use scope_common::time::{SimClock, SimDuration};
use scope_common::Symbol;
use scope_engine::optimizer::{Annotation, AvailableView};
use scope_plan::PhysicalProps;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Annotations per service; each carries its own tag plus one tag shared
/// by its 16-entry group, so a lookup fans out to ~17 candidates.
const ANNOTATIONS: usize = 256;
const GROUP: usize = 16;

fn fixture() -> Vec<SelectedView> {
    (0..ANNOTATIONS)
        .map(|i| SelectedView {
            annotation: Annotation {
                normalized: scope_common::sip128(format!("ms/norm/{i}").as_bytes()),
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(3_600),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1_000,
            },
            input_tags: vec![
                Symbol::intern(&format!("ms/tag/{i}")),
                Symbol::intern(&format!("ms/group/{}", i / GROUP)),
            ],
            utility: SimDuration::from_secs(30),
            frequency: 2,
            precise_last_seen: Sig128::ZERO,
        })
        .collect()
}

fn service(shards: usize, selected: &[SelectedView]) -> MetadataService {
    let m = MetadataService::with_shards(Arc::new(SimClock::new()), 1, shards);
    m.load_annotations(selected);
    m
}

/// One thread's slice of the mixed workload: every op is a lookup; every
/// second op proposes and registers a thread-unique view (write traffic on
/// the views, locks, and annotation maps); every 64th runs the janitor.
fn worker(m: &MetadataService, selected: &[SelectedView], tid: usize, ops: usize) {
    let job = JobId::new(tid as u64);
    let now = m.clock().now();
    for i in 0..ops {
        let k = (tid * 17 + i) % ANNOTATIONS;
        let s = &selected[k];
        let tags = [
            s.input_tags[0],
            selected[(k + GROUP) % ANNOTATIONS].input_tags[1],
        ];
        let r = m.relevant_views_for(job, &tags).unwrap();
        assert!(!r.annotations.is_empty(), "fixture lookup must hit");
        if i % 2 == 0 {
            let precise = Sig128::new(
                (tid as u64) * 1_000_003 + i as u64,
                (i as u64) * 2_654_435_761 + tid as u64,
            );
            m.propose_now(precise, job, SimDuration::from_secs(60))
                .unwrap();
            m.register(ReportRequest::new(
                AvailableView {
                    precise,
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                s.annotation.normalized,
                job,
                now,
                now + SimDuration::from_secs(100_000),
            ));
        }
        if i % 64 == 0 {
            m.purge_next_shard();
        }
    }
}

/// Wall-clock micros for `threads` workers of `ops` mixed ops each against
/// a fresh `shards`-way service.
fn bench_threads(shards: usize, selected: &[SelectedView], threads: usize, ops: usize) -> u128 {
    let m = service(shards, selected);
    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            let m = &m;
            scope.spawn(move || worker(m, selected, tid, ops));
        }
    });
    let wall = t.elapsed().as_micros();
    // The workload itself is part of the correctness story: every
    // registered view must be visible and every annotation intact.
    assert_eq!(m.num_views(), threads * ops.div_ceil(2));
    assert_eq!(m.num_annotations(), ANNOTATIONS);
    wall
}

struct CurvePoint {
    threads: usize,
    total_ops: usize,
    baseline_micros: u128,
    sharded_micros: u128,
}

struct LeakNumbers {
    instances: usize,
    max_views_observed: usize,
    views_final: usize,
    annotations_final: usize,
    inverted_final: usize,
}

/// Recurring instances registering views that expire before the next
/// instance, swept only by the round-robin janitor — the regression for
/// the dead-view leak this bench's service replaced.
fn bench_leak(selected: &[SelectedView], instances: usize) -> LeakNumbers {
    const K: usize = 4;
    let clock = Arc::new(SimClock::new());
    let m = MetadataService::with_shards(Arc::clone(&clock), 1, 16);
    m.load_annotations(&selected[..K]);
    let mut max_views = 0usize;
    for instance in 0..instances {
        let now = clock.now();
        for (k, s) in selected[..K].iter().enumerate() {
            m.register(ReportRequest::new(
                AvailableView {
                    precise: scope_common::sip128(format!("leak/{instance}/{k}").as_bytes()),
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                s.annotation.normalized,
                JobId::new((instance * K + k) as u64),
                now,
                now + SimDuration::from_secs(50),
            ));
        }
        clock.advance(SimDuration::from_secs(100));
        m.purge_next_shard();
        max_views = max_views.max(m.num_views());
    }
    // Horizon: the last views expire +50s, annotations linger one ttl more.
    clock.advance(SimDuration::from_secs(50 + 3_600 + 1));
    m.purge_expired();
    LeakNumbers {
        instances,
        max_views_observed: max_views,
        views_final: m.num_views(),
        annotations_final: m.num_annotations(),
        inverted_final: m.num_inverted_entries(),
    }
}

fn ratio(num: u128, den: u128) -> f64 {
    num as f64 / den.max(1) as f64
}

fn main() {
    let quick = quick();
    let ops = if quick { 2_000 } else { 20_000 };
    let leak_instances = if quick { 200 } else { 1_000 };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let selected = fixture();

    // Warm both layouts once so allocator and interner state is identical
    // before any timed run.
    bench_threads(1, &selected, 1, ops / 10);
    bench_threads(16, &selected, 1, ops / 10);

    let thread_counts = [1usize, 2, 4, 8];
    let curve: Vec<CurvePoint> = thread_counts
        .iter()
        .map(|&threads| {
            let baseline_micros = bench_threads(1, &selected, threads, ops);
            let sharded_micros = bench_threads(16, &selected, threads, ops);
            CurvePoint {
                threads,
                total_ops: threads * ops,
                baseline_micros,
                sharded_micros,
            }
        })
        .collect();
    for p in &curve {
        println!(
            "metadata_scale/{} thread(s)   global-lock {:>9} µs   sharded {:>9} µs   {:.2}x  ({} ops)",
            p.threads,
            p.baseline_micros,
            p.sharded_micros,
            ratio(p.baseline_micros, p.sharded_micros),
            p.total_ops,
        );
    }

    let leak = bench_leak(&selected, leak_instances);
    let leak_bounded = leak.max_views_observed <= 4 * 17
        && leak.views_final == 0
        && leak.annotations_final == 0
        && leak.inverted_final == 0;
    println!(
        "metadata_scale/leak              {} instances  max {} live views  final {}/{}/{}  bounded={}",
        leak.instances,
        leak.max_views_observed,
        leak.views_final,
        leak.annotations_final,
        leak.inverted_final,
        leak_bounded,
    );

    let single_thread_ratio = ratio(curve[0].baseline_micros, curve[0].sharded_micros);
    let speedup_at_4 = curve
        .iter()
        .find(|p| p.threads == 4)
        .map(|p| ratio(p.baseline_micros, p.sharded_micros))
        .unwrap();
    // Below 4 cores the threads time-slice one another and the lock layout
    // cannot show through, so the 2x contention target is not applicable.
    let multi_core_target_applicable = cores >= 4;

    let curve_entries = curve
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "    {{ \"threads\": {}, \"total_ops\": {}, ",
                    "\"global_lock_wall_micros\": {}, \"sharded_wall_micros\": {}, ",
                    "\"speedup\": {:.3} }}"
                ),
                p.threads,
                p.total_ops,
                p.baseline_micros,
                p.sharded_micros,
                ratio(p.baseline_micros, p.sharded_micros)
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"metadata_scale\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"global_lock_shards\": 1,\n",
            "  \"sharded_shards\": 16,\n",
            "  \"ops_per_thread\": {ops},\n",
            "  \"curve\": [\n{curve}\n  ],\n",
            "  \"single_thread_ratio\": {st:.3},\n",
            "  \"single_thread_within_10pct\": {stok},\n",
            "  \"speedup_at_4_threads\": {s4:.3},\n",
            "  \"multi_core_target_applicable\": {mapp},\n",
            "  \"meets_2x_target\": {m2x},\n",
            "  \"leak\": {{\n",
            "    \"instances\": {linst},\n",
            "    \"max_views_observed\": {lmax},\n",
            "    \"views_final\": {lviews},\n",
            "    \"annotations_final\": {lann},\n",
            "    \"inverted_entries_final\": {linv},\n",
            "    \"bounded\": {lbound}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        ops = ops,
        curve = curve_entries,
        st = single_thread_ratio,
        stok = single_thread_ratio >= 0.9,
        s4 = speedup_at_4,
        mapp = multi_core_target_applicable,
        m2x = speedup_at_4 >= 2.0,
        linst = leak.instances,
        lmax = leak.max_views_observed,
        lviews = leak.views_final,
        lann = leak.annotations_final,
        linv = leak.inverted_final,
        lbound = leak_bounded,
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_metadata_scale.json"
    );
    std::fs::write(path, &json).unwrap();
    println!("metadata_scale: wrote {path}");

    assert!(
        leak_bounded,
        "dead-view leak: {} views linger",
        leak.views_final
    );
    assert!(
        single_thread_ratio >= 0.9,
        "sharding must not tax the uncontended path: single-thread sharded \
         ran at {single_thread_ratio:.2}x the global-lock layout (need >= 0.90x)"
    );
    if multi_core_target_applicable {
        assert!(
            speedup_at_4 >= 2.0,
            "sharded service must be >= 2x the global lock at 4 threads on \
             {cores} cores (got {speedup_at_4:.2}x)"
        );
    }
}
