//! Microbenchmark: metadata-service operations (paper Section 6.1 / 7.3).
//!
//! The paper reports ~19 ms per lookup against AzureSQL; our in-process
//! service is orders of magnitude faster (that latency is *modeled*, see
//! `MetadataService::lookup_latency`). This bench keeps the in-process cost
//! honest: per-job lookups against a loaded inverted index, and the
//! propose/report lock protocol.

use std::sync::Arc;

use cloudviews::analyzer::SelectedView;
use cloudviews::{MetadataService, ReportRequest};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_common::hash::sip128;
use scope_common::ids::JobId;
use scope_common::intern::Symbol;
use scope_common::telemetry::Telemetry;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_engine::optimizer::{Annotation, AvailableView};
use scope_plan::PhysicalProps;

fn selected(i: usize) -> SelectedView {
    SelectedView {
        annotation: Annotation {
            normalized: sip128(format!("norm{i}").as_bytes()),
            props: PhysicalProps::hashed(vec![0], 8),
            ttl: SimDuration::from_secs(86_400),
            avg_cpu: SimDuration::from_secs(10),
            avg_rows: 1_000,
            avg_bytes: 100_000,
        },
        input_tags: vec![Symbol::intern(&format!("in/stream{}.ss", i % 50))],
        utility: SimDuration::from_secs(30),
        frequency: 4,
        precise_last_seen: sip128(format!("precise{i}").as_bytes()),
    }
}

fn bench_metadata(c: &mut Criterion) {
    // Telemetry overhead contract: the instrumented lookup path with an
    // enabled sink must stay within a few percent of a disabled sink (the
    // production opt-out), and a missing sink shows the absolute floor.
    for (label, telemetry) in [
        ("telemetry_on", Some(Telemetry::new())),
        ("telemetry_off", Some(Telemetry::disabled())),
        ("telemetry_none", None),
    ] {
        let mut group = c.benchmark_group(format!("metadata_lookup/{label}"));
        for n_annotations in [10usize, 100, 1_000] {
            let svc = MetadataService::new(Arc::new(SimClock::new()), 5);
            svc.set_telemetry(telemetry.clone());
            let views: Vec<SelectedView> = (0..n_annotations).map(selected).collect();
            svc.load_annotations(&views);
            let tags: Vec<Symbol> = (0..5)
                .map(|i| Symbol::intern(&format!("in/stream{i}.ss")))
                .collect();
            group.bench_with_input(
                BenchmarkId::from_parameter(n_annotations),
                &tags,
                |b, tags| {
                    let mut i = 0u64;
                    b.iter(|| {
                        i += 1;
                        svc.relevant_views_for(JobId::new(i), std::hint::black_box(tags))
                            .unwrap()
                    })
                },
            );
        }
        group.finish();
    }

    c.bench_function("metadata_propose_report", |b| {
        let svc = MetadataService::new(Arc::new(SimClock::new()), 5);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let sig = sip128(&i.to_le_bytes());
            let lock = svc
                .propose_now(sig, JobId::new(i), SimDuration::from_secs(60))
                .unwrap();
            std::hint::black_box(lock);
            svc.report(ReportRequest::new(
                AvailableView {
                    precise: sig,
                    rows: 10,
                    bytes: 100,
                    props: PhysicalProps::any(),
                },
                sip128(format!("norm{i}").as_bytes()),
                JobId::new(i),
                SimTime::ZERO,
                SimTime::MAX,
            ))
            .unwrap();
        })
    });
}

criterion_group!(benches, bench_metadata);
criterion_main!(benches);
