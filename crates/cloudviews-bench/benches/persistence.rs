//! Durable-state recovery benchmark (PR 10 tentpole gate).
//!
//! Primes a durable [`CloudViews`] service with a recurring workload, then
//! measures cold-start recovery and records `BENCH_persistence.json` at the
//! repo root:
//!
//! 1. **Replay wall** — microseconds to rebuild the full in-memory state
//!    from the write-ahead log, normalized per 10k recovered units (WAL
//!    events + job records + view files) so the gate tracks per-record
//!    replay cost rather than workload size.
//! 2. **Snapshot speedup** — the same recovery after `snapshot_now()`
//!    compacted the log, as a ratio over full replay. Both sides run on
//!    the same host in the same process, so the ratio is noise-robust.
//! 3. **Fingerprint equality** — the recovered metadata catalog and
//!    analyzer state must hash identically to the pre-crash service
//!    (`MetadataService::fingerprint`, `AnalyzerState::fingerprint`).
//! 4. **Torn-tail recovery** — a partial frame appended to the live WAL
//!    (simulating a crash mid-write) must be dropped at the last clean
//!    record boundary without panicking or perturbing the fingerprints.
//!
//! `BENCH_QUICK=1` shrinks the workload for CI. Not a criterion harness:
//! recovery must be timed as a whole-service cold start against on-disk
//! state staged by earlier phases, so the bench times itself and writes
//! its own artifact.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use cloudviews::analyzer::{AnalyzerConfig, SelectionConstraints, SelectionPolicy};
use cloudviews::{CloudViews, DurableStore, RunMode};
use scope_engine::storage::StorageManager;
use scope_workload::dists::LogNormal;
use scope_workload::recurring::{ClusterSpec, RecurringWorkload, WorkloadConfig};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn workload(seed: u64) -> RecurringWorkload {
    RecurringWorkload::generate(WorkloadConfig {
        clusters: vec![ClusterSpec::tiny("persist")],
        seed,
        stream_rows: LogNormal::new(6.0, 0.5, 150.0, 1_500.0),
    })
    .unwrap()
}

fn analyzer_cfg() -> AnalyzerConfig {
    AnalyzerConfig {
        policy: SelectionPolicy::TopKUtility { k: 5 },
        constraints: SelectionConstraints {
            per_job_cap: Some(1),
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Opens (or recovers) a durable service rooted at `dir`. The snapshot
/// threshold is pinned to `u64::MAX` so the log only compacts when the
/// bench explicitly calls `snapshot_now()` — phases control compaction.
fn open_durable(dir: &Path) -> CloudViews {
    CloudViews::builder(Arc::new(StorageManager::new()))
        .incremental_analyzer(analyzer_cfg())
        .durable(dir)
        .snapshot_threshold(u64::MAX)
        .build()
}

/// The state signature recovery must reproduce exactly.
#[derive(PartialEq, Debug)]
struct Fingerprints {
    metadata: scope_common::hash::Sig128,
    analyzer: scope_common::hash::Sig128,
    records: usize,
}

fn fingerprints(cv: &CloudViews) -> Fingerprints {
    Fingerprints {
        metadata: cv.metadata.fingerprint(),
        analyzer: cv
            .analyzer
            .as_ref()
            .expect("analyzer installed")
            .state()
            .fingerprint(),
        records: cv.repo.records().len(),
    }
}

/// Appends a torn frame (declared length far beyond the bytes actually
/// written) to the highest-generation meta WAL, simulating a crash mid
/// `write_all`.
fn tear_meta_wal(dir: &Path) {
    let meta = dir.join("meta");
    let wal = std::fs::read_dir(&meta)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            name.strip_prefix("wal.")
                .and_then(|n| n.parse::<u64>().ok())
        })
        .max()
        .map(|g| meta.join(format!("wal.{g}")))
        .expect("no WAL generation found");
    let mut f = std::fs::OpenOptions::new().append(true).open(wal).unwrap();
    let mut torn = Vec::new();
    torn.extend_from_slice(&4096u32.to_le_bytes()); // frame claims 4 KiB...
    torn.extend_from_slice(&0xdead_beef_dead_beefu64.to_le_bytes());
    torn.extend_from_slice(&[0xAB; 57]); // ...but only 57 bytes landed
    f.write_all(&torn).unwrap();
}

fn main() {
    let quick = quick();
    let instances: u64 = if quick { 2 } else { 5 };
    // Analyzer-install / purge churn per instance: each round appends
    // LoadAnnotations + per-shard PurgeShard events, growing the WAL tail
    // the snapshot later compacts away (job records live in the keyed
    // store and are replayed on both paths, so the event tail is exactly
    // the state a snapshot saves).
    let churn: usize = if quick { 40 } else { 120 };
    let trials: usize = if quick { 2 } else { 3 };

    let dir: PathBuf =
        std::env::temp_dir().join(format!("cv-persistence-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: prime a durable service — every mutation is WAL-appended
    // before ack; no snapshot is taken (threshold = MAX), so the on-disk
    // state after this phase is snapshot-free pure log.
    let w = workload(42);
    let expected = {
        let cv = open_durable(&dir);
        for i in 0..instances {
            w.register_instance_data(0, i, &cv.storage, 1.0).unwrap();
            let jobs = w.jobs_for_instance(0, i).unwrap();
            let mode = if i == 0 {
                RunMode::Baseline
            } else {
                RunMode::CloudViews
            };
            cv.run_sequence(&jobs, mode).unwrap();
            let outcome = cv.analyze_round().unwrap();
            for _ in 0..churn {
                cv.install_analysis(&outcome);
                cv.purge_expired();
            }
        }
        fingerprints(&cv)
    };

    // Size the log for normalization (one throwaway decode pass).
    let (events, records, views) = {
        let (_store, recovered) = DurableStore::open(&dir, u64::MAX).unwrap();
        (
            recovered.events.len(),
            recovered.records.len(),
            recovered.views.len(),
        )
    };
    let units = (events + records + views).max(1) as u64;

    // Phase 2: full log replay — cold-start the service from WAL only.
    let mut replay_micros = u64::MAX;
    let mut fingerprints_equal = true;
    for _ in 0..trials {
        let t = Instant::now();
        let cv = open_durable(&dir);
        replay_micros = replay_micros.min(t.elapsed().as_micros() as u64);
        fingerprints_equal &= fingerprints(&cv) == expected;
    }
    let replay_per_10k = replay_micros.saturating_mul(10_000) / units;
    println!(
        "persistence/replay        {units:>9} units   {replay_micros} us   \
         {replay_per_10k} us/10k   fingerprints_equal={fingerprints_equal}"
    );

    // Phase 3: snapshot, then recover from snapshot + empty tail.
    {
        let cv = open_durable(&dir);
        assert!(cv.snapshot_now(), "explicit snapshot must not be skipped");
    }
    let mut snap_micros = u64::MAX;
    for _ in 0..trials {
        let t = Instant::now();
        let cv = open_durable(&dir);
        snap_micros = snap_micros.min(t.elapsed().as_micros() as u64);
        fingerprints_equal &= fingerprints(&cv) == expected;
    }
    let snapshot_speedup = replay_micros as f64 / snap_micros.max(1) as f64;
    println!(
        "persistence/snapshot      {units:>9} units   {snap_micros} us   \
         {snapshot_speedup:.2}x over full replay"
    );

    // Phase 4: torn tail — a partial frame after the snapshot must be
    // dropped cleanly; recovery neither panics nor drifts state.
    tear_meta_wal(&dir);
    let torn_tail_recovered = {
        let cv = open_durable(&dir);
        fingerprints(&cv) == expected
    };
    println!("persistence/torn-tail     recovered={torn_tail_recovered}");

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"persistence\",\n",
            "  \"quick\": {quick},\n",
            "  \"wal_events\": {events},\n",
            "  \"job_records\": {records},\n",
            "  \"view_files\": {views},\n",
            "  \"replay_micros_total\": {replay},\n",
            "  \"replay_micros_per_10k\": {per10k},\n",
            "  \"snapshot_recovery_micros\": {snap},\n",
            "  \"snapshot_speedup\": {speedup:.3},\n",
            "  \"fingerprints_equal\": {fp},\n",
            "  \"torn_tail_recovered\": {torn}\n",
            "}}\n"
        ),
        quick = quick,
        events = events,
        records = records,
        views = views,
        replay = replay_micros,
        per10k = replay_per_10k,
        snap = snap_micros,
        speedup = snapshot_speedup,
        fp = fingerprints_equal,
        torn = torn_tail_recovered,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persistence.json");
    std::fs::write(path, &json).unwrap();
    println!("persistence: wrote {path}");

    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        fingerprints_equal,
        "recovered state fingerprints diverged from the pre-crash service"
    );
    assert!(
        torn_tail_recovered,
        "torn WAL tail was not dropped at a clean record boundary"
    );
}
