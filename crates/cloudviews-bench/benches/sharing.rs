//! In-flight work-sharing benchmark (DESIGN.md §15).
//!
//! Drives [`CloudViews::run_windowed`] over bursty, heavy-tailed arrivals
//! with overlapping templates — the workload shape the daily analyzer loop
//! is structurally too late for (the shared view does not exist when the
//! wave arrives). Two arms over the *identical* arrival trace:
//!
//! 1. **views-only** — `SharingConfig { enabled: false }`: same admission
//!    windows, same pinned submission times, zero coordination. Every job
//!    recomputes the burst's common subgraph.
//! 2. **sharing** — the window coordinator elects one producer per common
//!    subgraph; followers await its early-materialized output.
//!
//! `BENCH_sharing.json` gates the paper-level claims: the coordinator must
//! deliver strictly more reuse hits and strictly lower total simulated
//! cluster CPU than the views-only baseline, with p99 follower wait as the
//! overhead metric and byte-identical outputs as the correctness floor.
//! All gated numbers are simulated and deterministic (arrival jitter and
//! burst sizes come from sip-hashes, not a live RNG); wall-clock totals are
//! context only. `BENCH_QUICK=1` shrinks the trace for CI.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use cloudviews::{CloudViews, JobArrival, PipelineOptions, RunMode, SharingConfig};
use scope_common::ids::{ClusterId, DatasetId, JobId, TemplateId, UserId, VcId};
use scope_common::time::SimDuration;
use scope_engine::data::Table;
use scope_engine::job::JobSpec;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, PlanBuilder, QueryGraph, Schema, Value};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Int)])
}

fn table(family: usize, rows: usize) -> Table {
    let data = (0..rows)
        .map(|i| {
            let x = scope_common::sip64(format!("sharebench/{family}/{i}").as_bytes());
            vec![
                Value::Int((x % 13) as i64),
                Value::Int(((x >> 8) % 1_000) as i64),
            ]
        })
        .collect();
    Table::single(schema(), data)
}

/// The family's shared subgraph — `scan → filter → aggregate` — plus a
/// per-job tail so the *jobs* differ while the subgraph stays byte-equal.
fn family_job(family: usize, variant: usize, out: &str) -> QueryGraph {
    let mut b = PlanBuilder::new();
    let s = b.table_scan(
        DatasetId::new(family as u64 + 1),
        format!("sharebench/f{family}.ss"),
        schema(),
    );
    let f = b.filter(s, Expr::col(1).ge(Expr::lit((family % 20) as i64)));
    let a = b.aggregate(f, vec![0], vec![AggExpr::new("n", AggFunc::Count, 1)]);
    let tail = if variant % 2 == 1 {
        b.filter(a, Expr::col(1).ge(Expr::lit(variant as i64 % 5)))
    } else {
        a
    };
    b.output(tail, out).build().unwrap()
}

/// A singleton with no shareable overlap (unique filter bound, no burst).
fn singleton_job(family: usize, id: u64) -> QueryGraph {
    let mut b = PlanBuilder::new();
    let s = b.table_scan(
        DatasetId::new(family as u64 + 1),
        format!("sharebench/f{family}.ss"),
        schema(),
    );
    let f = b.filter(s, Expr::col(1).ge(Expr::lit(500 + id as i64)));
    b.output(f, format!("solo-{id}")).build().unwrap()
}

fn spec(id: u64, template: u64, graph: QueryGraph) -> JobSpec {
    JobSpec {
        id: JobId::new(id),
        cluster: ClusterId::new(0),
        vc: VcId::new(0),
        user: UserId::new(0),
        template: TemplateId::new(template),
        instance: 0,
        graph,
    }
}

/// Bursty heavy-tailed arrival trace: each burst lands one family's group
/// of overlapping jobs inside ~a third of a window, with sip-hash jitter
/// and sip-hash burst sizes (2–7 jobs); singletons trickle in between.
fn trace(families: usize, bursts: usize) -> Vec<(JobSpec, SimDuration)> {
    let window = SimDuration::from_secs(30);
    let mut out = Vec::new();
    let mut id = 0u64;
    for b in 0..bursts {
        let f = b % families;
        let base = window.micros() / 2 * b as u64;
        let h = scope_common::sip64(format!("sharebench/burst/{b}").as_bytes());
        let group = 2 + (h % 6) as usize;
        for j in 0..group {
            id += 1;
            let jitter =
                scope_common::sip64(format!("sharebench/jitter/{b}/{j}").as_bytes()) % 10_000_000;
            out.push((
                spec(id, f as u64, family_job(f, j, &format!("q{id}"))),
                SimDuration::from_micros(base + jitter),
            ));
        }
        id += 1;
        out.push((
            spec(id, 1_000 + b as u64, singleton_job(f, id)),
            SimDuration::from_micros(base + 5_000_000),
        ));
    }
    out
}

struct RunNumbers {
    total_cpu: SimDuration,
    follower_reuses: u64,
    wait_p99: SimDuration,
    windows: usize,
    shared_subgraphs: usize,
    wall_micros: u128,
    checksums: Vec<HashMap<String, u64>>,
}

fn run(jobs: &[(JobSpec, SimDuration)], families: usize, rows: usize, enabled: bool) -> RunNumbers {
    let storage = Arc::new(StorageManager::new());
    for f in 0..families {
        storage.put_dataset(DatasetId::new(f as u64 + 1), table(f, rows));
    }
    let cv = CloudViews::builder(storage).build();
    let cfg = SharingConfig {
        enabled,
        ..SharingConfig::default()
    };
    let arrivals = jobs
        .iter()
        .map(|(spec, offset)| JobArrival {
            spec: spec.clone(),
            offset: *offset,
        })
        .collect();
    let wall = Instant::now();
    let out = cv.run_windowed(
        arrivals,
        RunMode::CloudViews,
        PipelineOptions {
            workers: 4,
            max_in_flight: 0,
            janitor: false,
        },
        &cfg,
    );
    let wall_micros = wall.elapsed().as_micros();
    let reports: Vec<_> = out
        .reports
        .into_iter()
        .map(|r| r.expect("bench jobs are fault-free"))
        .collect();
    RunNumbers {
        total_cpu: reports.iter().map(|r| r.cpu_time).sum(),
        follower_reuses: out.sharing.follower_reuses,
        wait_p99: out.sharing.wait_p99(),
        windows: out.sharing.windows,
        shared_subgraphs: out.sharing.shared_subgraphs,
        wall_micros,
        checksums: reports.into_iter().map(|r| r.output_checksums).collect(),
    }
}

fn main() {
    let quick = quick();
    let families = if quick { 4 } else { 8 };
    let bursts = if quick { 8 } else { 40 };
    let rows = if quick { 400 } else { 2_000 };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let jobs = trace(families, bursts);
    let n = jobs.len();

    // Serial fault-free ground truth (no windows, no coordination).
    let truth: Vec<_> = {
        let storage = Arc::new(StorageManager::new());
        for f in 0..families {
            storage.put_dataset(DatasetId::new(f as u64 + 1), table(f, rows));
        }
        let cv = CloudViews::builder(storage).build();
        let specs: Vec<_> = jobs.iter().map(|(s, _)| s.clone()).collect();
        cv.run_sequence(&specs, RunMode::Baseline)
            .unwrap()
            .into_iter()
            .map(|r| r.output_checksums)
            .collect()
    };

    let views_only = run(&jobs, families, rows, false);
    let sharing = run(&jobs, families, rows, true);

    let reuse_hit_rate = sharing.follower_reuses as f64 / n as f64;
    let cpu_saved = views_only
        .total_cpu
        .micros()
        .saturating_sub(sharing.total_cpu.micros());
    let cluster_hours_saved = cpu_saved as f64 / 3.6e9;
    let cpu_saved_sim_micros = cpu_saved;
    let results_equivalent = truth == views_only.checksums && truth == sharing.checksums;
    let hits_exceed = sharing.follower_reuses > views_only.follower_reuses;
    let cpu_saved_positive = sharing.total_cpu < views_only.total_cpu;

    println!(
        "sharing/views-only  cpu {:>12} µs  reuses {:>3}  ({} µs wall)",
        views_only.total_cpu.micros(),
        views_only.follower_reuses,
        views_only.wall_micros,
    );
    println!(
        "sharing/coordinated cpu {:>12} µs  reuses {:>3}/{n} jobs  windows {}  subgraphs {}  \
         p99 wait {} µs  ({} µs wall)",
        sharing.total_cpu.micros(),
        sharing.follower_reuses,
        sharing.windows,
        sharing.shared_subgraphs,
        sharing.wait_p99.micros(),
        sharing.wall_micros,
    );
    println!(
        "sharing/saved       {cpu_saved_sim_micros} µs ({cluster_hours_saved:.6} simulated cluster-hours)  \
         equivalent={results_equivalent}"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"sharing\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"families\": {families},\n",
            "  \"bursts\": {bursts},\n",
            "  \"jobs\": {n},\n",
            "  \"windows\": {windows},\n",
            "  \"shared_subgraphs\": {subgraphs},\n",
            "  \"follower_reuses\": {reuses},\n",
            "  \"views_only_reuses\": {vo_reuses},\n",
            "  \"reuse_hit_rate\": {hit:.3},\n",
            "  \"hits_exceed_views_only\": {hx},\n",
            "  \"views_only_cpu_sim_micros\": {vo_cpu},\n",
            "  \"sharing_cpu_sim_micros\": {sh_cpu},\n",
            "  \"cpu_saved_sim_micros\": {saved_us},\n",
            "  \"cluster_hours_saved\": {saved:.6},\n",
            "  \"cpu_saved_positive\": {cpok},\n",
            "  \"p99_wait_sim_micros\": {wait},\n",
            "  \"results_equivalent\": {eq},\n",
            "  \"views_only_wall_micros\": {vw},\n",
            "  \"sharing_wall_micros\": {sw}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        families = families,
        bursts = bursts,
        n = n,
        windows = sharing.windows,
        subgraphs = sharing.shared_subgraphs,
        reuses = sharing.follower_reuses,
        vo_reuses = views_only.follower_reuses,
        hit = reuse_hit_rate,
        hx = hits_exceed,
        vo_cpu = views_only.total_cpu.micros(),
        sh_cpu = sharing.total_cpu.micros(),
        saved_us = cpu_saved_sim_micros,
        saved = cluster_hours_saved,
        cpok = cpu_saved_positive,
        wait = sharing.wait_p99.micros(),
        eq = results_equivalent,
        vw = views_only.wall_micros,
        sw = sharing.wall_micros,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sharing.json");
    std::fs::write(path, &json).unwrap();
    println!("sharing: wrote {path}");

    assert!(
        results_equivalent,
        "coordinated outputs diverged from the serial baseline"
    );
    assert!(
        hits_exceed,
        "sharing must deliver strictly more reuse hits than views-only \
         ({} vs {})",
        sharing.follower_reuses, views_only.follower_reuses
    );
    assert!(
        cpu_saved_positive,
        "sharing must lower total simulated cluster CPU ({} vs {} µs)",
        sharing.total_cpu.micros(),
        views_only.total_cpu.micros()
    );
}
