//! Microbenchmark: analyzer throughput (§7.3).
//!
//! The paper's analyzer chews through tens of thousands of jobs in a couple
//! of hours on production infrastructure. Ours mines overlap groups and
//! selects views from compile-only records; this bench tracks jobs/second
//! across workload sizes so regressions in the mining path are caught.

use cloudviews::analyzer::{mine_overlaps, run_analysis, AnalyzerConfig};
use cloudviews_bench::compile_only::cluster_records;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_engine::repo::JobRecord;
use scope_workload::recurring::{RecurringWorkload, WorkloadConfig};

fn records_for(vcs: usize) -> Vec<JobRecord> {
    let workload =
        RecurringWorkload::generate(WorkloadConfig::paper_large_cluster(3, vcs)).unwrap();
    cluster_records(&workload, 0, 1).unwrap()
}

fn bench_analyzer(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine_overlaps");
    group.sample_size(20);
    for vcs in [8usize, 32, 96] {
        let records = records_for(vcs);
        let refs: Vec<&JobRecord> = records.iter().collect();
        group.throughput(criterion::Throughput::Elements(records.len() as u64));
        group.bench_with_input(BenchmarkId::new("jobs", records.len()), &refs, |b, refs| {
            b.iter(|| mine_overlaps(std::hint::black_box(refs)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("run_analysis");
    group.sample_size(20);
    for vcs in [8usize, 32] {
        let records = records_for(vcs);
        group.throughput(criterion::Throughput::Elements(records.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("jobs", records.len()),
            &records,
            |b, records| {
                b.iter(|| {
                    run_analysis(std::hint::black_box(records), &AnalyzerConfig::default()).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analyzer);
criterion_main!(benches);
