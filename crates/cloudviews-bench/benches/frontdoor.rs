//! Network front-door benchmark (DESIGN.md §13).
//!
//! Drives the loopback TCP server the way the paper's metadata service is
//! driven in production — many tenants, bursty arrivals — and records the
//! client-visible numbers in `BENCH_frontdoor.json` at the repo root:
//!
//! 1. **Open-loop latency** — a heavy-tailed arrival process (log-normal
//!    interarrivals, Zipf-skewed template popularity from
//!    `scope_workload::dists`) across four VCs, offered *below* the
//!    configured per-VC quota. Requests fire on schedule regardless of
//!    completions (open loop: queueing delay is measured, not hidden).
//!    Gated: p50/p99 client-side lookup latency and a shed rate of ≈ 0 —
//!    below quota, admission must be invisible.
//! 2. **Saturation throughput** — closed-loop hammering from one client
//!    thread per worker, no pacing, quota off. Gated: completed lookups
//!    per second at the plateau.
//!
//! `BENCH_QUICK=1` shrinks the request counts for CI. Not a criterion
//! harness: the server, the senders, and the wall clock are one unit, so
//! the bench times itself and writes its own artifact.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cloudviews::analyzer::SelectedView;
use cloudviews::api::LookupRequest;
use cloudviews::metadata::MetadataService;
use scope_common::hash::Sig128;
use scope_common::ids::{JobId, VcId};
use scope_common::telemetry::Telemetry;
use scope_common::time::{SimClock, SimDuration, SimTime};
use scope_common::Symbol;
use scope_engine::optimizer::Annotation;
use scope_net::{NetClient, NetServer, QuotaConfig, ServerConfig};
use scope_plan::PhysicalProps;
use scope_workload::dists::{rng_for, LogNormal, Zipf};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Annotation templates: each carries its own tag, so a lookup's fan-out is
/// one inverted-index hit (the front door is under test, not the cascade).
const TEMPLATES: usize = 128;
const VCS: u64 = 4;
const SENDERS_PER_VC: usize = 4;

fn fixture() -> Vec<SelectedView> {
    (0..TEMPLATES)
        .map(|i| SelectedView {
            annotation: Annotation {
                normalized: scope_common::sip128(format!("fd/norm/{i}").as_bytes()),
                props: PhysicalProps::any(),
                ttl: SimDuration::from_secs(86_400),
                avg_cpu: SimDuration::from_secs(10),
                avg_rows: 100,
                avg_bytes: 1_000,
            },
            input_tags: vec![Symbol::intern(&format!("fd/tag/{i}"))],
            utility: SimDuration::from_secs(30),
            frequency: 2,
            precise_last_seen: Sig128::ZERO,
        })
        .collect()
}

fn service() -> Arc<MetadataService> {
    let m = MetadataService::new(Arc::new(SimClock::new()), 4);
    m.load_annotations(&fixture());
    Arc::new(m)
}

fn lookup_for(template: usize, job: u64, vc: u64) -> LookupRequest {
    LookupRequest::new(
        JobId::new(job),
        &[Symbol::intern(&format!("fd/tag/{template}"))],
        SimTime(1_000_000),
    )
    .for_vc(VcId::new(vc))
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct OpenLoopNumbers {
    total_requests: u64,
    span_secs: f64,
    offered_ops_per_sec: f64,
    p50_micros: u64,
    p99_micros: u64,
    max_micros: u64,
    shed_total: u64,
    quota_rejections: u64,
    failures: u64,
}

/// Open-loop run: every sender owns a schedule of absolute fire times drawn
/// from a log-normal interarrival process and fires on time (or as soon as
/// it is behind schedule), whatever happened to the previous request.
fn bench_open_loop(requests_per_sender: usize) -> OpenLoopNumbers {
    let telemetry = Telemetry::new();
    let server = NetServer::spawn(
        service(),
        Arc::clone(&telemetry),
        ServerConfig {
            // One worker per sender connection: the gate measures request
            // latency, not the pool's idle-tick rotation pickup (an
            // undersized pool parks idle connections between requests and
            // notices their next frame up to one idle poll late).
            workers: VCS as usize * SENDERS_PER_VC,
            // Plenty for the offered load; the run must stay below quota.
            quota: Some(QuotaConfig {
                rate_per_sec: 50_000.0,
                burst: 50_000.0,
            }),
            ..ServerConfig::default()
        },
    )
    .expect("spawn front door");
    let addr = server.addr();

    let start = Instant::now() + Duration::from_millis(50);
    let mut handles = Vec::new();
    for vc in 0..VCS {
        for sender in 0..SENDERS_PER_VC {
            let handle = std::thread::spawn(move || {
                let mut rng = rng_for(42, &format!("frontdoor/arrivals/{vc}/{sender}"));
                // Heavy-tailed interarrivals: median ~2 ms, p99 ~20+ ms per
                // sender (sigma 1.0), aggregate offered rate ~5k/s.
                let interarrival = LogNormal::new((0.002f64).ln(), 1.0, 0.000_2, 0.080);
                let popularity = Zipf::new(TEMPLATES, 1.1);
                let mut client = NetClient::connect(addr).expect("connect");
                let mut at = Duration::ZERO;
                let mut latencies = Vec::with_capacity(requests_per_sender);
                let mut failures = 0u64;
                for i in 0..requests_per_sender {
                    at += Duration::from_secs_f64(interarrival.sample(&mut rng));
                    let fire = start + at;
                    if let Some(wait) = fire.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    let template = popularity.sample(&mut rng);
                    let job = vc * 1_000_000 + sender as u64 * 10_000 + i as u64;
                    let t = Instant::now();
                    match client.lookup(&lookup_for(template, job, vc)) {
                        Ok(resp) => {
                            debug_assert!(!resp.annotations.is_empty());
                            latencies.push(t.elapsed().as_micros() as u64);
                        }
                        Err(_) => failures += 1,
                    }
                }
                (latencies, failures)
            });
            handles.push(handle);
        }
    }
    let mut latencies = Vec::new();
    let mut failures = 0u64;
    for h in handles {
        let (l, f) = h.join().expect("sender thread");
        latencies.extend(l);
        failures += f;
    }
    let span_secs = start.elapsed().as_secs_f64();
    latencies.sort_unstable();

    let snap = telemetry.metrics.snapshot();
    let numbers = OpenLoopNumbers {
        total_requests: (VCS as usize * SENDERS_PER_VC * requests_per_sender) as u64,
        span_secs,
        offered_ops_per_sec: (VCS as usize * SENDERS_PER_VC * requests_per_sender) as f64
            / span_secs,
        p50_micros: percentile(&latencies, 0.50),
        p99_micros: percentile(&latencies, 0.99),
        max_micros: latencies.last().copied().unwrap_or(0),
        shed_total: snap.counter("cv_net_shed_total"),
        quota_rejections: snap.counter("cv_net_quota_rejections_total"),
        failures,
    };
    server.shutdown();
    numbers
}

struct SaturationNumbers {
    threads: usize,
    total_ops: u64,
    wall_secs: f64,
    ops_per_sec: f64,
}

/// Closed-loop saturation: one client thread per server worker, no pacing,
/// quota off. Measures the plateau the front door can sustain.
fn bench_saturation(threads: usize, ops_per_thread: usize) -> SaturationNumbers {
    let server = NetServer::spawn(
        service(),
        Telemetry::new(),
        ServerConfig {
            workers: threads,
            ..ServerConfig::default()
        },
    )
    .expect("spawn front door");
    let addr = server.addr();

    let t = Instant::now();
    std::thread::scope(|scope| {
        for tid in 0..threads {
            scope.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                for i in 0..ops_per_thread {
                    let template = (tid * 31 + i) % TEMPLATES;
                    let resp = client
                        .lookup(&lookup_for(
                            template,
                            (tid * 100_000 + i) as u64,
                            tid as u64,
                        ))
                        .expect("saturation lookup");
                    debug_assert!(!resp.annotations.is_empty());
                }
            });
        }
    });
    let wall_secs = t.elapsed().as_secs_f64();
    server.shutdown();
    let total_ops = (threads * ops_per_thread) as u64;
    SaturationNumbers {
        threads,
        total_ops,
        wall_secs,
        ops_per_sec: total_ops as f64 / wall_secs,
    }
}

fn main() {
    let quick = quick();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let requests_per_sender = if quick { 100 } else { 750 };
    let sat_threads = cores.clamp(2, 8);
    // Long enough that the plateau, not startup, dominates the wall clock
    // (~80k lookups/s/thread-pair means 2k ops finish in 50 ms — all noise).
    let sat_ops = if quick { 20_000 } else { 60_000 };

    // Warm once: interner, allocator, and the TCP stack all touched before
    // anything is timed.
    bench_saturation(2, 200);

    // Each loop runs three times and the artifact records the median run:
    // the loopback tail belongs to the scheduler, and the gates guard
    // order-of-magnitude regressions (a Nagle stall, a starved admission
    // queue), not run-to-run jitter. Admission counters are summed across
    // every run — below-quota traffic must never be refused, lucky run or
    // not.
    let mut opens: Vec<OpenLoopNumbers> = (0..3)
        .map(|_| {
            let open = bench_open_loop(requests_per_sender);
            println!(
                "frontdoor/open-loop   {} reqs over {:.2}s ({:.0}/s offered)   p50 {} µs   p99 {} µs   max {} µs",
                open.total_requests,
                open.span_secs,
                open.offered_ops_per_sec,
                open.p50_micros,
                open.p99_micros,
                open.max_micros,
            );
            open
        })
        .collect();
    let refused: u64 = opens
        .iter()
        .map(|o| o.shed_total + o.quota_rejections + o.failures)
        .sum();
    let offered: u64 = opens.iter().map(|o| o.total_requests).sum();
    opens.sort_by_key(|o| o.p99_micros);
    let open = &opens[1];
    println!(
        "frontdoor/admission   shed {}   over-quota {}   failures {}   (all runs)",
        opens.iter().map(|o| o.shed_total).sum::<u64>(),
        opens.iter().map(|o| o.quota_rejections).sum::<u64>(),
        opens.iter().map(|o| o.failures).sum::<u64>(),
    );

    let mut sats: Vec<SaturationNumbers> = (0..3)
        .map(|_| {
            let sat = bench_saturation(sat_threads, sat_ops);
            println!(
                "frontdoor/saturation  {} threads   {} ops in {:.2}s   {:.0} lookups/s",
                sat.threads, sat.total_ops, sat.wall_secs, sat.ops_per_sec,
            );
            sat
        })
        .collect();
    sats.sort_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec));
    let sat = &sats[1];

    let shed_rate = refused as f64 / offered as f64;
    let shed_rate_ok = shed_rate < 0.001;

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"frontdoor\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"open_loop\": {{\n",
            "    \"vcs\": {vcs},\n",
            "    \"senders_per_vc\": {senders},\n",
            "    \"total_requests\": {total},\n",
            "    \"span_secs\": {span:.3},\n",
            "    \"offered_ops_per_sec\": {offered:.1},\n",
            "    \"max_lookup_wall_micros\": {maxl},\n",
            "    \"shed_total\": {shed},\n",
            "    \"quota_rejections_total\": {quota},\n",
            "    \"client_failures\": {failures}\n",
            "  }},\n",
            "  \"p50_lookup_wall_micros\": {p50},\n",
            "  \"p99_lookup_wall_micros\": {p99},\n",
            "  \"shed_rate\": {shed_rate:.6},\n",
            "  \"shed_rate_ok\": {shed_ok},\n",
            "  \"saturation_threads\": {sthreads},\n",
            "  \"saturation_total_ops\": {sops},\n",
            "  \"saturation_wall_secs\": {swall:.3},\n",
            "  \"saturation_ops_per_sec\": {srate:.1}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        vcs = VCS,
        senders = SENDERS_PER_VC,
        total = open.total_requests,
        span = open.span_secs,
        offered = open.offered_ops_per_sec,
        maxl = open.max_micros,
        shed = open.shed_total,
        quota = open.quota_rejections,
        failures = open.failures,
        p50 = open.p50_micros,
        p99 = open.p99_micros,
        shed_rate = shed_rate,
        shed_ok = shed_rate_ok,
        sthreads = sat.threads,
        sops = sat.total_ops,
        swall = sat.wall_secs,
        srate = sat.ops_per_sec,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontdoor.json");
    std::fs::write(path, &json).unwrap();
    println!("frontdoor: wrote {path}");

    assert!(
        shed_rate_ok,
        "below-quota traffic must not be refused: {refused}/{offered} requests across all runs",
    );
    assert!(
        open.p99_micros < 1_000_000,
        "p99 loopback lookup took {} µs — a worker is stalling",
        open.p99_micros
    );
}
