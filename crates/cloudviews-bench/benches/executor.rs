//! Executor throughput benchmark (PR 8 tentpole gate).
//!
//! Races the columnar batch-at-a-time executor against the row-at-a-time
//! reference executor (`scope_engine::rowref` — the seed implementation,
//! preserved verbatim) on TPC-DS-style scan → filter → join → aggregate
//! chains, and records `BENCH_executor.json` at the repo root:
//!
//! 1. **Throughput** — input rows per second for each executor, per chain
//!    and aggregated. The tentpole target is ≥ 5× columnar over row on the
//!    aggregate (single-core: both executors run serially, so the gate
//!    holds on any host).
//! 2. **Stats equality** — every timed plan is also checked for
//!    byte-identical `NodeRuntimeStats` between the two executors. The
//!    speedup is worthless if the columnar path drifts the statistics that
//!    feed the CloudViews analyzer and the EXPERIMENTS.md figures.
//!
//! `BENCH_QUICK=1` shrinks the data sizes for CI. Not a criterion harness:
//! the two executors must be timed as whole-plan units against identical
//! inputs, so the bench times itself and writes its own artifact.

use std::time::Instant;

use scope_common::ids::{DatasetId, JobId};
use scope_common::time::SimTime;
use scope_engine::cost::CostModel;
use scope_engine::exec::execute_plan;
use scope_engine::optimizer::{optimize, NoViewServices, OptimizerConfig};
use scope_engine::rowref::execute_plan_rows;
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, JoinKind, PlanBuilder, QueryGraph, Schema, Value};
use scope_workload::tpcds::TpcdsWorkload;

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// One timed chain: an optimized physical plan, its storage, and the number
/// of base-input rows a single execution consumes (the rows/sec numerator).
struct Case {
    name: &'static str,
    plan: QueryGraph,
    storage: StorageManager,
    input_rows: u64,
}

fn lower(graph: &QueryGraph) -> QueryGraph {
    optimize(
        graph,
        &[],
        &NoViewServices,
        &OptimizerConfig::default(),
        JobId::new(1),
    )
    .unwrap()
    .physical
}

/// Fact table: `k` (dense int key), `v` (float payload), `d` (date).
fn fact_storage(n: i64, keys: i64) -> StorageManager {
    let schema = fact_schema();
    let rows = (0..n)
        .map(|i| {
            vec![
                Value::Int(i % keys),
                Value::Float((i % 1_000) as f64 * 0.5),
                Value::Date((i % 365) as i32),
            ]
        })
        .collect();
    let storage = StorageManager::new();
    storage.put_dataset(
        DatasetId::new(1),
        scope_engine::data::Table::single(schema, rows),
    );
    storage
}

fn fact_schema() -> Schema {
    Schema::from_pairs(&[
        ("k", DataType::Int),
        ("v", DataType::Float),
        ("d", DataType::Date),
    ])
}

fn dim_schema() -> Schema {
    Schema::from_pairs(&[("k", DataType::Int), ("w", DataType::Int)])
}

fn cases(quick: bool) -> Vec<Case> {
    let n: i64 = if quick { 60_000 } else { 400_000 };
    let keys: i64 = 1_024;
    let mut out = Vec::new();

    // 1. Selective scan→filter: the selection-vector fast path.
    {
        let storage = fact_storage(n, keys);
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "bench/fact", fact_schema());
        let f = b.filter(s, Expr::col(0).lt(Expr::lit(keys / 2)));
        let plan = b.output(f, "o").build().unwrap();
        out.push(Case {
            name: "scan_filter",
            plan: lower(&plan),
            storage,
            input_rows: n as u64,
        });
    }

    // 2. scan→filter→hash-agg: vectorized grouping and accumulation.
    {
        let storage = fact_storage(n, keys);
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "bench/fact", fact_schema());
        let f = b.filter(s, Expr::col(2).lt(Expr::lit(Value::Date(300))));
        let a = b.aggregate(
            f,
            vec![0],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum_v", AggFunc::Sum, 1),
            ],
        );
        let plan = b.output(a, "o").build().unwrap();
        out.push(Case {
            name: "filter_agg",
            plan: lower(&plan),
            storage,
            input_rows: n as u64,
        });
    }

    // 3. The full chain: scan→filter→hash-join(dim)→hash-agg.
    {
        let storage = fact_storage(n, keys);
        let dim_rows = (0..keys)
            .map(|i| vec![Value::Int(i), Value::Int(i * 7)])
            .collect();
        storage.put_dataset(
            DatasetId::new(2),
            scope_engine::data::Table::single(dim_schema(), dim_rows),
        );
        let mut b = PlanBuilder::new();
        let fact = b.table_scan(DatasetId::new(1), "bench/fact", fact_schema());
        let f = b.filter(fact, Expr::col(0).lt(Expr::lit(keys - 64)));
        let dim = b.table_scan(DatasetId::new(2), "bench/dim", dim_schema());
        let j = b.join(f, dim, JoinKind::Inner, vec![0], vec![0]);
        let a = b.aggregate(
            j,
            vec![4],
            vec![
                AggExpr::new("cnt", AggFunc::Count, 1),
                AggExpr::new("sum_v", AggFunc::Sum, 1),
            ],
        );
        let plan = b.output(a, "o").build().unwrap();
        out.push(Case {
            name: "filter_join_agg",
            plan: lower(&plan),
            storage,
            input_rows: (n + keys) as u64,
        });
    }

    // 4. A real TPC-DS query end to end.
    {
        let storage = StorageManager::new();
        let w = TpcdsWorkload::new(if quick { 0.05 } else { 0.2 }, 1);
        w.register_data(&storage).unwrap();
        let spec = w.query_job(3).unwrap();
        let plan = lower(&spec.graph);
        let input_rows: u64 = plan
            .nodes()
            .iter()
            .filter_map(|node| match &node.op {
                scope_plan::Operator::Get { dataset, .. } => Some(
                    storage
                        .dataset(*dataset)
                        .map(|t| t.num_rows() as u64)
                        .unwrap_or(0),
                ),
                _ => None,
            })
            .sum();
        out.push(Case {
            name: "tpcds_q3",
            plan,
            storage,
            input_rows,
        });
    }
    out
}

fn main() {
    let quick = quick();
    let trials: usize = if quick { 3 } else { 5 };
    let model = CostModel::default();
    let cases = cases(quick);

    let mut stats_equal = true;
    let mut total_rows: u64 = 0;
    let mut total_col_micros: u128 = 0;
    let mut total_row_micros: u128 = 0;
    let mut case_lines = Vec::new();

    for case in &cases {
        // Warm-up (and the stats-equality differential) outside the clock.
        let col = execute_plan(&case.plan, &case.storage, &model, SimTime::ZERO).unwrap();
        let row = execute_plan_rows(&case.plan, &case.storage, &model, SimTime::ZERO).unwrap();
        stats_equal &= col.node_stats == row.node_stats;

        let mut col_micros = u128::MAX;
        for _ in 0..trials {
            let t = Instant::now();
            execute_plan(&case.plan, &case.storage, &model, SimTime::ZERO).unwrap();
            col_micros = col_micros.min(t.elapsed().as_micros());
        }
        let mut row_micros = u128::MAX;
        for _ in 0..trials {
            let t = Instant::now();
            execute_plan_rows(&case.plan, &case.storage, &model, SimTime::ZERO).unwrap();
            row_micros = row_micros.min(t.elapsed().as_micros());
        }

        total_rows += case.input_rows;
        total_col_micros += col_micros;
        total_row_micros += row_micros;
        let speedup = row_micros as f64 / col_micros.max(1) as f64;
        println!(
            "executor/{:<16} {:>9} rows   columnar {:>8} µs   row {:>9} µs   {:>5.2}x",
            case.name, case.input_rows, col_micros, row_micros, speedup
        );
        case_lines.push(format!(
            concat!(
                "    {{ \"name\": \"{name}\", \"input_rows\": {rows}, ",
                "\"columnar_micros\": {col}, \"row_micros\": {row}, ",
                "\"speedup\": {speedup:.3} }}"
            ),
            name = case.name,
            rows = case.input_rows,
            col = col_micros,
            row = row_micros,
            speedup = speedup,
        ));
    }

    let rows_per_sec_columnar = total_rows as f64 / (total_col_micros.max(1) as f64 / 1e6);
    let rows_per_sec_row = total_rows as f64 / (total_row_micros.max(1) as f64 / 1e6);
    let speedup = total_row_micros as f64 / total_col_micros.max(1) as f64;
    let meets_5x = speedup >= 5.0;
    println!(
        "executor/overall          {total_rows:>9} rows   columnar {:.0} rows/s   \
         row {:.0} rows/s   {speedup:.2}x   stats_equal={stats_equal}",
        rows_per_sec_columnar, rows_per_sec_row
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"executor\",\n",
            "  \"quick\": {quick},\n",
            "  \"cases\": [\n{cases}\n  ],\n",
            "  \"input_rows_total\": {rows},\n",
            "  \"columnar_micros_total\": {col},\n",
            "  \"row_micros_total\": {row},\n",
            "  \"rows_per_sec_columnar\": {rps_col:.0},\n",
            "  \"rows_per_sec_row\": {rps_row:.0},\n",
            "  \"speedup\": {speedup:.3},\n",
            "  \"meets_5x_target\": {m5},\n",
            "  \"stats_equal\": {eq}\n",
            "}}\n"
        ),
        quick = quick,
        cases = case_lines.join(",\n"),
        rows = total_rows,
        col = total_col_micros,
        row = total_row_micros,
        rps_col = rows_per_sec_columnar,
        rps_row = rows_per_sec_row,
        speedup = speedup,
        m5 = meets_5x,
        eq = stats_equal,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_executor.json");
    std::fs::write(path, &json).unwrap();
    println!("executor: wrote {path}");

    assert!(
        stats_equal,
        "columnar executor drifted NodeRuntimeStats from the row reference"
    );
    assert!(
        meets_5x,
        "columnar executor must be >= 5x the row reference on the chain \
         aggregate (got {speedup:.2}x)"
    );
}
