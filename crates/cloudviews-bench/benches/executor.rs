//! Microbenchmark: the execution substrate.
//!
//! Keeps the engine honest underneath the experiments: per-operator
//! throughput of the hot paths (filter scan, hash aggregation, hash
//! repartitioning, join) at a fixed data size, and one end-to-end TPC-DS
//! query execution.

use criterion::{criterion_group, criterion_main, Criterion};
use scope_common::ids::DatasetId;
use scope_common::time::SimTime;
use scope_engine::cost::CostModel;
use scope_engine::exec::execute_plan;
use scope_engine::optimizer::{optimize, NoViewServices, OptimizerConfig};
use scope_engine::storage::StorageManager;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, JoinKind, PlanBuilder, Schema, Value};
use scope_workload::tpcds::TpcdsWorkload;

fn kv_storage(n: i64) -> (StorageManager, Schema) {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
    let rows = (0..n)
        .map(|i| vec![Value::Int(i % 512), Value::Float(i as f64)])
        .collect();
    let storage = StorageManager::new();
    storage.put_dataset(
        DatasetId::new(1),
        scope_engine::data::Table::single(schema.clone(), rows),
    );
    (storage, schema)
}

fn bench_operators(c: &mut Criterion) {
    let (storage, schema) = kv_storage(50_000);
    let model = CostModel::default();

    let filter_plan = {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema.clone());
        let f = b.filter(s, Expr::col(0).lt(Expr::lit(256i64)));
        b.output(f, "o").build().unwrap()
    };
    c.bench_function("exec_scan_filter_50k", |b| {
        b.iter(|| execute_plan(&filter_plan, &storage, &model, SimTime::ZERO).unwrap())
    });

    let agg_plan = {
        let mut b = PlanBuilder::new();
        let s = b.table_scan(DatasetId::new(1), "t", schema.clone());
        let a = b.aggregate(s, vec![0], vec![AggExpr::new("s", AggFunc::Sum, 1)]);
        b.output(a, "o").build().unwrap()
    };
    c.bench_function("exec_hash_agg_50k", |b| {
        b.iter(|| execute_plan(&agg_plan, &storage, &model, SimTime::ZERO).unwrap())
    });

    let join_plan = {
        let mut b = PlanBuilder::new();
        let l = b.table_scan(DatasetId::new(1), "l", schema.clone());
        let r = b.table_scan(DatasetId::new(1), "r", schema.clone());
        let a = b.aggregate(r, vec![0], vec![AggExpr::new("s", AggFunc::Sum, 1)]);
        let j = b.join(l, a, JoinKind::Inner, vec![0], vec![0]);
        b.output(j, "o").build().unwrap()
    };
    // Joins need enforcers: lower through the optimizer first.
    let join_phys = optimize(
        &join_plan,
        &[],
        &NoViewServices,
        &OptimizerConfig::default(),
        scope_common::ids::JobId::new(1),
    )
    .unwrap()
    .physical;
    c.bench_function("exec_hash_join_50k", |b| {
        b.iter(|| execute_plan(&join_phys, &storage, &model, SimTime::ZERO).unwrap())
    });
}

fn bench_tpcds_query(c: &mut Criterion) {
    let storage = StorageManager::new();
    let w = TpcdsWorkload::new(0.2, 1);
    w.register_data(&storage).unwrap();
    let spec = w.query_job(3).unwrap();
    let plan = optimize(
        &spec.graph,
        &[],
        &NoViewServices,
        &OptimizerConfig::default(),
        spec.id,
    )
    .unwrap()
    .physical;
    let model = CostModel::default();
    c.bench_function("exec_tpcds_q3_sf02", |b| {
        b.iter(|| execute_plan(&plan, &storage, &model, SimTime::ZERO).unwrap())
    });
}

criterion_group!(benches, bench_operators, bench_tpcds_query);
criterion_main!(benches);
