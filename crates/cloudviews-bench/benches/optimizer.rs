//! Microbenchmark: optimizer time with and without CloudViews (§7.3).
//!
//! Three conditions over a representative TPC-DS query (q14, a three-channel
//! union with dimension joins):
//!
//! * `baseline`   — no annotations (plain SCOPE compile);
//! * `materialize`— annotations match and the build lock is granted, so the
//!   plan carries a materialization (paper: +28% optimizer time);
//! * `reuse`      — the view exists, the subgraph is replaced by a ViewGet
//!   and the tree shrinks (paper: −17%).

use criterion::{criterion_group, criterion_main, Criterion};
use scope_common::hash::Sig128;
use scope_common::ids::{JobId, NodeId};
use scope_common::time::SimDuration;
use scope_engine::optimizer::{
    optimize, Annotation, AvailableView, NoViewServices, OptimizerConfig, ViewServices,
};
use scope_plan::PhysicalProps;
use scope_signature::sign_graph;
use scope_workload::tpcds::build_query;

struct Grant;
impl ViewServices for Grant {
    fn view_available(&self, _p: Sig128) -> Option<AvailableView> {
        None
    }
    fn propose_materialize(&self, _p: Sig128, _n: Sig128, _j: JobId, _t: SimDuration) -> bool {
        true
    }
}

struct Have {
    precise: Sig128,
    view: AvailableView,
}
impl ViewServices for Have {
    fn view_available(&self, p: Sig128) -> Option<AvailableView> {
        (p == self.precise).then(|| self.view.clone())
    }
    fn propose_materialize(&self, _p: Sig128, _n: Sig128, _j: JobId, _t: SimDuration) -> bool {
        false
    }
}

fn bench_optimizer(c: &mut Criterion) {
    let graph = build_query(14).unwrap();
    let cfg = OptimizerConfig::default();
    let job = JobId::new(1);

    // Annotate a mid-plan subexpression (the first channel's join tree).
    let signed = sign_graph(&graph).unwrap();
    let target = NodeId::new(6);
    let annotation = Annotation {
        normalized: signed.of(target).normalized,
        props: PhysicalProps::hashed(vec![0], 8),
        ttl: SimDuration::from_secs(86_400),
        avg_cpu: SimDuration::from_secs(60),
        avg_rows: 10_000,
        avg_bytes: 640_000,
    };
    let annotations = vec![annotation];

    c.bench_function("optimize_baseline", |b| {
        b.iter(|| {
            optimize(
                std::hint::black_box(&graph),
                &[],
                &NoViewServices,
                &cfg,
                job,
            )
            .unwrap()
        })
    });

    c.bench_function("optimize_materialize", |b| {
        b.iter(|| {
            optimize(
                std::hint::black_box(&graph),
                &annotations,
                &Grant,
                &cfg,
                job,
            )
            .unwrap()
        })
    });

    let have = Have {
        precise: signed.of(target).precise,
        view: AvailableView {
            precise: signed.of(target).precise,
            rows: 10_000,
            bytes: 640_000,
            props: PhysicalProps::hashed(vec![0], 8),
        },
    };
    c.bench_function("optimize_reuse", |b| {
        b.iter(|| optimize(std::hint::black_box(&graph), &annotations, &have, &cfg, job).unwrap())
    });
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
