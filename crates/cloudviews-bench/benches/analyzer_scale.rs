//! Analyzer scalability benchmark (DESIGN.md §11).
//!
//! Measures the incremental analyzer against the full-batch replay it
//! replaced, recorded in `BENCH_analyzer_scale.json` at the repo root:
//!
//! 1. **Incremental ratio** — with 10 rounds of history already folded
//!    into the state, one `ingest(delta) + select` round must cost ≤ 25%
//!    of a full-batch `run_analysis` over all 11 rounds. This is the core
//!    claim: round cost tracks the delta, not the repository's age.
//!    Asserted on any core count (both sides run serially).
//! 2. **Fold contention curve** — a fresh state folds the same record
//!    batch with 1/2/4/8 workers. The parallel fold must produce the
//!    byte-identical outcome at every width (asserted always) and be
//!    ≥ 1.5× faster at 4 workers (asserted only on hosts with ≥ 4 cores;
//!    below that the workers time-slice one core).
//!
//! Records are synthesized directly (deterministic signatures, non-zero
//! runtime stats) rather than run through the engine: the bench times the
//! analyzer, not the executor, and needs enough history to matter.
//! `BENCH_QUICK=1` shrinks the sizes for CI. Not a criterion harness: the
//! phases must be timed wall-clock as units, so the bench times itself and
//! writes its own artifact.

use std::sync::Arc;
use std::time::Instant;

use cloudviews::analyzer::{run_analysis, AnalysisOutcome};
use cloudviews::{AnalyzerConfig, AnalyzerState};
use scope_common::hash::Sig128;
use scope_common::ids::{ClusterId, JobId, NodeId, TemplateId, UserId, VcId};
use scope_common::time::{SimDuration, SimTime};
use scope_common::Symbol;
use scope_engine::repo::{JobRecord, SubgraphRun};
use scope_plan::{OpKind, PhysicalProps};

fn quick() -> bool {
    std::env::var("BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Rounds of history folded before the timed incremental round.
const HISTORY_ROUNDS: u64 = 10;

struct Shape {
    templates: u64,
    jobs_per_template: u64,
    subs_per_job: u64,
}

/// One synthetic round: every template submits `jobs_per_template` jobs
/// whose subgraphs share precise signatures within the round (so every
/// occurrence overlaps) and normalized signatures across rounds (so groups
/// fold across instances — the recurring-workload shape of the paper).
fn make_round(round: u64, shape: &Shape, props: &Arc<PhysicalProps>) -> Vec<JobRecord> {
    let mut records = Vec::new();
    for t in 0..shape.templates {
        let tags: Vec<Symbol> = (0..3)
            .map(|i| Symbol::intern(&format!("as/in/{}/{}", t, (t + i) % shape.templates)))
            .collect();
        for j in 0..shape.jobs_per_template {
            let subgraphs: Vec<SubgraphRun> = (0..shape.subs_per_job)
                .map(|s| SubgraphRun {
                    root: NodeId::new(s + 1),
                    precise: Sig128::new(
                        t * 1_000_003 + s * 7_919 + round * 104_729,
                        round * 2_654_435_761 + t * 31 + s,
                    ),
                    normalized: Sig128::new(t * 1_000_003 + s * 7_919, t * 31 + s),
                    root_kind: OpKind::HashJoin,
                    num_nodes: 3 + (s as usize % 4),
                    input_tags: tags.clone(),
                    props: Arc::clone(props),
                    has_user_code: s % 5 == 0,
                    out_rows: 1_000 + s * 37 + t,
                    out_bytes: 40_000 + s * 1_337 + t * 11,
                    exclusive_cpu: SimDuration::from_micros(200_000 + s * 1_000),
                    cumulative_cpu: SimDuration::from_micros(1_500_000 + s * 10_000 + t * 100),
                    finish_offset: SimDuration::from_micros(500_000 + s * 2_000),
                })
                .collect();
            records.push(JobRecord {
                job: JobId::new(round * 1_000_000 + t * shape.jobs_per_template + j),
                cluster: ClusterId::new(0),
                vc: VcId::new(t % 5),
                user: UserId::new(t % 7),
                template: TemplateId::new(t),
                instance: round,
                submitted_at: SimTime(round * 3_600_000_000 + (t * 10 + j) * 30_000_000),
                latency: SimDuration::from_micros(2_000_000 + t * 10_000 + j * 1_000),
                cpu_time: SimDuration::from_micros(8_000_000 + t * 40_000),
                tags: tags.clone(),
                subgraphs,
            });
        }
    }
    records
}

/// Deterministic fingerprint of an analysis (ordering-insensitive for the
/// metrics maps, which are the only non-deterministically-ordered parts).
fn fingerprint(o: &AnalysisOutcome) -> String {
    let mut per_job: Vec<_> = o.metrics.per_job.iter().map(|(k, v)| (*k, *v)).collect();
    per_job.sort_unstable();
    format!(
        "{:?}|{:?}|{:?}|{:?}|{per_job:?}",
        o.selected, o.groups, o.order_hints, o.metrics.overlap_frequencies
    )
}

fn config() -> AnalyzerConfig {
    AnalyzerConfig::default()
}

fn main() {
    let quick = quick();
    // Quick mode trims jobs, not templates/subgraphs: the per-round select
    // has a fixed cost driven by distinct normalized signatures, and the
    // ratio gate is only meaningful when per-occurrence fold work dominates
    // it — shrinking the shape too far turns the gate into a constant-
    // overhead measurement.
    let shape = Shape {
        templates: 48,
        jobs_per_template: if quick { 3 } else { 4 },
        subs_per_job: if quick { 10 } else { 12 },
    };
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let props = Arc::new(PhysicalProps::any());

    let rounds: Vec<Vec<JobRecord>> = (0..=HISTORY_ROUNDS)
        .map(|r| make_round(r, &shape, &props))
        .collect();
    let all: Vec<JobRecord> = rounds.iter().flatten().cloned().collect();
    let records_per_round = rounds[0].len();

    // Warm up: one full pass of each shape so allocator/interner state is
    // identical before any timed run.
    run_analysis(&all, &config()).unwrap();
    {
        let s = AnalyzerState::new(config(), 1);
        s.ingest(&all);
        s.select().unwrap();
    }

    // 1. Incremental ratio at 10x history. Both sides serial: the gate must
    //    hold on any core count. Each side is the minimum of three trials —
    //    the gate compares the cost structure, not scheduler noise, and min
    //    is the standard noise-robust wall-clock estimator.
    const TRIALS: usize = 5;
    let mut incremental_micros = u128::MAX;
    let mut incremental_outcome = None;
    for _ in 0..TRIALS {
        let state = AnalyzerState::new(config(), 1);
        for r in rounds.iter().take(HISTORY_ROUNDS as usize) {
            state.ingest(r);
        }
        let t = Instant::now();
        state.ingest(&rounds[HISTORY_ROUNDS as usize]);
        let outcome = state.select().unwrap();
        incremental_micros = incremental_micros.min(t.elapsed().as_micros());
        incremental_outcome = Some(outcome);
    }
    let incremental_outcome = incremental_outcome.unwrap();

    let mut full_micros = u128::MAX;
    let mut full_outcome = None;
    for _ in 0..TRIALS {
        let t = Instant::now();
        let outcome = run_analysis(&all, &config()).unwrap();
        full_micros = full_micros.min(t.elapsed().as_micros());
        full_outcome = Some(outcome);
    }
    let full_outcome = full_outcome.unwrap();

    let incremental_ratio = incremental_micros as f64 / full_micros.max(1) as f64;
    let outcomes_match = fingerprint(&incremental_outcome) == fingerprint(&full_outcome);
    println!(
        "analyzer_scale/incremental   round {incremental_micros:>9} µs   \
         full-batch {full_micros:>9} µs   ratio {incremental_ratio:.3}   \
         ({} jobs history, {} jobs delta)",
        HISTORY_ROUNDS as usize * records_per_round,
        records_per_round,
    );

    // 2. Fold contention curve over one large batch, plus the determinism
    //    gate: every width must reproduce the serial outcome exactly.
    let serial_fp = {
        let s = AnalyzerState::new(config(), 1);
        s.ingest(&all);
        fingerprint(&s.select().unwrap())
    };
    let thread_counts = [1usize, 2, 4, 8];
    let mut parallel_matches_serial = true;
    let curve: Vec<(usize, u128)> = thread_counts
        .iter()
        .map(|&workers| {
            let s = AnalyzerState::new(config(), workers);
            let t = Instant::now();
            let report = s.ingest(&all);
            let wall = t.elapsed().as_micros();
            assert_eq!(report.admitted, all.len());
            parallel_matches_serial &= fingerprint(&s.select().unwrap()) == serial_fp;
            (workers, wall)
        })
        .collect();
    let base = curve[0].1;
    for &(workers, wall) in &curve {
        println!(
            "analyzer_scale/fold/{workers} worker(s)   {wall:>9} µs   {:.2}x   ({} records)",
            base as f64 / wall.max(1) as f64,
            all.len(),
        );
    }
    let speedup_at_4 = curve
        .iter()
        .find(|(w, _)| *w == 4)
        .map(|(_, wall)| base as f64 / (*wall).max(1) as f64)
        .unwrap();
    // Below 4 cores the workers time-slice one another and the fold layout
    // cannot show through, so the speedup target is not applicable.
    let multi_core_target_applicable = cores >= 4;

    let curve_entries = curve
        .iter()
        .map(|(workers, wall)| {
            format!(
                "    {{ \"threads\": {}, \"fold_wall_micros\": {}, \"speedup\": {:.3} }}",
                workers,
                wall,
                base as f64 / (*wall).max(1) as f64
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"analyzer_scale\",\n",
            "  \"quick\": {quick},\n",
            "  \"cores\": {cores},\n",
            "  \"history_rounds\": {hist},\n",
            "  \"records_per_round\": {rpr},\n",
            "  \"records_total\": {total},\n",
            "  \"incremental_round_micros\": {inc},\n",
            "  \"full_batch_micros\": {full},\n",
            "  \"incremental_ratio\": {ratio:.3},\n",
            "  \"meets_25pct_target\": {m25},\n",
            "  \"incremental_matches_full\": {eq},\n",
            "  \"curve\": [\n{curve}\n  ],\n",
            "  \"speedup_at_4_threads\": {s4:.3},\n",
            "  \"multi_core_target_applicable\": {mapp},\n",
            "  \"parallel_matches_serial\": {pser}\n",
            "}}\n"
        ),
        quick = quick,
        cores = cores,
        hist = HISTORY_ROUNDS,
        rpr = records_per_round,
        total = all.len(),
        inc = incremental_micros,
        full = full_micros,
        ratio = incremental_ratio,
        m25 = incremental_ratio <= 0.25,
        eq = outcomes_match,
        curve = curve_entries,
        s4 = speedup_at_4,
        mapp = multi_core_target_applicable,
        pser = parallel_matches_serial,
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_analyzer_scale.json"
    );
    std::fs::write(path, &json).unwrap();
    println!("analyzer_scale: wrote {path}");

    assert!(
        outcomes_match,
        "incremental state diverged from full-batch analysis"
    );
    assert!(
        parallel_matches_serial,
        "parallel fold diverged from the serial outcome"
    );
    assert!(
        incremental_ratio <= 0.25,
        "incremental round must cost <= 25% of full re-analysis at \
         {HISTORY_ROUNDS}x history (got {incremental_ratio:.2})"
    );
    if multi_core_target_applicable {
        assert!(
            speedup_at_4 >= 1.5,
            "parallel fold must be >= 1.5x at 4 workers on {cores} cores \
             (got {speedup_at_4:.2}x)"
        );
    }
}
