//! Microbenchmark: signature computation (paper Section 3).
//!
//! Signing happens on every compile, so its cost is part of the Section 7.3
//! compile-time overhead. Measures Merkle signing and full subgraph
//! enumeration over plans of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scope_common::ids::DatasetId;
use scope_plan::expr::AggFunc;
use scope_plan::{AggExpr, DataType, Expr, Partitioning, PlanBuilder, QueryGraph, Schema};
use scope_signature::{enumerate_subgraphs, sign_graph};

/// Builds a chain-shaped plan with roughly `n` nodes.
fn chain_plan(n: usize) -> QueryGraph {
    let schema = Schema::from_pairs(&[("k", DataType::Int), ("v", DataType::Float)]);
    let mut b = PlanBuilder::new();
    let mut cur = b.table_scan(DatasetId::new(1), "bench/t.ss", schema);
    for i in 0..n.saturating_sub(3) {
        cur = match i % 4 {
            0 => b.filter(cur, Expr::col(0).gt(Expr::lit(i as i64))),
            1 => b.exchange(
                cur,
                Partitioning::Hash {
                    cols: vec![0],
                    parts: 8,
                },
            ),
            2 => b.aggregate(
                cur,
                vec![0],
                vec![AggExpr::new(format!("a{i}"), AggFunc::Sum, 1)],
            ),
            _ => b.nop(cur),
        };
    }
    b.output(cur, "bench/out.ss").build().unwrap()
}

fn bench_signing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sign_graph");
    for n in [8usize, 32, 128] {
        let plan = chain_plan(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| sign_graph(std::hint::black_box(plan)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("enumerate_subgraphs");
    for n in [8usize, 32, 128] {
        let plan = chain_plan(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &plan, |b, plan| {
            b.iter(|| enumerate_subgraphs(std::hint::black_box(plan)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_signing);
criterion_main!(benches);
